//! # tdb-engine — the transport-agnostic query engine
//!
//! The execution core behind every front end. [`Engine`] owns one shared
//! catalog and one live subsystem; callers hand it complete inputs (a
//! `\command` or a query text) together with their per-client
//! [`ClientState`] (planner config, explain/verify flags, row limit) and
//! receive a typed [`Response`] — rows, plan reports, analyzer verdicts,
//! live progress, errors as typed variants. Nothing in a [`Response`] is
//! pre-rendered for a terminal.
//!
//! Two renderers sit on top:
//!
//! * [`render`] — the shell text renderer (used by `tdb-cli`'s `Session`
//!   and by `tdb connect`);
//! * [`codec`] — [`Codec`](tdb::storage::Codec) impls giving every
//!   response a binary wire form (used by `tdb-net`'s framed protocol).
//!
//! The split exists so many concurrent clients can share one engine: the
//! engine is `Send`, per-client state lives with the transport, and
//! subscription deltas come back as data ([`DeltaFrame`]) that a server
//! can route to whichever connection owns the subscription.

pub mod codec;
pub mod render;
pub mod response;

pub use render::{render, render_delta, render_rows, render_stream_footer, render_stream_header};
pub use response::{
    AnalysisReport, ConnMetrics, DeltaFrame, ErrorCode, ErrorInfo, IngestReport,
    LiveRelationMetrics, LiveRelationStatus, LiveStatus, NetMetrics, OpSpan, OpVerdict,
    QueryReport, QueryStats, QueryTrace, Response, RowSet, SealReport, SloStatus, SlowFsyncInfo,
    StageLatency, StatsReport, SubscribeReport, SubscriptionStatus, SuperstarRow, TableInfo,
    WalReport,
};
pub use tdb_obs::{HealthState, Stage, StageSpan, StageTimers};

use tdb::prelude::*;
use tdb_obs::{
    spans_to_json, Counter, EventRing, Histogram, QueryIdGen, Registry, SloConfig, SloEngine,
    SloMetrics, SloReport, SlowQueryLog, OCCUPANCY_BOUNDS,
};

/// Per-client execution settings. Each transport session (shell, TCP
/// connection) owns one; the engine mutates it in place when the client
/// runs `\explain`, `\config`, or `\set`.
#[derive(Debug, Clone, Copy)]
pub struct ClientState {
    /// Echo logical and physical plans before running queries.
    pub explain: bool,
    /// Echo the static-analysis certificate before running queries.
    pub verify: bool,
    /// Planner strategy for this client's queries.
    pub config: PlannerConfig,
    /// Maximum rows delivered per query result.
    pub row_limit: usize,
    /// Attach the per-operator [`QueryTrace`] to query responses
    /// (`\trace on`). The engine records traces either way; this only
    /// controls whether they travel back to the client.
    pub trace: bool,
}

impl Default for ClientState {
    fn default() -> ClientState {
        ClientState {
            explain: false,
            verify: false,
            config: PlannerConfig::stream(),
            row_limit: 20,
            trace: false,
        }
    }
}

/// Default slow-query threshold: queries at or above 10ms are retained.
const SLOW_THRESHOLD_US: u64 = 10_000;

/// Upper bound accepted by `\set parallelism`: beyond a few hundred
/// time-range partitions the fringe-replication overhead dominates any
/// conceivable core count.
const MAX_PARALLELISM: usize = 256;

/// How many slow traces the log keeps.
const SLOW_LOG_CAP: usize = 8;

/// Default latency objective: queries at or under 10ms count as good
/// (retune with `\slo latency <us>`).
const DEFAULT_SLO_LATENCY_US: u64 = 10_000;

/// How many structured events the `\events` ring retains.
const EVENT_RING_CAP: usize = 256;

/// The engine's observability state: the metrics registry plus the
/// handles on the per-query hot path (registered once at open), the
/// slow-query log, and the most recent trace.
struct ObsState {
    registry: Registry,
    queries: Counter,
    rows_returned: Counter,
    cap_exceeded: Counter,
    query_us: Histogram,
    workspace_peak: Histogram,
    slow: SlowQueryLog,
    last: Option<QueryTrace>,
    /// Per-stage latency histograms (`tdb_stage_duration_us{stage="…"}`).
    stage_timers: StageTimers,
    /// Mints one id per executed query (0 names "no query").
    ids: QueryIdGen,
    /// Record timed stage spans? `false` is the instrumentation-overhead
    /// baseline the E22 experiment measures against; execution itself is
    /// identical either way.
    spans_enabled: bool,
    /// The monotone clock behind SLO windows and event timestamps.
    started: std::time::Instant,
    /// Queries slower than this count against the latency objective.
    latency_target_us: u64,
    slo_latency: SloEngine,
    slo_errors: SloEngine,
    latency_gauges: SloMetrics,
    errors_gauges: SloMetrics,
    events: EventRing,
    /// The folded verdict at the last evaluation, for transition events.
    last_health: HealthState,
}

impl ObsState {
    fn new() -> ObsState {
        let registry = Registry::new();
        let slo = SloConfig::default();
        ObsState {
            queries: registry.counter("tdb_queries_total", "Queries executed."),
            rows_returned: registry.counter(
                "tdb_rows_returned_total",
                "Result rows produced across all queries.",
            ),
            cap_exceeded: registry.counter(
                "tdb_cap_exceeded_total",
                "Operator spans whose observed workspace peak exceeded the \
                 statically proven cap (a verifier bug).",
            ),
            query_us: registry.histogram(
                "tdb_query_duration_us",
                "Query wall-clock time in microseconds.",
                &[100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000],
            ),
            workspace_peak: registry.histogram(
                "tdb_workspace_peak",
                "Peak resident workspace tuples per operator span.",
                &OCCUPANCY_BOUNDS,
            ),
            slow: SlowQueryLog::new(SLOW_THRESHOLD_US, SLOW_LOG_CAP),
            last: None,
            stage_timers: StageTimers::register(&registry),
            ids: QueryIdGen::new(),
            spans_enabled: true,
            started: std::time::Instant::now(),
            latency_target_us: DEFAULT_SLO_LATENCY_US,
            slo_latency: SloEngine::new(slo),
            slo_errors: SloEngine::new(slo),
            latency_gauges: SloMetrics::register(&registry, "latency"),
            errors_gauges: SloMetrics::register(&registry, "errors"),
            events: EventRing::new(EVENT_RING_CAP),
            last_health: HealthState::Ok,
            registry,
        }
    }

    /// Seconds since the engine opened — the SLO window clock.
    fn now_s(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Microseconds since the engine opened — event timestamps.
    fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// Evaluate both objectives as of now and publish the burn gauges.
    fn evaluate_slo(&self) -> (SloReport, SloReport) {
        let now = self.now_s();
        let latency = self.slo_latency.evaluate_at(now);
        let errors = self.slo_errors.evaluate_at(now);
        self.latency_gauges.publish(&latency);
        self.errors_gauges.publish(&errors);
        (latency, errors)
    }

    /// Re-evaluate health and push a transition event when it changed.
    fn note_health(&mut self) -> HealthState {
        let (latency, errors) = self.evaluate_slo();
        let health = latency.health.worst(errors.health);
        if health != self.last_health {
            let detail = format!(
                "{} -> {} (latency burn {:.1}/{:.1}, errors burn {:.1}/{:.1})",
                self.last_health.name(),
                health.name(),
                latency.fast_burn,
                latency.slow_burn,
                errors.fast_burn,
                errors.slow_burn,
            );
            self.events.push(self.now_us(), "health", 0, detail);
            self.last_health = health;
        }
        health
    }

    /// Fold one finished query's trace into every metric surface.
    fn record(&mut self, trace: QueryTrace) {
        self.queries.inc();
        self.rows_returned.add(trace.rows);
        self.query_us.observe(trace.elapsed_us);
        for span in &trace.spans {
            self.workspace_peak.observe(span.workspace_peak);
            if span.cap_exceeded() {
                self.cap_exceeded.inc();
                self.events.push(
                    self.now_us(),
                    "cap_exceeded",
                    trace.query_id,
                    format!(
                        "{}: observed workspace {} over the proven cap",
                        span.operator, span.workspace_peak
                    ),
                );
            }
        }
        let now_s = self.now_s();
        self.slo_latency
            .record_at(now_s, trace.elapsed_us <= self.latency_target_us);
        self.slo_errors.record_at(now_s, true);
        if self.slow.observe(&trace) {
            self.events.push(
                self.now_us(),
                "slow_query",
                trace.query_id,
                format!("{}µs: {}", trace.elapsed_us, trace.label),
            );
        }
        self.last = Some(trace);
        self.note_health();
    }

    /// Fold one failed query into the error objective. Errors carry no
    /// latency sample — the latency objective scores completed work.
    fn record_error(&mut self, message: &str) {
        let now_s = self.now_s();
        self.slo_errors.record_at(now_s, false);
        self.events
            .push(self.now_us(), "query_error", 0, message.to_string());
        self.note_health();
    }
}

/// The shared, transport-agnostic engine: one catalog, one live
/// subsystem, any number of clients.
pub struct Engine {
    catalog: Catalog,
    live: LiveEngine,
    obs: ObsState,
    /// What the write-ahead log replayed at open, for durable engines.
    replay: Option<ReplaySummary>,
}

impl Engine {
    /// Open an engine backed by a catalog directory. Live-ingest staging
    /// runs spill under `<dir>/live`.
    pub fn open(dir: impl AsRef<std::path::Path>) -> TdbResult<Engine> {
        let dir = dir.as_ref();
        Ok(Engine {
            catalog: Catalog::open(dir, IoStats::new())?,
            live: LiveEngine::new(dir.join("live"), LiveConfig::default()),
            obs: ObsState::new(),
            replay: None,
        })
    }

    /// Open a durable engine: the catalog persists its manifest with
    /// fsync-and-rename, every live relation write-ahead logs under
    /// `<dir>/wal`, and any logs left by a previous process (clean exit
    /// or crash) are replayed so acknowledged ingest survives. The flush
    /// policy defaults to group commit; override it with `flush`.
    pub fn open_durable(
        dir: impl AsRef<std::path::Path>,
        flush: tdb::wal::FlushPolicy,
    ) -> TdbResult<Engine> {
        let dir = dir.as_ref();
        let catalog = Catalog::open_durable(dir, IoStats::new())?;
        let obs = ObsState::new();
        let config = LiveConfig {
            flush,
            ..LiveConfig::default()
        };
        let (live, replay) = LiveEngine::open_durable(
            dir.join("live"),
            dir.join("wal"),
            config,
            &catalog,
            &obs.registry,
        )?;
        Ok(Engine {
            catalog,
            live,
            obs,
            replay: Some(replay),
        })
    }

    /// What replay recovered at open, for durable engines (`None` for
    /// [`Engine::open`]).
    pub fn replay_summary(&self) -> Option<&ReplaySummary> {
        self.replay.as_ref()
    }

    /// Is the engine write-ahead logging?
    pub fn is_durable(&self) -> bool {
        self.live.is_durable()
    }

    /// The engine's metrics registry. Serving layers register their own
    /// families here (e.g. `tdb-net`'s frame counters) so one Prometheus
    /// render covers the whole process.
    pub fn metrics_registry(&self) -> Registry {
        self.obs.registry.clone()
    }

    /// A cloneable handle onto the per-stage latency histograms, for
    /// serving layers that time `render` and `net_write` off the engine
    /// lock (the writer thread must not contend with executing queries).
    pub fn stage_timers(&self) -> StageTimers {
        self.obs.stage_timers.clone()
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The live subsystem.
    pub fn live(&self) -> &LiveEngine {
        &self.live
    }

    /// Cancel a standing query (its consumer disconnected or fell
    /// behind). Serving layers call this so orphaned subscriptions stop
    /// evaluating without stalling ingestion for everyone else.
    pub fn cancel_subscription(&mut self, id: usize) -> TdbResult<()> {
        self.live.cancel(id)
    }

    /// Execute one complete input — a `\command` or a query text (with or
    /// without the terminating `;`) — under `ctx`'s settings. Never
    /// fails: every error becomes [`Response::Error`].
    pub fn execute(&mut self, ctx: &mut ClientState, input: &str) -> Response {
        let trimmed = input.trim();
        if trimmed.is_empty() {
            return Response::Info(String::new());
        }
        if trimmed.starts_with('\\') {
            return self.command(ctx, trimmed);
        }
        let text = trimmed.trim_end_matches(';');
        match self.run_query(ctx, text) {
            Ok(r) => r,
            Err(e) => {
                self.obs.record_error(&e.to_string());
                Response::error(&e)
            }
        }
    }

    fn command(&mut self, ctx: &mut ClientState, line: &str) -> Response {
        match self.command_inner(ctx, line) {
            Ok(r) => r,
            Err(e) => Response::error(&e),
        }
    }

    fn command_inner(&mut self, ctx: &mut ClientState, line: &str) -> TdbResult<Response> {
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            ["\\help"] => Ok(Response::Info(HELP.to_string())),
            ["\\quit" | "\\q"] => Ok(Response::Goodbye),
            ["\\tables"] => Ok(Response::Tables(self.tables()?)),
            ["\\explain", v @ ("on" | "off")] => {
                ctx.explain = *v == "on";
                if !ctx.explain {
                    ctx.verify = false;
                }
                Ok(Response::Info(format!("explain {v}\n")))
            }
            ["\\explain", "verify"] => {
                ctx.explain = true;
                ctx.verify = true;
                Ok(Response::Info(
                    "explain verify (plans + static-analysis certificate)\n".into(),
                ))
            }
            ["\\analyze", rest @ ..] if !rest.is_empty() => {
                let text = rest.join(" ");
                let text = text.trim_end_matches(';');
                self.analyze(ctx.config, text).map(Response::Analysis)
            }
            ["\\config", c] => {
                ctx.config = match *c {
                    "stream" => PlannerConfig::stream(),
                    "conventional" => PlannerConfig::conventional(),
                    "naive" => PlannerConfig::naive(),
                    other => {
                        return Ok(Response::Info(format!(
                            "unknown config `{other}` (stream|conventional|naive)\n"
                        )))
                    }
                };
                Ok(Response::Info(format!("planner config: {c}\n")))
            }
            ["\\set", "parallelism", n] => {
                let k: usize = n
                    .parse()
                    .map_err(|_| TdbError::Config(format!("bad partition count `{n}`")))?;
                if k == 0 || k > MAX_PARALLELISM {
                    return Err(TdbError::Config(format!(
                        "parallelism {k} out of range (1..={MAX_PARALLELISM}; 1 = serial)"
                    )));
                }
                ctx.config = ctx.config.with_parallelism(k);
                Ok(Response::Info(if k > 1 {
                    format!("parallelism: {k} time-range partitions\n")
                } else {
                    "parallelism: serial\n".to_string()
                }))
            }
            ["\\set", "batch", n] => {
                let rows: usize = n
                    .parse()
                    .map_err(|_| TdbError::Config(format!("bad batch size `{n}`")))?;
                if rows > MAX_BATCH_ROWS {
                    return Err(TdbError::Config(format!(
                        "batch size {rows} out of range (0..={MAX_BATCH_ROWS}; 0 = row-at-a-time)"
                    )));
                }
                ctx.config = ctx.config.with_batch_rows(rows);
                Ok(Response::Info(if rows > 0 {
                    format!("batch: {rows} rows per operator batch\n")
                } else {
                    "batch: row-at-a-time\n".to_string()
                }))
            }
            ["\\set", "limit", n] => {
                let limit: usize = n
                    .parse()
                    .map_err(|_| TdbError::Config(format!("bad row limit `{n}`")))?;
                ctx.row_limit = limit.max(1);
                Ok(Response::Info(format!("row limit: {}\n", ctx.row_limit)))
            }
            ["\\set", key, ..] => Err(TdbError::Config(format!(
                "unknown \\set key `{key}` (batch|limit|parallelism)"
            ))),
            ["\\set"] => Err(TdbError::Config(
                "\\set needs a key and a value: \\set batch|limit|parallelism <n>".into(),
            )),
            ["\\gen", "faculty", n, rest @ ..] => {
                let n: usize = n
                    .parse()
                    .map_err(|_| TdbError::Eval(format!("bad count `{n}`")))?;
                let seed: u64 = rest.first().and_then(|s| s.parse().ok()).unwrap_or(0);
                let faculty = FacultyGen {
                    n_faculty: n,
                    seed,
                    continuous_employment: true,
                    ..FacultyGen::default()
                }
                .generate();
                let rows: Vec<Row> = faculty.iter().map(|t| t.to_row()).collect();
                self.catalog.create_relation(
                    "Faculty",
                    TemporalSchema::time_sequence("Name", "Rank"),
                    &rows,
                    vec![],
                )?;
                Ok(Response::Info(format!(
                    "Faculty loaded: {} members, {} tuples (seed {seed})\n",
                    n,
                    rows.len()
                )))
            }
            ["\\gen", "intervals", name, n, gap, dur, rest @ ..] => {
                let parse_f = |s: &str| {
                    s.parse::<f64>()
                        .map_err(|_| TdbError::Eval(format!("bad number `{s}`")))
                };
                let n: usize = n
                    .parse()
                    .map_err(|_| TdbError::Eval(format!("bad count `{n}`")))?;
                let seed: u64 = rest.first().and_then(|s| s.parse().ok()).unwrap_or(0);
                let tuples = IntervalGen::poisson(n, parse_f(gap)?, parse_f(dur)?, seed).generate();
                let rows: Vec<Row> = tuples
                    .iter()
                    .map(|t| {
                        Row::new(vec![
                            t.surrogate.clone(),
                            t.value.clone(),
                            Value::Time(t.ts()),
                            Value::Time(t.te()),
                        ])
                    })
                    .collect();
                self.catalog.create_relation(
                    name,
                    interval_schema()?,
                    &rows,
                    vec![StreamOrder::TS_ASC],
                )?;
                Ok(Response::Info(format!(
                    "{name} loaded: {} tuples\n",
                    rows.len()
                )))
            }
            ["\\ingest", _rel, "-"] => Ok(Response::Error(ErrorInfo::new(
                ErrorCode::Protocol,
                "stdin ingest (`-`) is only available in the local shell",
            ))),
            ["\\ingest", rel, source] => {
                let text = std::fs::read_to_string(source)?;
                Ok(self.ingest_text(rel, &text))
            }
            ["\\subscribe", rest @ ..] if !rest.is_empty() => {
                let text = rest.join(" ");
                let text = text.trim_end_matches(';').to_string();
                self.subscribe(ctx, &text).map(Response::Subscribed)
            }
            ["\\stats"] => Ok(Response::Stats(self.stats_report())),
            ["\\checkpoint"] => {
                if !self.live.is_durable() {
                    return Ok(Response::Info(
                        "engine is not durable (start with --data-dir)\n".into(),
                    ));
                }
                let n = self.live.checkpoint_all()?;
                Ok(Response::Info(format!(
                    "checkpointed {n} relation log{}\n",
                    if n == 1 { "" } else { "s" }
                )))
            }
            ["\\trace", v @ ("on" | "off")] => {
                ctx.trace = *v == "on";
                Ok(Response::Info(format!("trace {v}\n")))
            }
            ["\\trace", "export"] => Ok(Response::Info(match &self.obs.last {
                Some(t) => spans_to_json(t.query_id, &t.label, &t.stages) + "\n",
                None => "no trace recorded yet\n".to_string(),
            })),
            ["\\spans", v @ ("on" | "off")] => {
                self.obs.spans_enabled = *v == "on";
                Ok(Response::Info(format!("stage spans {v}\n")))
            }
            ["\\slo"] => Ok(Response::Info(self.slo_info())),
            ["\\slo", "latency", us] => {
                let us: u64 = us
                    .parse()
                    .map_err(|_| TdbError::Config(format!("bad latency objective `{us}`")))?;
                self.obs.latency_target_us = us;
                Ok(Response::Info(format!("slo latency objective: {us}µs\n")))
            }
            ["\\slo", "target", r] => {
                let ratio: f64 = r
                    .parse()
                    .map_err(|_| TdbError::Config(format!("bad slo target `{r}`")))?;
                if !(ratio > 0.0 && ratio < 1.0) {
                    return Err(TdbError::Config(format!(
                        "slo target {ratio} out of range (0 < target < 1)"
                    )));
                }
                let c = self.reconfigure_slo(|c| c.target = ratio);
                Ok(Response::Info(format!(
                    "slo target: {:.4} (windows reset)\n",
                    c.target
                )))
            }
            ["\\slo", "windows", fast, slow] => {
                let parse = |s: &str| {
                    s.parse::<u64>()
                        .map_err(|_| TdbError::Config(format!("bad window seconds `{s}`")))
                };
                let (fast, slow) = (parse(fast)?, parse(slow)?);
                let c = self.reconfigure_slo(|c| {
                    c.fast_window_s = fast;
                    c.slow_window_s = slow;
                });
                Ok(Response::Info(format!(
                    "slo windows: fast {}s, slow {}s (windows reset)\n",
                    c.fast_window_s, c.slow_window_s
                )))
            }
            ["\\slo", "burn", fast, slow] => {
                let parse = |s: &str| {
                    s.parse::<f64>()
                        .map_err(|_| TdbError::Config(format!("bad burn threshold `{s}`")))
                };
                let (fast, slow) = (parse(fast)?, parse(slow)?);
                if fast <= 0.0 || slow <= 0.0 {
                    return Err(TdbError::Config("burn thresholds must be positive".into()));
                }
                let c = self.reconfigure_slo(|c| {
                    c.fast_burn = fast;
                    c.slow_burn = slow;
                });
                Ok(Response::Info(format!(
                    "slo burn thresholds: fast {:.1}, slow {:.1} (windows reset)\n",
                    c.fast_burn, c.slow_burn
                )))
            }
            ["\\slo", ..] => Err(TdbError::Config(
                "\\slo [latency <us> | target <ratio> | windows <fast_s> <slow_s> | \
                 burn <fast> <slow>]"
                    .into(),
            )),
            ["\\events"] => Ok(Response::Info(self.events_info())),
            ["\\slow", n] => {
                let us: u64 = n
                    .parse()
                    .map_err(|_| TdbError::Eval(format!("bad slow threshold `{n}`")))?;
                self.obs.slow.set_threshold_us(us);
                Ok(Response::Info(format!("slow-query threshold: {us}µs\n")))
            }
            ["\\live"] => Ok(Response::Live(self.live_status())),
            ["\\live", "close", rel] => self.live_close(rel).map(Response::Sealed),
            ["\\superstar"] => self.superstar().map(Response::Superstar),
            _ => Ok(Response::Info(format!(
                "unknown command `{line}` — try \\help\n"
            ))),
        }
    }

    fn tables(&self) -> TdbResult<Vec<TableInfo>> {
        let mut out = Vec::new();
        for name in self.catalog.relation_names() {
            let meta = self.catalog.meta(&name)?;
            out.push(TableInfo {
                name: name.clone(),
                rows: meta.rows as u64,
                schema: meta.schema.schema.to_string(),
                lambda: meta.stats.lambda,
                mean_duration: meta.stats.mean_duration,
                max_concurrency: meta.stats.max_concurrency as u64,
            });
        }
        Ok(out)
    }

    fn run_query(&mut self, ctx: &ClientState, text: &str) -> TdbResult<Response> {
        let query_id = self.obs.ids.next_id();
        let spans_on = self.obs.spans_enabled;
        let q_start = std::time::Instant::now();
        let mut stages: Vec<StageSpan> = Vec::new();

        let t = std::time::Instant::now();
        let (logical, _query) = compile(text, &self.catalog)?;
        self.mark_stage(&mut stages, spans_on, q_start, Stage::Parse, t);

        let t = std::time::Instant::now();
        let optimized = conventional_optimize(logical.clone());
        self.mark_stage(&mut stages, spans_on, q_start, Stage::Plan, t);

        // Every plan passes the static verifier before it executes; the
        // planner never emits a rejected plan, so a failure here means the
        // plan tree was corrupted, not that the query is wrong.
        let t = std::time::Instant::now();
        let (physical, analysis) = plan_verified(&optimized, ctx.config, &self.catalog)?;
        self.mark_stage(&mut stages, spans_on, q_start, Stage::Analyze, t);

        let start = std::time::Instant::now();
        // The client's row limit is a sink, not a post-hoc truncate: once
        // the sink has its quota the producer stops, so `\set limit 3` over
        // a billion-pair join does a bounded amount of work.
        let mut sink = tdb::stream::LimitSink::new(ctx.row_limit);
        let result = physical.execute(
            &self.catalog,
            ExecOptions::new()
                .with_batch_rows(ctx.config.batch_rows)
                .with_sink(&mut sink),
        )?;
        let elapsed_us = start.elapsed().as_micros() as u64;
        self.mark_stage(&mut stages, spans_on, q_start, Stage::Execute, start);
        if spans_on {
            // One child span per operator occurrence, nested under the
            // execute span; self-time comes from the executor's own clock.
            let exec_start_us = start.duration_since(q_start).as_micros() as u64;
            for obs in &result.trace {
                self.obs
                    .stage_timers
                    .observe(Stage::Operator, obs.elapsed_us);
                stages.push(StageSpan {
                    stage: Stage::Operator,
                    start_us: exec_start_us,
                    elapsed_us: obs.elapsed_us,
                    depth: 1,
                    detail: obs.operator.clone(),
                });
            }
        }

        let t = std::time::Instant::now();
        let sink_stats = sink.finish();
        let rows = sink.into_rows();
        self.mark_stage(&mut stages, spans_on, q_start, Stage::Sink, t);

        let trace = build_trace(
            query_id,
            text,
            elapsed_us,
            &result,
            &analysis,
            sink_stats,
            rows.len(),
            stages,
        );
        self.obs.record(trace.clone());

        let columns: Vec<String> = result
            .scope
            .columns()
            .iter()
            .map(|c| {
                if c.var.is_empty() {
                    c.attr.clone()
                } else {
                    c.to_string()
                }
            })
            .collect();
        // Rows the producer offered before the sink stopped it — exact
        // when the whole result was scanned, a lower bound after an early
        // stop (the true total is unknowable without doing the work the
        // limit exists to avoid).
        let total = sink_stats.rows;
        Ok(Response::Query(QueryReport {
            query_id,
            logical: ctx.explain.then(|| logical.parse_tree()),
            optimized: ctx.explain.then(|| optimized.parse_tree()),
            physical: ctx.explain.then(|| physical.explain()),
            certificate: ctx.verify.then(|| analysis.render()),
            rows: RowSet {
                columns,
                rows,
                total,
            },
            stats: QueryStats {
                rows_scanned: result.stats.rows_scanned as u64,
                comparisons: result.stats.comparisons,
                max_workspace: result.stats.max_workspace as u64,
                sorts_performed: result.stats.sorts_performed as u64,
            },
            elapsed_us,
            trace: ctx.trace.then_some(trace),
        }))
    }

    /// Close one top-level stage span begun at `begun`: feed the stage
    /// histogram and, when spans are on, append the span record.
    fn mark_stage(
        &self,
        stages: &mut Vec<StageSpan>,
        on: bool,
        q_start: std::time::Instant,
        stage: Stage,
        begun: std::time::Instant,
    ) {
        if !on {
            return;
        }
        let elapsed_us = begun.elapsed().as_micros() as u64;
        self.obs.stage_timers.observe(stage, elapsed_us);
        stages.push(StageSpan::top(
            stage,
            begun.duration_since(q_start).as_micros() as u64,
            elapsed_us,
        ));
    }

    /// Toggle stage-span recording (the `tracing off` baseline E22
    /// measures instrumentation overhead against).
    pub fn set_spans_enabled(&mut self, on: bool) {
        self.obs.spans_enabled = on;
    }

    /// Feed one stage sample observed outside `run_query` — serving
    /// layers time `render` (reply encode) and `net_write` (socket flush)
    /// and report them here so the per-stage histograms cover the whole
    /// client-visible path.
    pub fn observe_stage(&self, stage: Stage, elapsed_us: u64) {
        if self.obs.spans_enabled {
            self.obs.stage_timers.observe(stage, elapsed_us);
        }
    }

    /// The `/healthz` verdict: the worse of the latency and error
    /// objectives, plus a small JSON body naming the burn rates so an
    /// operator can see *why* from the probe alone.
    pub fn health(&self) -> (HealthState, String) {
        let (latency, errors) = self.obs.evaluate_slo();
        let health = latency.health.worst(errors.health);
        let body = format!(
            concat!(
                "{{\"health\":\"{}\",\"objectives\":[",
                "{{\"name\":\"latency\",\"fast_burn\":{:.3},\"slow_burn\":{:.3}}},",
                "{{\"name\":\"errors\",\"fast_burn\":{:.3},\"slow_burn\":{:.3}}}]}}\n"
            ),
            health.name(),
            latency.fast_burn,
            latency.slow_burn,
            errors.fast_burn,
            errors.slow_burn,
        );
        (health, body)
    }

    /// Rebuild both objective engines under an edited config. This resets
    /// the evaluation windows — acceptable for an operator-driven
    /// reconfiguration, which implies the old thresholds were wrong.
    fn reconfigure_slo(&mut self, edit: impl Fn(&mut SloConfig)) -> SloConfig {
        let mut config = self.obs.slo_latency.config();
        edit(&mut config);
        self.obs.slo_latency = SloEngine::new(config);
        self.obs.slo_errors = SloEngine::new(config);
        self.obs.slo_latency.config()
    }

    /// The `\slo` status text: objectives, windows, thresholds, burn.
    fn slo_info(&self) -> String {
        let (latency, errors) = self.obs.evaluate_slo();
        let config = self.obs.slo_latency.config();
        let health = latency.health.worst(errors.health);
        let mut out = format!(
            "slo: target {:.4}, windows {}s/{}s, burn thresholds {:.1}/{:.1}, \
             latency objective {}µs\n",
            config.target,
            config.fast_window_s,
            config.slow_window_s,
            config.fast_burn,
            config.slow_burn,
            self.obs.latency_target_us,
        );
        for (name, r) in [("latency", &latency), ("errors", &errors)] {
            out.push_str(&format!(
                "  {:<8} {:<9} fast {:>4}/{:<6} burn {:>8.2}   slow {:>4}/{:<6} burn {:>8.2}\n",
                name,
                r.health.name(),
                r.fast_bad,
                r.fast_total,
                r.fast_burn,
                r.slow_bad,
                r.slow_total,
                r.slow_burn,
            ));
        }
        out.push_str(&format!("  health: {}\n", health.name()));
        out
    }

    /// The `\events` text: the bounded structured event ring, oldest
    /// first.
    fn events_info(&self) -> String {
        let ring = &self.obs.events;
        if ring.is_empty() {
            return "no events recorded\n".to_string();
        }
        let mut out = format!("events ({} shown, {} total):\n", ring.len(), ring.total());
        for e in ring.events() {
            let qid = if e.query_id != 0 {
                format!("q{} ", e.query_id)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "  #{:<4} +{:>10.3}s  {:<12} {}{}\n",
                e.seq,
                e.at_us as f64 / 1_000_000.0,
                e.kind,
                qid,
                e.detail,
            ));
        }
        out
    }

    /// Per-stage latency summaries for `\stats`, skipping stages that
    /// have seen no samples.
    fn stage_latencies(&self) -> Vec<StageLatency> {
        Stage::ALL
            .iter()
            .filter_map(|&stage| {
                let h = self.obs.stage_timers.histogram(stage);
                let count = h.count();
                if count == 0 {
                    return None;
                }
                Some(StageLatency {
                    stage: stage.name().to_string(),
                    count,
                    p50_us: h.quantile(0.5).unwrap_or(0),
                    p99_us: h.quantile(0.99).unwrap_or(0),
                })
            })
            .collect()
    }

    /// Both objectives' status rows plus the folded health verdict.
    fn slo_statuses(&self) -> (Vec<SloStatus>, HealthState) {
        let (latency, errors) = self.obs.evaluate_slo();
        let config = self.obs.slo_latency.config();
        let row = |name: &str, r: &SloReport| SloStatus {
            objective: name.to_string(),
            target: config.target,
            fast_window_s: config.fast_window_s,
            slow_window_s: config.slow_window_s,
            fast_burn: r.fast_burn,
            slow_burn: r.slow_burn,
            health: r.health.name().to_string(),
        };
        (
            vec![row("latency", &latency), row("errors", &errors)],
            latency.health.worst(errors.health),
        )
    }

    /// The observability snapshot behind `\stats` and the `Stats` wire
    /// request. `net` is `None` here; `tdb-net` merges its own counters
    /// in before answering.
    pub fn stats_report(&self) -> StatsReport {
        let (slo, health) = self.slo_statuses();
        StatsReport {
            queries: self.obs.queries.get(),
            rows_returned: self.obs.rows_returned.get(),
            cap_exceeded: self.obs.cap_exceeded.get() + self.live_cap_violations(),
            slow_threshold_us: self.obs.slow.threshold_us(),
            slow: self.obs.slow.worst().to_vec(),
            last: self.obs.last.clone(),
            live: self.live_metrics(),
            net: None,
            wal: self.wal_report(),
            stages: self.stage_latencies(),
            slo,
            health: health.name().to_string(),
        }
    }

    /// Durability counters for `\stats`, `None` for a non-durable engine.
    fn wal_report(&self) -> Option<WalReport> {
        let m = self.live.wal_metrics()?;
        let replay = self.replay.as_ref();
        Some(WalReport {
            flush_policy: self.live.config().flush.name().to_string(),
            appends: m.appends.get(),
            commits: m.commits.get(),
            fsyncs: m.fsyncs.get(),
            bytes_written: m.bytes_written.get(),
            checkpoints: m.checkpoints.get(),
            torn_truncations: m.torn_truncations.get(),
            replayed_records: replay.map_or(0, |r| r.records as u64),
            replay_bytes: replay.map_or(0, |r| r.bytes),
            replay_us: replay.map_or(0, |r| r.duration_us),
            slow_fsyncs: m
                .slow_fsyncs()
                .into_iter()
                .map(|f| SlowFsyncInfo {
                    relation: f.relation,
                    micros: f.micros,
                })
                .collect(),
        })
    }

    /// Subscriptions whose runtime workspace peak exceeded the cap the
    /// live verifier proved for them — the standing-query face of the
    /// `cap_exceeded` counter.
    fn live_cap_violations(&self) -> u64 {
        self.live
            .subscriptions()
            .iter()
            .filter(|sub| {
                let (peak, cap) = sub.workspace_watermark();
                cap > 0 && peak > cap
            })
            .count() as u64
    }

    fn live_metrics(&self) -> Vec<LiveRelationMetrics> {
        self.live
            .relations()
            .map(|rel| {
                let snap = rel.progress().snapshot();
                let static_stats = self.catalog.meta(rel.name()).ok().map(|m| m.stats.clone());
                let live_stats = rel.live_stats();
                LiveRelationMetrics {
                    relation: rel.name().to_string(),
                    queue_depth: rel.queue_depth() as u64,
                    queue_capacity: rel.queue_capacity() as u64,
                    staged: rel.staged_len() as u64,
                    watermark_lag: snap.watermark_lag,
                    promotion_batches: rel.promotion_batches(),
                    max_promotion_batch: rel.max_promotion_batch(),
                    lambda_static: static_stats.as_ref().and_then(|s| s.lambda),
                    lambda_live: live_stats.as_ref().and_then(|s| s.lambda),
                    duration_static: static_stats.map(|s| s.mean_duration),
                    duration_live: live_stats.map(|s| s.mean_duration),
                }
            })
            .collect()
    }

    /// Render every metric family as Prometheus text exposition 0.0.4,
    /// refreshing the live-subsystem gauges first (they are sampled on
    /// scrape rather than maintained on the ingest hot path).
    pub fn prometheus(&self) -> String {
        let reg = &self.obs.registry;
        for m in self.live_metrics() {
            let rel: &[(&str, &str)] = &[("relation", &m.relation)];
            reg.gauge_with(
                "tdb_live_queue_depth",
                rel,
                "Rows waiting in the ingest queue.",
            )
            .set(m.queue_depth as f64);
            reg.gauge_with(
                "tdb_live_staged",
                rel,
                "Rows staged but not yet watermark-final.",
            )
            .set(m.staged as f64);
            reg.gauge_with("tdb_live_watermark_lag", rel, "Watermark lag in ticks.")
                .set(m.watermark_lag as f64);
            reg.gauge_with(
                "tdb_live_promotion_batches",
                rel,
                "Non-empty promotion batches drained.",
            )
            .set(m.promotion_batches as f64);
            reg.gauge_with(
                "tdb_live_max_promotion_batch",
                rel,
                "Largest single promotion batch.",
            )
            .set(m.max_promotion_batch as f64);
            for (source, lambda, duration) in [
                ("static", m.lambda_static, m.duration_static),
                ("live", m.lambda_live, m.duration_live),
            ] {
                let labeled: &[(&str, &str)] = &[("relation", &m.relation), ("source", source)];
                if let Some(l) = lambda {
                    reg.gauge_with(
                        "tdb_lambda",
                        labeled,
                        "Arrival rate λ: plan-time catalog estimate vs live EWMA.",
                    )
                    .set(l);
                }
                if let Some(d) = duration {
                    reg.gauge_with(
                        "tdb_mean_duration",
                        labeled,
                        "Mean tuple duration E[D]: plan-time estimate vs live EWMA.",
                    )
                    .set(d);
                }
            }
        }
        reg.gauge(
            "tdb_live_cap_violations",
            "Standing queries whose runtime workspace peak currently exceeds \
             the live verifier's proven cap.",
        )
        .set(self.live_cap_violations() as f64);
        // Burn-rate gauges decay as events age out of their windows, so a
        // scrape re-evaluates them rather than reading the last query's.
        self.obs.evaluate_slo();
        reg.render()
    }

    /// Statically analyze a query without running it: compile, optimize,
    /// plan, and return the verifier's verdicts (or its diagnostics as an
    /// error). Shared by `\analyze` and the `tdb analyze` subcommand.
    pub fn analyze(&mut self, config: PlannerConfig, text: &str) -> TdbResult<AnalysisReport> {
        let (logical, _query) = compile(text, &self.catalog)?;
        let optimized = conventional_optimize(logical);
        let (physical, analysis) = plan_verified(&optimized, config, &self.catalog)?;
        Ok(analysis_report(&physical, &analysis))
    }

    /// Live-append pre-parsed arrival text into `rel`, auto-registering
    /// the relation for live ingestion on first use (interval schema for
    /// unknown relations; an existing relation is registered under its
    /// first known sort order). Every error becomes [`Response::Error`].
    pub fn ingest_text(&mut self, rel: &str, text: &str) -> Response {
        match parse_arrivals(text).and_then(|rows| self.ingest_rows(rel, rows)) {
            Ok(r) => r,
            Err(e) => Response::error(&e),
        }
    }

    /// Live-append already-built rows into `rel` (see
    /// [`Engine::ingest_text`]).
    pub fn ingest_rows(&mut self, rel: &str, rows: Vec<Row>) -> TdbResult<Response> {
        if !self.live.is_live(rel) {
            let (schema, order) = match self.catalog.meta(rel) {
                Ok(meta) => (
                    meta.schema.clone(),
                    meta.known_orders.first().copied().ok_or_else(|| {
                        TdbError::Catalog(format!(
                            "relation `{rel}` claims no sort order, so arrivals \
                             cannot be appended in order"
                        ))
                    })?,
                ),
                Err(_) => (interval_schema()?, StreamOrder::TS_ASC),
            };
            self.live.register(&mut self.catalog, rel, schema, order)?;
        }
        let offered = rows.len() as u64;
        let report = self.live.ingest(&mut self.catalog, rel, rows)?;
        let state = self
            .live
            .relation(rel)
            .ok_or_else(|| TdbError::Catalog(format!("live relation {rel} vanished mid-ingest")))?;
        Ok(Response::Ingest(IngestReport {
            relation: rel.to_string(),
            offered,
            promoted: report.promoted as u64,
            staged: state.staged_len() as u64,
            watermark: state.watermark(),
            deltas: report.deltas.into_iter().map(DeltaFrame::from).collect(),
        }))
    }

    fn subscribe(&mut self, ctx: &ClientState, text: &str) -> TdbResult<SubscribeReport> {
        let (logical, _query) = compile(text, &self.catalog)?;
        let optimized = conventional_optimize(logical);
        let (analysis, delta) = self.live.subscribe(&self.catalog, text, optimized)?;
        Ok(SubscribeReport {
            id: delta.subscription as u64,
            certificate: ctx.verify.then(|| analysis.render()),
            initial: DeltaFrame::from(delta),
        })
    }

    fn live_status(&self) -> LiveStatus {
        LiveStatus {
            relations: self
                .live
                .relations()
                .map(|rel| {
                    let snap = rel.progress().snapshot();
                    LiveRelationStatus {
                        name: rel.name().to_string(),
                        order: rel.order().to_string(),
                        sealed: rel.is_sealed(),
                        watermark: rel.watermark(),
                        admitted: rel.admitted(),
                        staged: rel.staged_len() as u64,
                        promoted: rel.promoted(),
                        watermark_lag: snap.watermark_lag,
                        stalls: rel.stalls(),
                    }
                })
                .collect(),
            subscriptions: self
                .live
                .subscriptions()
                .iter()
                .map(|sub| {
                    let (peak, cap) = sub.workspace_watermark();
                    SubscriptionStatus {
                        id: sub.id() as u64,
                        label: sub.label().to_string(),
                        evaluations: sub.evaluations(),
                        emitted: sub.emitted_count() as u64,
                        workspace_peak: peak as u64,
                        workspace_cap: cap as u64,
                        cancelled: sub.is_cancelled(),
                    }
                })
                .collect(),
        }
    }

    fn live_close(&mut self, rel: &str) -> TdbResult<SealReport> {
        let report = self.live.seal(&mut self.catalog, rel)?;
        Ok(SealReport {
            relation: rel.to_string(),
            promoted: report.promoted as u64,
            deltas: report.deltas.into_iter().map(DeltaFrame::from).collect(),
        })
    }

    fn superstar(&mut self) -> TdbResult<Vec<SuperstarRow>> {
        self.catalog
            .meta("Faculty")
            .map_err(|_| TdbError::Catalog("load Faculty first: \\gen faculty 200".into()))?;
        let mut out = Vec::new();
        for (label, logical) in superstar_plans(true) {
            if label.starts_with("unoptimized") {
                continue;
            }
            let config = if label.starts_with("conventional") {
                PlannerConfig::conventional()
            } else {
                PlannerConfig::stream()
            };
            let (physical, _analysis) = plan_verified(&logical, config, &self.catalog)?;
            let start = std::time::Instant::now();
            let result = physical.execute(&self.catalog, ExecOptions::default())?;
            let names: std::collections::BTreeSet<&str> = result
                .rows
                .iter()
                .filter_map(|r| r.get(0).as_str())
                .collect();
            out.push(SuperstarRow {
                label: label.to_string(),
                elapsed_us: start.elapsed().as_micros() as u64,
                comparisons: result.stats.comparisons,
                superstars: names.len() as u64,
            });
        }
        Ok(out)
    }
}

/// Pair the executor's per-operator observations with the analyzer's
/// per-operator predictions into one [`QueryTrace`].
///
/// The executor pushes observations bottom-up in execution order; the
/// lowering walks the same plan and registers one [`StreamOpSpec`] per
/// stream-operator occurrence with the same `kind` mapping. Each
/// observation consumes the first not-yet-matched spec of its kind, so
/// repeated operators pair positionally; instrumented non-temporal
/// operators (`kind: None`, e.g. the merge equi-join) have no spec and
/// carry no prediction.
#[allow(clippy::too_many_arguments)]
fn build_trace(
    query_id: u64,
    label: &str,
    elapsed_us: u64,
    result: &QueryOutput,
    analysis: &Analysis,
    sink: tdb::stream::SinkStats,
    delivered: usize,
    stages: Vec<StageSpan>,
) -> QueryTrace {
    let specs = &analysis.lowered.ops;
    let mut matched = vec![false; specs.len()];
    let spans = result
        .trace
        .iter()
        .map(|obs| {
            let predicted = obs.kind.and_then(|kind| {
                specs
                    .iter()
                    .zip(matched.iter_mut())
                    .find(|(spec, taken)| !**taken && spec.kind == kind)
                    .map(|(spec, taken)| {
                        *taken = true;
                        (spec.workspace_cap, spec.workspace_expectation)
                    })
            });
            let (cap, expectation) = predicted.unwrap_or((None, None));
            let ws = &obs.report.workspace;
            OpSpan {
                operator: obs.operator.clone(),
                partitions: obs.partitions as u64,
                rows_in: (obs.report.metrics.read_left + obs.report.metrics.read_right) as u64,
                rows_out: obs.report.metrics.emitted as u64,
                comparisons: obs.report.metrics.comparisons as u64,
                evicted: ws.discarded as u64,
                workspace_peak: ws.max_resident as u64,
                workspace_mean: ws.mean_resident(),
                occupancy: ws.occupancy_histogram().to_vec(),
                predicted_cap: cap.map(|c| c as u64),
                predicted_expectation: expectation,
            }
        })
        .collect();
    QueryTrace {
        query_id,
        label: label.to_string(),
        elapsed_us,
        rows: result.stats.output_rows as u64,
        sink_rows: delivered as u64,
        sink_bytes: sink.bytes,
        spans,
        stages,
    }
}

fn analysis_report(physical: &PhysicalPlan, analysis: &Analysis) -> AnalysisReport {
    AnalysisReport {
        physical: physical.explain(),
        ops: analysis
            .lowered
            .ops
            .iter()
            .map(|op| OpVerdict {
                path: op.path.to_string(),
                operator: op.kind.to_string(),
                table_entry: op.kind.requirement().table_entry.to_string(),
                workspace_expectation: op.workspace_expectation,
                workspace_cap: op.workspace_cap.map(|c| c as u64),
            })
            .collect(),
        certificate: analysis.render(),
    }
}

/// The schema live-ingested interval relations use (also `\gen
/// intervals`): `Id: Str, Seq: Int, ValidFrom: Time, ValidTo: Time`.
pub fn interval_schema() -> TdbResult<TemporalSchema> {
    TemporalSchema::new(
        tdb::core::Schema::new(vec![
            tdb::core::Field::new("Id", tdb::core::FieldType::Str),
            tdb::core::Field::new("Seq", tdb::core::FieldType::Int),
            tdb::core::Field::new("ValidFrom", tdb::core::FieldType::Time),
            tdb::core::Field::new("ValidTo", tdb::core::FieldType::Time),
        ]),
        2,
        3,
    )
}

/// Parse ingest lines into interval-schema rows. Each non-empty line not
/// starting with `#` is `<ts> <te> [id [seq]]`; `id` defaults to
/// `r<line>` and `seq` to the line index.
pub fn parse_arrivals(text: &str) -> TdbResult<Vec<Row>> {
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let time = |s: &str| {
            s.parse::<i64>()
                .map(TimePoint)
                .map_err(|_| TdbError::Eval(format!("line {}: bad time `{s}`", i + 1)))
        };
        let (ts, te) = match fields.as_slice() {
            [ts, te, ..] => (time(ts)?, time(te)?),
            _ => {
                return Err(TdbError::Eval(format!(
                    "line {}: expected `<ts> <te> [id [seq]]`, got `{line}`",
                    i + 1
                )))
            }
        };
        let id = fields
            .get(2)
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("r{}", i + 1));
        let seq: i64 = match fields.get(3) {
            Some(s) => s
                .parse()
                .map_err(|_| TdbError::Eval(format!("line {}: bad seq `{s}`", i + 1)))?,
            None => i as i64 + 1,
        };
        rows.push(Row::new(vec![
            Value::str(&id),
            Value::Int(seq),
            Value::Time(ts),
            Value::Time(te),
        ]));
    }
    Ok(rows)
}

/// Help text for the command surface (shared by every front end).
pub const HELP: &str = r#"commands:
  \gen faculty <n> [seed]                     load a generated Faculty relation
  \gen intervals <name> <n> <gap> <dur> [seed]  load a Poisson interval relation
  \tables                                     list relations and statistics
  \explain on|off|verify                      show plans (verify: + static analysis)
  \analyze <query>                            verify a query's plan without running it
  \config stream|conventional|naive           planner strategy
  \set parallelism <k>                        time-range partitions for stream operators
  \set batch <n>                              rows per columnar operator batch (0 = row-at-a-time)
  \set limit <n>                              rows delivered per query result
  \ingest <rel> <file|->                      live-append arrivals (`-` reads stdin to EOF);
                                              lines are `<ts> <te> [id [seq]]`
  \subscribe <query>                          register a standing query (live-verified);
                                              deltas print as rows become final
  \live                                       live status: watermarks, staging, subscriptions
  \live close <rel>                           seal a live stream (all staged rows final)
  \stats                                      observability: counters, slow queries, live + net + wal telemetry
  \checkpoint                                 compact every relation's write-ahead log to its open window
  \trace on|off                               attach per-operator traces (observed vs predicted workspace)
  \trace export                               last query's stage spans as JSON
  \spans on|off                               record per-stage timed spans (on by default)
  \slo                                        SLO status: burn rates, windows, health verdict
  \slo latency <us>                           latency objective in microseconds
  \slo target <ratio>                         required good ratio, e.g. 0.99 (resets windows)
  \slo windows <fast_s> <slow_s>              burn evaluation windows in seconds (resets windows)
  \slo burn <fast> <slow>                     burn-rate alert thresholds (resets windows)
  \events                                     recent structured events (slow queries, health flips)
  \slow <us>                                  slow-query log threshold in microseconds
  \superstar                                  compare the Superstar formulations
  \help   \quit
queries: modified Quel, terminated by `;`, e.g.
  range of f is Faculty retrieve (N=f.Name) where f.Rank = "Full";
serving: `tdb serve [dir] [addr]` starts a framed-TCP server over one shared
catalog; `tdb connect [addr]` opens this shell against it. `tdb serve
--data-dir <dir>` makes the catalog and live ingestion durable: acknowledged
rows survive crashes via a write-ahead log replayed at the next start.
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::Response;
    use tdb::storage::Codec as _;

    fn engine(tag: &str) -> (Engine, ClientState) {
        let dir = std::env::temp_dir().join(format!("tdb-engine-api-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        (Engine::open(dir).unwrap(), ClientState::default())
    }

    #[test]
    fn typed_query_response_truncates_at_row_limit() {
        let (mut e, mut ctx) = engine("q");
        ctx.row_limit = 3;
        assert!(matches!(
            e.execute(&mut ctx, "\\gen intervals T 50 3 10 1"),
            Response::Info(_)
        ));
        let resp = e.execute(&mut ctx, "range of t is T retrieve (A=t.ValidFrom);");
        let Response::Query(q) = resp else {
            panic!("expected query response, got {resp:?}");
        };
        assert_eq!(q.rows.rows.len(), 3);
        assert_eq!(q.rows.total, 50);
        assert_eq!(q.rows.columns, vec!["A".to_string()]);
        assert!(q.stats.rows_scanned > 0);
    }

    #[test]
    fn explain_flags_populate_plan_reports() {
        let (mut e, mut ctx) = engine("explain");
        e.execute(&mut ctx, "\\gen faculty 20 1");
        e.execute(&mut ctx, "\\explain verify");
        assert!(ctx.explain && ctx.verify);
        let resp = e.execute(&mut ctx, "range of f is Faculty retrieve (N=f.Name);");
        let Response::Query(q) = resp else {
            panic!("expected query response, got {resp:?}");
        };
        assert!(q.physical.as_deref().unwrap().contains("SeqScan Faculty"));
        assert!(q.certificate.is_some());
        e.execute(&mut ctx, "\\explain off");
        assert!(!ctx.explain && !ctx.verify);
    }

    #[test]
    fn analyze_returns_typed_verdicts() {
        let (mut e, mut ctx) = engine("analyze");
        e.execute(&mut ctx, "\\gen faculty 30 5");
        let resp = e.execute(
            &mut ctx,
            "\\analyze range of f1 is Faculty range of f2 is Faculty \
             retrieve (N=f1.Name) where f1.ValidFrom < f2.ValidFrom \
             and f2.ValidTo < f1.ValidTo;",
        );
        let Response::Analysis(a) = resp else {
            panic!("expected analysis, got {resp:?}");
        };
        assert_eq!(a.ops.len(), 1);
        assert!(a.ops[0].operator.contains("ContainJoin"), "{:?}", a.ops[0]);
        assert!(a.ops[0].table_entry.contains("Table 1"), "{:?}", a.ops[0]);
        assert!(a.ops[0].workspace_cap.is_some());
        assert!(a.certificate.contains("λ·E[D]"));
    }

    #[test]
    fn errors_carry_taxonomy_codes() {
        let (mut e, mut ctx) = engine("err");
        let resp = e.execute(&mut ctx, "range of f is Nope retrieve (N=f.Name);");
        let Response::Error(err) = resp else {
            panic!("expected error, got {resp:?}");
        };
        assert_eq!(err.code, ErrorCode::Catalog);
        let resp = e.execute(&mut ctx, "this is not quel;");
        let Response::Error(err) = resp else {
            panic!("expected error, got {resp:?}");
        };
        assert_eq!(err.code, ErrorCode::Parse);
    }

    #[test]
    fn ingest_response_carries_epoch_stamped_deltas() {
        let (mut e, mut ctx) = engine("ingest");
        let sub = e.execute(
            &mut ctx,
            "\\subscribe range of a is S range of b is S retrieve (X=a.Id, Y=b.Id) \
             where a.ValidFrom < b.ValidFrom and b.ValidTo < a.ValidTo;",
        );
        // S does not exist yet: subscription must fail cleanly.
        assert!(matches!(sub, Response::Error(_)));

        let resp = e.ingest_text("S", "0 100 long\n10 20 a\n30 40 b\n");
        let Response::Ingest(r) = resp else {
            panic!("expected ingest, got {resp:?}");
        };
        assert_eq!(r.offered, 3);
        assert_eq!(r.promoted, 2);
        assert_eq!(r.staged, 1);
        assert_eq!(r.watermark, Some(TimePoint(30)));

        let resp = e.execute(
            &mut ctx,
            "\\subscribe range of a is S range of b is S retrieve (X=a.Id, Y=b.Id) \
             where a.ValidFrom < b.ValidFrom and b.ValidTo < a.ValidTo;",
        );
        let Response::Subscribed(s) = resp else {
            panic!("expected subscribed, got {resp:?}");
        };
        assert_eq!(s.id, 0);
        assert_eq!(s.initial.rows.len(), 1);

        let mut resp = e.ingest_text("S", "50 60 c\n");
        let routed = resp.take_deltas();
        assert_eq!(routed.len(), 1);
        assert!(routed[0].epoch >= 2);
        assert_eq!(routed[0].watermark, Some(TimePoint(50)));
        assert!(
            matches!(resp, Response::Ingest(ref r) if r.deltas.is_empty()),
            "take_deltas drains the response in place"
        );
    }

    #[test]
    fn traces_pair_observed_workspace_with_predictions() {
        let (mut e, mut ctx) = engine("trace");
        e.execute(&mut ctx, "\\gen intervals T 200 3 10 7");
        let contain = "range of a is T range of b is T retrieve (X=a.Id, Y=b.Id) \
             where a.ValidFrom < b.ValidFrom and b.ValidTo < a.ValidTo;";

        // Traces are recorded engine-side even before `\trace on` …
        let resp = e.execute(&mut ctx, contain);
        let Response::Query(q) = resp else {
            panic!("expected query, got {resp:?}");
        };
        assert!(q.trace.is_none());

        // … and attached to the response once the client opts in.
        e.execute(&mut ctx, "\\trace on");
        let resp = e.execute(&mut ctx, contain);
        let Response::Query(q) = resp else {
            panic!("expected query, got {resp:?}");
        };
        let trace = q.trace.expect("trace attached after \\trace on");
        assert_eq!(trace.rows, q.rows.total);
        let span = trace
            .spans
            .iter()
            .find(|s| s.operator.contains("ContainJoin"))
            .expect("contain-join span present");
        let cap = span.predicted_cap.expect("analyzer proved a cap");
        assert!(
            span.workspace_peak <= cap,
            "observed {} must stay under proven cap {cap}",
            span.workspace_peak
        );
        assert!(span.predicted_expectation.is_some());
        assert!(span.rows_in > 0 && span.comparisons > 0);
        assert!(
            span.occupancy.iter().sum::<u64>() > 0,
            "insertion-sampled occupancy histogram is populated"
        );

        // The stats surface saw both runs and no cap violations.
        let Response::Stats(s) = e.execute(&mut ctx, "\\stats") else {
            panic!("expected stats");
        };
        assert_eq!(s.queries, 2);
        assert_eq!(s.cap_exceeded, 0);
        assert!(s.last.is_some());
    }

    #[test]
    fn stage_spans_cover_the_query_lifecycle() {
        let (mut e, mut ctx) = engine("spans");
        e.execute(&mut ctx, "\\gen intervals T 100 3 10 2");
        e.execute(&mut ctx, "\\trace on");
        let contain = "range of a is T range of b is T retrieve (X=a.Id) \
             where a.ValidFrom < b.ValidFrom and b.ValidTo < a.ValidTo;";
        let Response::Query(q) = e.execute(&mut ctx, contain) else {
            panic!("expected query");
        };
        assert_ne!(q.query_id, 0, "every query gets a minted id");
        let trace = q.trace.expect("trace attached");
        assert_eq!(trace.query_id, q.query_id, "trace and report share the id");
        for stage in [
            Stage::Parse,
            Stage::Plan,
            Stage::Analyze,
            Stage::Execute,
            Stage::Sink,
        ] {
            assert!(
                trace
                    .stages
                    .iter()
                    .any(|s| s.stage == stage && s.depth == 0),
                "missing top-level {} span in {:?}",
                stage.name(),
                trace.stages
            );
        }
        let op = trace
            .stages
            .iter()
            .find(|s| s.stage == Stage::Operator)
            .expect("per-operator child span");
        assert_eq!(op.depth, 1, "operator spans nest under execute");
        assert!(op.detail.contains("ContainJoin"), "{:?}", op.detail);

        // The same spans export as JSON, and the stats surface summarizes
        // the per-stage histograms.
        let Response::Info(json) = e.execute(&mut ctx, "\\trace export") else {
            panic!("expected info");
        };
        assert!(json.contains("\"stage\":\"execute\""), "{json}");
        assert!(
            json.contains(&format!("\"query_id\":{}", q.query_id)),
            "{json}"
        );
        let Response::Stats(s) = e.execute(&mut ctx, "\\stats") else {
            panic!("expected stats");
        };
        assert!(
            s.stages.iter().any(|l| l.stage == "execute" && l.count > 0),
            "{:?}",
            s.stages
        );

        // `\spans off` is the zero-instrumentation baseline: no span
        // records, but queries still execute and ids still mint.
        e.execute(&mut ctx, "\\spans off");
        let Response::Query(q2) = e.execute(&mut ctx, contain) else {
            panic!("expected query");
        };
        assert!(q2.query_id > q.query_id);
        assert!(q2.trace.expect("trace still attached").stages.is_empty());
    }

    #[test]
    fn impossible_latency_objective_burns_to_critical() {
        let (mut e, mut ctx) = engine("slo");
        e.execute(&mut ctx, "\\gen faculty 20 9");
        // A 0µs objective makes every query bad; with no healthy history,
        // both windows burn at 1/budget = 100 ≫ the 14/6 thresholds.
        e.execute(&mut ctx, "\\slo latency 0");
        e.execute(&mut ctx, "range of f is Faculty retrieve (N=f.Name);");
        let Response::Stats(s) = e.execute(&mut ctx, "\\stats") else {
            panic!("expected stats");
        };
        assert_eq!(s.health, "critical", "{:?}", s.slo);
        let latency = s.slo.iter().find(|o| o.objective == "latency").unwrap();
        assert!(latency.fast_burn >= 14.0, "{latency:?}");
        assert_eq!(latency.health, "critical");
        let errors = s.slo.iter().find(|o| o.objective == "errors").unwrap();
        assert_eq!(errors.health, "ok", "queries succeeded: {errors:?}");

        // The health flip landed in the event ring, and /healthz agrees.
        let Response::Info(events) = e.execute(&mut ctx, "\\events") else {
            panic!("expected info");
        };
        assert!(events.contains("health"), "{events}");
        assert!(events.contains("ok -> critical"), "{events}");
        let (health, body) = e.health();
        assert_eq!(health, HealthState::Critical);
        assert!(body.contains("\"health\":\"critical\""), "{body}");

        // Errors feed their own objective: a failing query flips it too.
        e.execute(&mut ctx, "range of z is Nope retrieve (N=z.Name);");
        let Response::Stats(s) = e.execute(&mut ctx, "\\stats") else {
            panic!("expected stats");
        };
        let errors = s.slo.iter().find(|o| o.objective == "errors").unwrap();
        assert!(errors.fast_burn > 0.0, "{errors:?}");
    }

    #[test]
    fn slo_reconfiguration_validates_and_resets() {
        let (mut e, mut ctx) = engine("slo-cfg");
        assert!(matches!(
            e.execute(&mut ctx, "\\slo target 1.5"),
            Response::Error(_)
        ));
        assert!(matches!(
            e.execute(&mut ctx, "\\slo burn -1 2"),
            Response::Error(_)
        ));
        let Response::Info(msg) = e.execute(&mut ctx, "\\slo windows 5 60") else {
            panic!("expected info");
        };
        assert!(msg.contains("fast 5s, slow 60s"), "{msg}");
        let Response::Info(status) = e.execute(&mut ctx, "\\slo") else {
            panic!("expected info");
        };
        assert!(status.contains("windows 5s/60s"), "{status}");
        assert!(status.contains("health: ok"), "{status}");
    }

    #[test]
    fn slow_log_threshold_is_configurable() {
        let (mut e, mut ctx) = engine("slow");
        e.execute(&mut ctx, "\\gen faculty 20 3");
        // Threshold 0: every query is "slow" and lands in the log.
        e.execute(&mut ctx, "\\slow 0");
        e.execute(&mut ctx, "range of f is Faculty retrieve (N=f.Name);");
        let Response::Stats(s) = e.execute(&mut ctx, "\\stats") else {
            panic!("expected stats");
        };
        assert_eq!(s.slow_threshold_us, 0);
        assert_eq!(s.slow.len(), 1);
        assert!(s.slow[0].label.contains("Faculty"));
        let text = e.prometheus();
        assert!(text.contains("tdb_queries_total 1"), "{text}");
        assert!(text.contains("tdb_cap_exceeded_total 0"), "{text}");
        assert!(
            text.contains("# TYPE tdb_query_duration_us histogram"),
            "{text}"
        );
    }

    #[test]
    fn set_limit_and_parallelism_mutate_client_state() {
        let (mut e, mut ctx) = engine("set");
        e.execute(&mut ctx, "\\set parallelism 4");
        assert_eq!(ctx.config.parallelism, 4);
        e.execute(&mut ctx, "\\set limit 5");
        assert_eq!(ctx.row_limit, 5);
        let resp = e.execute(&mut ctx, "\\set limit x");
        assert!(matches!(resp, Response::Error(_)));
    }

    #[test]
    fn set_batch_mutates_planner_config_within_range() {
        let (mut e, mut ctx) = engine("setbatch");
        assert_eq!(ctx.config.batch_rows, tdb::stream::DEFAULT_BATCH_ROWS);
        e.execute(&mut ctx, "\\set batch 64");
        assert_eq!(ctx.config.batch_rows, 64);
        e.execute(&mut ctx, "\\set batch 0");
        assert_eq!(ctx.config.batch_rows, 0);
        let over = tdb::stream::MAX_BATCH_ROWS + 1;
        let resp = e.execute(&mut ctx, &format!("\\set batch {over}"));
        let Response::Error(err) = resp else {
            panic!("expected error, got {resp:?}");
        };
        assert_eq!(err.code, ErrorCode::Config);
        assert_eq!(ctx.config.batch_rows, 0, "rejected value must not apply");
    }

    #[test]
    fn bad_set_keys_and_ranges_are_typed_config_errors() {
        let (mut e, mut ctx) = engine("seterr");
        for input in [
            "\\set",
            "\\set warp 9",
            "\\set batch x",
            "\\set parallelism 0",
            "\\set parallelism 1000000",
        ] {
            let resp = e.execute(&mut ctx, input);
            let Response::Error(err) = resp else {
                panic!("expected error for `{input}`, got {resp:?}");
            };
            assert_eq!(err.code, ErrorCode::Config, "{input}: {}", err.message);
        }
        // Rejections leave the client state untouched.
        assert_eq!(ctx.config.parallelism, 1);
        assert_eq!(ctx.config.batch_rows, tdb::stream::DEFAULT_BATCH_ROWS);
    }

    #[test]
    fn batch_setting_does_not_change_query_results() {
        let (mut e, mut ctx) = engine("batcheq");
        e.execute(&mut ctx, "\\gen intervals T 120 3 10 9");
        ctx.row_limit = 10_000;
        let contain = "range of a is T range of b is T retrieve (X=a.Id, Y=b.Id) \
             where a.ValidFrom < b.ValidFrom and b.ValidTo < a.ValidTo;";
        e.execute(&mut ctx, "\\set batch 0");
        let Response::Query(row) = e.execute(&mut ctx, contain) else {
            panic!("expected query");
        };
        for rows in ["1", "64", "1024"] {
            e.execute(&mut ctx, &format!("\\set batch {rows}"));
            let Response::Query(q) = e.execute(&mut ctx, contain) else {
                panic!("expected query");
            };
            assert_eq!(q.rows, row.rows, "batch {rows}");
            assert_eq!(
                q.stats.max_workspace, row.stats.max_workspace,
                "batch {rows}: workspace peaks must be batch-size-invariant"
            );
        }
    }

    #[test]
    fn durable_engine_checkpoints_and_reports_wal_stats() {
        let dir =
            std::env::temp_dir().join(format!("tdb-engine-api-{}-durable", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut ctx = ClientState::default();
        {
            let mut e = Engine::open_durable(&dir, tdb::wal::FlushPolicy::GroupCommit).unwrap();
            assert!(e.is_durable());
            assert_eq!(e.replay_summary().unwrap().relations, 0);
            let resp = e.ingest_text("S", "0 100 long\n10 20 a\n30 40 b\n");
            assert!(matches!(resp, Response::Ingest(_)), "{resp:?}");
            let Response::Stats(s) = e.execute(&mut ctx, "\\stats") else {
                panic!("expected stats");
            };
            let w = s.wal.expect("durable engine reports wal stats");
            assert_eq!(w.flush_policy, "group-commit");
            assert!(w.appends >= 3, "{w:?}");
            assert!(w.fsyncs > 0 && w.checkpoints > 0, "{w:?}");
            // The wal block survives the wire codec.
            let resp = Response::Stats(StatsReport {
                wal: Some(w),
                ..StatsReport::default()
            });
            let back = Response::from_bytes(&resp.to_bytes()).unwrap();
            assert_eq!(back, resp);
            let Response::Info(msg) = e.execute(&mut ctx, "\\checkpoint") else {
                panic!("expected info");
            };
            assert!(msg.contains("checkpointed 1 relation log"), "{msg}");
        }
        // Reopen: the staged suffix and watermark come back; a plain
        // (non-durable) engine reports no wal block and refuses \checkpoint.
        let mut e = Engine::open_durable(&dir, tdb::wal::FlushPolicy::GroupCommit).unwrap();
        let replay = e.replay_summary().unwrap();
        assert_eq!(replay.relations, 1);
        assert_eq!(replay.rows_restaged, 1, "open suffix [30,40) restaged");
        let rel = e.live().relation("S").unwrap();
        assert_eq!(rel.staged_len(), 1);
        assert_eq!(rel.watermark(), Some(TimePoint(30)));
        let resp = e.ingest_text("S", "50 60 c\n");
        assert!(matches!(resp, Response::Ingest(_)), "{resp:?}");

        let (mut plain, mut ctx2) = engine("notdurable");
        let Response::Stats(s) = plain.execute(&mut ctx2, "\\stats") else {
            panic!("expected stats");
        };
        assert!(s.wal.is_none());
        let Response::Info(msg) = plain.execute(&mut ctx2, "\\checkpoint") else {
            panic!("expected info");
        };
        assert!(msg.contains("not durable"), "{msg}");
    }

    #[test]
    fn responses_round_trip_through_the_storage_codec() {
        let (mut e, mut ctx) = engine("codec");
        e.execute(&mut ctx, "\\gen faculty 10 2");
        e.execute(&mut ctx, "\\trace on");
        for input in [
            "\\tables",
            "\\help",
            "range of f is Faculty retrieve (N=f.Name);",
            "\\live",
            "\\stats",
            "range of f is Nope retrieve (N=f.Name);",
            "\\set warp 9",
        ] {
            let resp = e.execute(&mut ctx, input);
            let bytes = resp.to_bytes();
            let back = Response::from_bytes(&bytes).unwrap();
            assert_eq!(back, resp, "round-trip failed for `{input}`");
        }
    }
}
