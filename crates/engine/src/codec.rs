//! Binary encoding of [`Response`] values — the wire face of the engine.
//!
//! Implements [`Codec`] (the `tdb-storage` byte-format trait) for every
//! response type, following the storage conventions: little-endian
//! integers, `u32` length prefixes, one leading tag byte per enum, and
//! defensive decoding that returns [`TdbError::Corrupt`] on truncated or
//! malformed input, never panics. Rows and values reuse the storage
//! codecs directly, so a result row is encoded identically in a heap
//! page and in a network frame.

use crate::response::{
    AnalysisReport, ConnMetrics, DeltaFrame, ErrorCode, ErrorInfo, IngestReport,
    LiveRelationMetrics, LiveRelationStatus, LiveStatus, NetMetrics, OpSpan, OpVerdict,
    QueryReport, QueryStats, QueryTrace, Response, RowSet, SealReport, SloStatus, SlowFsyncInfo,
    StageLatency, StatsReport, SubscribeReport, SubscriptionStatus, SuperstarRow, TableInfo,
    WalReport,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use tdb::core::{TdbError, TdbResult, TimePoint};
use tdb::prelude::Row;
use tdb::storage::Codec;
use tdb_obs::{Stage, StageSpan};

fn need(buf: &Bytes, n: usize, what: &str) -> TdbResult<()> {
    if buf.remaining() < n {
        Err(TdbError::Corrupt(format!(
            "truncated {what}: need {n} bytes, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> TdbResult<String> {
    need(buf, 4, "string length")?;
    let len = buf.get_u32_le() as usize;
    need(buf, len, "string body")?;
    let raw = buf.split_to(len);
    std::str::from_utf8(&raw)
        .map(str::to_owned)
        .map_err(|e| TdbError::Corrupt(format!("invalid utf-8 string: {e}")))
}

fn put_u64(buf: &mut BytesMut, v: u64) {
    buf.put_u64_le(v);
}

fn get_u64(buf: &mut Bytes) -> TdbResult<u64> {
    need(buf, 8, "u64")?;
    Ok(buf.get_u64_le())
}

fn put_bool(buf: &mut BytesMut, v: bool) {
    buf.put_u8(u8::from(v));
}

fn get_bool(buf: &mut Bytes) -> TdbResult<bool> {
    need(buf, 1, "bool")?;
    Ok(buf.get_u8() != 0)
}

fn put_opt<T>(buf: &mut BytesMut, v: Option<&T>, f: impl FnOnce(&mut BytesMut, &T)) {
    match v {
        Some(v) => {
            buf.put_u8(1);
            f(buf, v);
        }
        None => buf.put_u8(0),
    }
}

fn get_opt<T>(buf: &mut Bytes, f: impl FnOnce(&mut Bytes) -> TdbResult<T>) -> TdbResult<Option<T>> {
    need(buf, 1, "option tag")?;
    match buf.get_u8() {
        0 => Ok(None),
        1 => f(buf).map(Some),
        t => Err(TdbError::Corrupt(format!("bad option tag {t}"))),
    }
}

fn put_f64(buf: &mut BytesMut, v: f64) {
    buf.put_u64_le(v.to_bits());
}

fn get_f64(buf: &mut Bytes) -> TdbResult<f64> {
    need(buf, 8, "f64")?;
    Ok(f64::from_bits(buf.get_u64_le()))
}

fn put_time(buf: &mut BytesMut, t: TimePoint) {
    buf.put_i64_le(t.ticks());
}

fn get_time(buf: &mut Bytes) -> TdbResult<TimePoint> {
    need(buf, 8, "time point")?;
    Ok(TimePoint::new(buf.get_i64_le()))
}

fn put_vec<T: Codec>(buf: &mut BytesMut, v: &[T]) {
    buf.put_u32_le(v.len() as u32);
    for item in v {
        item.encode(buf);
    }
}

fn get_vec<T: Codec>(buf: &mut Bytes) -> TdbResult<Vec<T>> {
    need(buf, 4, "vec length")?;
    let n = buf.get_u32_le() as usize;
    // Capacity is clamped so a corrupt length cannot force a huge
    // allocation before per-item decoding fails on truncation.
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(T::decode(buf)?);
    }
    Ok(out)
}

fn put_strs(buf: &mut BytesMut, v: &[String]) {
    buf.put_u32_le(v.len() as u32);
    for s in v {
        put_str(buf, s);
    }
}

fn get_strs(buf: &mut Bytes) -> TdbResult<Vec<String>> {
    need(buf, 4, "vec length")?;
    let n = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(get_str(buf)?);
    }
    Ok(out)
}

const TAG_INFO: u8 = 0;
const TAG_GOODBYE: u8 = 1;
const TAG_TABLES: u8 = 2;
const TAG_QUERY: u8 = 3;
const TAG_ANALYSIS: u8 = 4;
const TAG_INGEST: u8 = 5;
const TAG_SUBSCRIBED: u8 = 6;
const TAG_LIVE: u8 = 7;
const TAG_SEALED: u8 = 8;
const TAG_SUPERSTAR: u8 = 9;
const TAG_ERROR: u8 = 10;
const TAG_STATS: u8 = 11;
const TAG_QUERY_STREAM: u8 = 12;

// `OpSpan` and `QueryTrace` live in `tdb-obs`, which knows nothing of the
// storage `Codec` trait; the orphan rule keeps the impls out of here too,
// so traces go through these free functions instead.

fn put_span(buf: &mut BytesMut, s: &OpSpan) {
    put_str(buf, &s.operator);
    put_u64(buf, s.partitions);
    put_u64(buf, s.rows_in);
    put_u64(buf, s.rows_out);
    put_u64(buf, s.comparisons);
    put_u64(buf, s.evicted);
    put_u64(buf, s.workspace_peak);
    put_f64(buf, s.workspace_mean);
    buf.put_u32_le(s.occupancy.len() as u32);
    for &c in &s.occupancy {
        put_u64(buf, c);
    }
    put_opt(buf, s.predicted_cap.as_ref(), |b, v| put_u64(b, *v));
    put_opt(buf, s.predicted_expectation.as_ref(), |b, v| put_f64(b, *v));
}

fn get_span(buf: &mut Bytes) -> TdbResult<OpSpan> {
    let operator = get_str(buf)?;
    let partitions = get_u64(buf)?;
    let rows_in = get_u64(buf)?;
    let rows_out = get_u64(buf)?;
    let comparisons = get_u64(buf)?;
    let evicted = get_u64(buf)?;
    let workspace_peak = get_u64(buf)?;
    let workspace_mean = get_f64(buf)?;
    need(buf, 4, "occupancy length")?;
    let n = buf.get_u32_le() as usize;
    let mut occupancy = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        occupancy.push(get_u64(buf)?);
    }
    Ok(OpSpan {
        operator,
        partitions,
        rows_in,
        rows_out,
        comparisons,
        evicted,
        workspace_peak,
        workspace_mean,
        occupancy,
        predicted_cap: get_opt(buf, get_u64)?,
        predicted_expectation: get_opt(buf, get_f64)?,
    })
}

// Stage spans travel by stage *name* rather than a numeric discriminant,
// so a frame stays decodable even if the stage set is reordered later.

fn put_stage_span(buf: &mut BytesMut, s: &StageSpan) {
    put_str(buf, s.stage.name());
    put_u64(buf, s.start_us);
    put_u64(buf, s.elapsed_us);
    buf.put_u32_le(s.depth);
    put_str(buf, &s.detail);
}

fn get_stage_span(buf: &mut Bytes) -> TdbResult<StageSpan> {
    let name = get_str(buf)?;
    let stage = Stage::parse_name(&name)
        .ok_or_else(|| TdbError::Corrupt(format!("unknown stage name {name:?}")))?;
    let start_us = get_u64(buf)?;
    let elapsed_us = get_u64(buf)?;
    need(buf, 4, "stage depth")?;
    let depth = buf.get_u32_le();
    let detail = get_str(buf)?;
    Ok(StageSpan {
        stage,
        start_us,
        elapsed_us,
        depth,
        detail,
    })
}

/// Encode one [`QueryTrace`] with the storage conventions.
pub fn put_trace(buf: &mut BytesMut, t: &QueryTrace) {
    put_u64(buf, t.query_id);
    put_str(buf, &t.label);
    put_u64(buf, t.elapsed_us);
    put_u64(buf, t.rows);
    put_u64(buf, t.sink_rows);
    put_u64(buf, t.sink_bytes);
    buf.put_u32_le(t.spans.len() as u32);
    for s in &t.spans {
        put_span(buf, s);
    }
    buf.put_u32_le(t.stages.len() as u32);
    for s in &t.stages {
        put_stage_span(buf, s);
    }
}

/// Decode one [`QueryTrace`]; truncated input yields [`TdbError::Corrupt`].
pub fn get_trace(buf: &mut Bytes) -> TdbResult<QueryTrace> {
    let query_id = get_u64(buf)?;
    let label = get_str(buf)?;
    let elapsed_us = get_u64(buf)?;
    let rows = get_u64(buf)?;
    let sink_rows = get_u64(buf)?;
    let sink_bytes = get_u64(buf)?;
    need(buf, 4, "span count")?;
    let n = buf.get_u32_le() as usize;
    let mut spans = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        spans.push(get_span(buf)?);
    }
    need(buf, 4, "stage span count")?;
    let n = buf.get_u32_le() as usize;
    let mut stages = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        stages.push(get_stage_span(buf)?);
    }
    Ok(QueryTrace {
        query_id,
        label,
        elapsed_us,
        rows,
        sink_rows,
        sink_bytes,
        spans,
        stages,
    })
}

fn put_traces(buf: &mut BytesMut, v: &[QueryTrace]) {
    buf.put_u32_le(v.len() as u32);
    for t in v {
        put_trace(buf, t);
    }
}

fn get_traces(buf: &mut Bytes) -> TdbResult<Vec<QueryTrace>> {
    need(buf, 4, "trace count")?;
    let n = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(get_trace(buf)?);
    }
    Ok(out)
}

impl Codec for Response {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Response::Info(s) => {
                buf.put_u8(TAG_INFO);
                put_str(buf, s);
            }
            Response::Goodbye => buf.put_u8(TAG_GOODBYE),
            Response::Tables(t) => {
                buf.put_u8(TAG_TABLES);
                put_vec(buf, t);
            }
            Response::Query(q) => {
                buf.put_u8(TAG_QUERY);
                q.encode(buf);
            }
            Response::QueryStream(q) => {
                buf.put_u8(TAG_QUERY_STREAM);
                q.encode(buf);
            }
            Response::Analysis(a) => {
                buf.put_u8(TAG_ANALYSIS);
                a.encode(buf);
            }
            Response::Ingest(r) => {
                buf.put_u8(TAG_INGEST);
                r.encode(buf);
            }
            Response::Subscribed(r) => {
                buf.put_u8(TAG_SUBSCRIBED);
                r.encode(buf);
            }
            Response::Live(s) => {
                buf.put_u8(TAG_LIVE);
                s.encode(buf);
            }
            Response::Sealed(r) => {
                buf.put_u8(TAG_SEALED);
                r.encode(buf);
            }
            Response::Superstar(rows) => {
                buf.put_u8(TAG_SUPERSTAR);
                put_vec(buf, rows);
            }
            Response::Stats(s) => {
                buf.put_u8(TAG_STATS);
                s.encode(buf);
            }
            Response::Error(e) => {
                buf.put_u8(TAG_ERROR);
                e.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> TdbResult<Response> {
        need(buf, 1, "response tag")?;
        match buf.get_u8() {
            TAG_INFO => Ok(Response::Info(get_str(buf)?)),
            TAG_GOODBYE => Ok(Response::Goodbye),
            TAG_TABLES => Ok(Response::Tables(get_vec(buf)?)),
            TAG_QUERY => Ok(Response::Query(QueryReport::decode(buf)?)),
            TAG_QUERY_STREAM => Ok(Response::QueryStream(QueryReport::decode(buf)?)),
            TAG_ANALYSIS => Ok(Response::Analysis(AnalysisReport::decode(buf)?)),
            TAG_INGEST => Ok(Response::Ingest(IngestReport::decode(buf)?)),
            TAG_SUBSCRIBED => Ok(Response::Subscribed(SubscribeReport::decode(buf)?)),
            TAG_LIVE => Ok(Response::Live(LiveStatus::decode(buf)?)),
            TAG_SEALED => Ok(Response::Sealed(SealReport::decode(buf)?)),
            TAG_SUPERSTAR => Ok(Response::Superstar(get_vec(buf)?)),
            TAG_STATS => Ok(Response::Stats(StatsReport::decode(buf)?)),
            TAG_ERROR => Ok(Response::Error(ErrorInfo::decode(buf)?)),
            t => Err(TdbError::Corrupt(format!("unknown response tag {t}"))),
        }
    }
}

impl Codec for TableInfo {
    fn encode(&self, buf: &mut BytesMut) {
        put_str(buf, &self.name);
        put_u64(buf, self.rows);
        put_str(buf, &self.schema);
        put_opt(buf, self.lambda.as_ref(), |b, v| put_f64(b, *v));
        put_f64(buf, self.mean_duration);
        put_u64(buf, self.max_concurrency);
    }

    fn decode(buf: &mut Bytes) -> TdbResult<TableInfo> {
        Ok(TableInfo {
            name: get_str(buf)?,
            rows: get_u64(buf)?,
            schema: get_str(buf)?,
            lambda: get_opt(buf, get_f64)?,
            mean_duration: get_f64(buf)?,
            max_concurrency: get_u64(buf)?,
        })
    }
}

impl Codec for RowSet {
    fn encode(&self, buf: &mut BytesMut) {
        put_strs(buf, &self.columns);
        put_vec::<Row>(buf, &self.rows);
        put_u64(buf, self.total);
    }

    fn decode(buf: &mut Bytes) -> TdbResult<RowSet> {
        Ok(RowSet {
            columns: get_strs(buf)?,
            rows: get_vec(buf)?,
            total: get_u64(buf)?,
        })
    }
}

impl Codec for QueryStats {
    fn encode(&self, buf: &mut BytesMut) {
        put_u64(buf, self.rows_scanned);
        put_u64(buf, self.comparisons);
        put_u64(buf, self.max_workspace);
        put_u64(buf, self.sorts_performed);
    }

    fn decode(buf: &mut Bytes) -> TdbResult<QueryStats> {
        Ok(QueryStats {
            rows_scanned: get_u64(buf)?,
            comparisons: get_u64(buf)?,
            max_workspace: get_u64(buf)?,
            sorts_performed: get_u64(buf)?,
        })
    }
}

impl Codec for QueryReport {
    fn encode(&self, buf: &mut BytesMut) {
        put_u64(buf, self.query_id);
        put_opt(buf, self.logical.as_ref(), |b, s| put_str(b, s));
        put_opt(buf, self.optimized.as_ref(), |b, s| put_str(b, s));
        put_opt(buf, self.physical.as_ref(), |b, s| put_str(b, s));
        put_opt(buf, self.certificate.as_ref(), |b, s| put_str(b, s));
        self.rows.encode(buf);
        self.stats.encode(buf);
        put_u64(buf, self.elapsed_us);
        put_opt(buf, self.trace.as_ref(), put_trace);
    }

    fn decode(buf: &mut Bytes) -> TdbResult<QueryReport> {
        Ok(QueryReport {
            query_id: get_u64(buf)?,
            logical: get_opt(buf, get_str)?,
            optimized: get_opt(buf, get_str)?,
            physical: get_opt(buf, get_str)?,
            certificate: get_opt(buf, get_str)?,
            rows: RowSet::decode(buf)?,
            stats: QueryStats::decode(buf)?,
            elapsed_us: get_u64(buf)?,
            trace: get_opt(buf, get_trace)?,
        })
    }
}

impl Codec for OpVerdict {
    fn encode(&self, buf: &mut BytesMut) {
        put_str(buf, &self.path);
        put_str(buf, &self.operator);
        put_str(buf, &self.table_entry);
        put_opt(buf, self.workspace_expectation.as_ref(), |b, v| {
            put_f64(b, *v)
        });
        put_opt(buf, self.workspace_cap.as_ref(), |b, v| put_u64(b, *v));
    }

    fn decode(buf: &mut Bytes) -> TdbResult<OpVerdict> {
        Ok(OpVerdict {
            path: get_str(buf)?,
            operator: get_str(buf)?,
            table_entry: get_str(buf)?,
            workspace_expectation: get_opt(buf, get_f64)?,
            workspace_cap: get_opt(buf, get_u64)?,
        })
    }
}

impl Codec for AnalysisReport {
    fn encode(&self, buf: &mut BytesMut) {
        put_str(buf, &self.physical);
        put_vec(buf, &self.ops);
        put_str(buf, &self.certificate);
    }

    fn decode(buf: &mut Bytes) -> TdbResult<AnalysisReport> {
        Ok(AnalysisReport {
            physical: get_str(buf)?,
            ops: get_vec(buf)?,
            certificate: get_str(buf)?,
        })
    }
}

impl Codec for DeltaFrame {
    fn encode(&self, buf: &mut BytesMut) {
        put_u64(buf, self.subscription);
        put_str(buf, &self.label);
        put_u64(buf, self.epoch);
        put_opt(buf, self.watermark.as_ref(), |b, t| put_time(b, *t));
        put_vec::<Row>(buf, &self.rows);
    }

    fn decode(buf: &mut Bytes) -> TdbResult<DeltaFrame> {
        Ok(DeltaFrame {
            subscription: get_u64(buf)?,
            label: get_str(buf)?,
            epoch: get_u64(buf)?,
            watermark: get_opt(buf, get_time)?,
            rows: get_vec(buf)?,
        })
    }
}

impl Codec for IngestReport {
    fn encode(&self, buf: &mut BytesMut) {
        put_str(buf, &self.relation);
        put_u64(buf, self.offered);
        put_u64(buf, self.promoted);
        put_u64(buf, self.staged);
        put_opt(buf, self.watermark.as_ref(), |b, t| put_time(b, *t));
        put_vec(buf, &self.deltas);
    }

    fn decode(buf: &mut Bytes) -> TdbResult<IngestReport> {
        Ok(IngestReport {
            relation: get_str(buf)?,
            offered: get_u64(buf)?,
            promoted: get_u64(buf)?,
            staged: get_u64(buf)?,
            watermark: get_opt(buf, get_time)?,
            deltas: get_vec(buf)?,
        })
    }
}

impl Codec for SubscribeReport {
    fn encode(&self, buf: &mut BytesMut) {
        put_u64(buf, self.id);
        put_opt(buf, self.certificate.as_ref(), |b, s| put_str(b, s));
        self.initial.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> TdbResult<SubscribeReport> {
        Ok(SubscribeReport {
            id: get_u64(buf)?,
            certificate: get_opt(buf, get_str)?,
            initial: DeltaFrame::decode(buf)?,
        })
    }
}

impl Codec for SealReport {
    fn encode(&self, buf: &mut BytesMut) {
        put_str(buf, &self.relation);
        put_u64(buf, self.promoted);
        put_vec(buf, &self.deltas);
    }

    fn decode(buf: &mut Bytes) -> TdbResult<SealReport> {
        Ok(SealReport {
            relation: get_str(buf)?,
            promoted: get_u64(buf)?,
            deltas: get_vec(buf)?,
        })
    }
}

impl Codec for LiveRelationStatus {
    fn encode(&self, buf: &mut BytesMut) {
        put_str(buf, &self.name);
        put_str(buf, &self.order);
        put_bool(buf, self.sealed);
        put_opt(buf, self.watermark.as_ref(), |b, t| put_time(b, *t));
        put_u64(buf, self.admitted);
        put_u64(buf, self.staged);
        put_u64(buf, self.promoted);
        put_u64(buf, self.watermark_lag);
        put_u64(buf, self.stalls);
    }

    fn decode(buf: &mut Bytes) -> TdbResult<LiveRelationStatus> {
        Ok(LiveRelationStatus {
            name: get_str(buf)?,
            order: get_str(buf)?,
            sealed: get_bool(buf)?,
            watermark: get_opt(buf, get_time)?,
            admitted: get_u64(buf)?,
            staged: get_u64(buf)?,
            promoted: get_u64(buf)?,
            watermark_lag: get_u64(buf)?,
            stalls: get_u64(buf)?,
        })
    }
}

impl Codec for SubscriptionStatus {
    fn encode(&self, buf: &mut BytesMut) {
        put_u64(buf, self.id);
        put_str(buf, &self.label);
        put_u64(buf, self.evaluations);
        put_u64(buf, self.emitted);
        put_u64(buf, self.workspace_peak);
        put_u64(buf, self.workspace_cap);
        put_bool(buf, self.cancelled);
    }

    fn decode(buf: &mut Bytes) -> TdbResult<SubscriptionStatus> {
        Ok(SubscriptionStatus {
            id: get_u64(buf)?,
            label: get_str(buf)?,
            evaluations: get_u64(buf)?,
            emitted: get_u64(buf)?,
            workspace_peak: get_u64(buf)?,
            workspace_cap: get_u64(buf)?,
            cancelled: get_bool(buf)?,
        })
    }
}

impl Codec for LiveStatus {
    fn encode(&self, buf: &mut BytesMut) {
        put_vec(buf, &self.relations);
        put_vec(buf, &self.subscriptions);
    }

    fn decode(buf: &mut Bytes) -> TdbResult<LiveStatus> {
        Ok(LiveStatus {
            relations: get_vec(buf)?,
            subscriptions: get_vec(buf)?,
        })
    }
}

impl Codec for SuperstarRow {
    fn encode(&self, buf: &mut BytesMut) {
        put_str(buf, &self.label);
        put_u64(buf, self.elapsed_us);
        put_u64(buf, self.comparisons);
        put_u64(buf, self.superstars);
    }

    fn decode(buf: &mut Bytes) -> TdbResult<SuperstarRow> {
        Ok(SuperstarRow {
            label: get_str(buf)?,
            elapsed_us: get_u64(buf)?,
            comparisons: get_u64(buf)?,
            superstars: get_u64(buf)?,
        })
    }
}

impl Codec for LiveRelationMetrics {
    fn encode(&self, buf: &mut BytesMut) {
        put_str(buf, &self.relation);
        put_u64(buf, self.queue_depth);
        put_u64(buf, self.queue_capacity);
        put_u64(buf, self.staged);
        put_u64(buf, self.watermark_lag);
        put_u64(buf, self.promotion_batches);
        put_u64(buf, self.max_promotion_batch);
        put_opt(buf, self.lambda_static.as_ref(), |b, v| put_f64(b, *v));
        put_opt(buf, self.lambda_live.as_ref(), |b, v| put_f64(b, *v));
        put_opt(buf, self.duration_static.as_ref(), |b, v| put_f64(b, *v));
        put_opt(buf, self.duration_live.as_ref(), |b, v| put_f64(b, *v));
    }

    fn decode(buf: &mut Bytes) -> TdbResult<LiveRelationMetrics> {
        Ok(LiveRelationMetrics {
            relation: get_str(buf)?,
            queue_depth: get_u64(buf)?,
            queue_capacity: get_u64(buf)?,
            staged: get_u64(buf)?,
            watermark_lag: get_u64(buf)?,
            promotion_batches: get_u64(buf)?,
            max_promotion_batch: get_u64(buf)?,
            lambda_static: get_opt(buf, get_f64)?,
            lambda_live: get_opt(buf, get_f64)?,
            duration_static: get_opt(buf, get_f64)?,
            duration_live: get_opt(buf, get_f64)?,
        })
    }
}

impl Codec for ConnMetrics {
    fn encode(&self, buf: &mut BytesMut) {
        put_u64(buf, self.id);
        put_u64(buf, self.frames_in);
        put_u64(buf, self.bytes_in);
        put_u64(buf, self.frames_out);
        put_u64(buf, self.bytes_out);
        put_u64(buf, self.push_highwater);
    }

    fn decode(buf: &mut Bytes) -> TdbResult<ConnMetrics> {
        Ok(ConnMetrics {
            id: get_u64(buf)?,
            frames_in: get_u64(buf)?,
            bytes_in: get_u64(buf)?,
            frames_out: get_u64(buf)?,
            bytes_out: get_u64(buf)?,
            push_highwater: get_u64(buf)?,
        })
    }
}

impl Codec for NetMetrics {
    fn encode(&self, buf: &mut BytesMut) {
        put_u64(buf, self.connections);
        put_u64(buf, self.frames_in);
        put_u64(buf, self.bytes_in);
        put_u64(buf, self.frames_out);
        put_u64(buf, self.bytes_out);
        put_u64(buf, self.push_queue_highwater);
        put_u64(buf, self.slow_subscriber_disconnects);
        put_vec(buf, &self.conns);
    }

    fn decode(buf: &mut Bytes) -> TdbResult<NetMetrics> {
        Ok(NetMetrics {
            connections: get_u64(buf)?,
            frames_in: get_u64(buf)?,
            bytes_in: get_u64(buf)?,
            frames_out: get_u64(buf)?,
            bytes_out: get_u64(buf)?,
            push_queue_highwater: get_u64(buf)?,
            slow_subscriber_disconnects: get_u64(buf)?,
            conns: get_vec(buf)?,
        })
    }
}

impl Codec for SlowFsyncInfo {
    fn encode(&self, buf: &mut BytesMut) {
        put_str(buf, &self.relation);
        put_u64(buf, self.micros);
    }

    fn decode(buf: &mut Bytes) -> TdbResult<SlowFsyncInfo> {
        Ok(SlowFsyncInfo {
            relation: get_str(buf)?,
            micros: get_u64(buf)?,
        })
    }
}

impl Codec for WalReport {
    fn encode(&self, buf: &mut BytesMut) {
        put_str(buf, &self.flush_policy);
        put_u64(buf, self.appends);
        put_u64(buf, self.commits);
        put_u64(buf, self.fsyncs);
        put_u64(buf, self.bytes_written);
        put_u64(buf, self.checkpoints);
        put_u64(buf, self.torn_truncations);
        put_u64(buf, self.replayed_records);
        put_u64(buf, self.replay_bytes);
        put_u64(buf, self.replay_us);
        put_vec(buf, &self.slow_fsyncs);
    }

    fn decode(buf: &mut Bytes) -> TdbResult<WalReport> {
        Ok(WalReport {
            flush_policy: get_str(buf)?,
            appends: get_u64(buf)?,
            commits: get_u64(buf)?,
            fsyncs: get_u64(buf)?,
            bytes_written: get_u64(buf)?,
            checkpoints: get_u64(buf)?,
            torn_truncations: get_u64(buf)?,
            replayed_records: get_u64(buf)?,
            replay_bytes: get_u64(buf)?,
            replay_us: get_u64(buf)?,
            slow_fsyncs: get_vec(buf)?,
        })
    }
}

impl Codec for StageLatency {
    fn encode(&self, buf: &mut BytesMut) {
        put_str(buf, &self.stage);
        put_u64(buf, self.count);
        put_u64(buf, self.p50_us);
        put_u64(buf, self.p99_us);
    }

    fn decode(buf: &mut Bytes) -> TdbResult<StageLatency> {
        Ok(StageLatency {
            stage: get_str(buf)?,
            count: get_u64(buf)?,
            p50_us: get_u64(buf)?,
            p99_us: get_u64(buf)?,
        })
    }
}

impl Codec for SloStatus {
    fn encode(&self, buf: &mut BytesMut) {
        put_str(buf, &self.objective);
        put_f64(buf, self.target);
        put_u64(buf, self.fast_window_s);
        put_u64(buf, self.slow_window_s);
        put_f64(buf, self.fast_burn);
        put_f64(buf, self.slow_burn);
        put_str(buf, &self.health);
    }

    fn decode(buf: &mut Bytes) -> TdbResult<SloStatus> {
        Ok(SloStatus {
            objective: get_str(buf)?,
            target: get_f64(buf)?,
            fast_window_s: get_u64(buf)?,
            slow_window_s: get_u64(buf)?,
            fast_burn: get_f64(buf)?,
            slow_burn: get_f64(buf)?,
            health: get_str(buf)?,
        })
    }
}

impl Codec for StatsReport {
    fn encode(&self, buf: &mut BytesMut) {
        put_u64(buf, self.queries);
        put_u64(buf, self.rows_returned);
        put_u64(buf, self.cap_exceeded);
        put_u64(buf, self.slow_threshold_us);
        put_traces(buf, &self.slow);
        put_opt(buf, self.last.as_ref(), put_trace);
        put_vec(buf, &self.live);
        put_opt(buf, self.net.as_ref(), |b, n| n.encode(b));
        put_opt(buf, self.wal.as_ref(), |b, w| w.encode(b));
        put_vec(buf, &self.stages);
        put_vec(buf, &self.slo);
        put_str(buf, &self.health);
    }

    fn decode(buf: &mut Bytes) -> TdbResult<StatsReport> {
        Ok(StatsReport {
            queries: get_u64(buf)?,
            rows_returned: get_u64(buf)?,
            cap_exceeded: get_u64(buf)?,
            slow_threshold_us: get_u64(buf)?,
            slow: get_traces(buf)?,
            last: get_opt(buf, get_trace)?,
            live: get_vec(buf)?,
            net: get_opt(buf, NetMetrics::decode)?,
            wal: get_opt(buf, WalReport::decode)?,
            stages: get_vec(buf)?,
            slo: get_vec(buf)?,
            health: get_str(buf)?,
        })
    }
}

impl Codec for ErrorInfo {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(self.code as u8);
        put_str(buf, &self.message);
    }

    fn decode(buf: &mut Bytes) -> TdbResult<ErrorInfo> {
        need(buf, 1, "error code")?;
        let raw = buf.get_u8();
        let code = ErrorCode::from_u8(raw)
            .ok_or_else(|| TdbError::Corrupt(format!("unknown error code {raw}")))?;
        Ok(ErrorInfo {
            code,
            message: get_str(buf)?,
        })
    }
}
