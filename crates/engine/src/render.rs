//! Text rendering of [`Response`] values — the terminal face of the
//! engine.
//!
//! This is the renderer the CLI shell and `tdb connect` share. It is
//! deliberately dumb: every decision that needs engine state (row-limit
//! truncation of query results, plan/verify visibility) was already made
//! when the [`Response`] was built; the renderer only decides how many
//! *delta* rows to print per subscription (`delta_limit`), since delta
//! frames always carry every row for the benefit of push consumers.

use crate::response::{
    DeltaFrame, IngestReport, LiveStatus, QueryReport, QueryTrace, Response, SealReport,
    StatsReport, SubscribeReport, SuperstarRow, TableInfo,
};
use std::fmt::Write as _;
use std::time::Duration;

/// Render a response as shell text, truncating delta displays at
/// `delta_limit` rows per subscription.
pub fn render(resp: &Response, delta_limit: usize) -> String {
    match resp {
        Response::Info(s) => s.clone(),
        Response::Goodbye => String::new(),
        Response::Tables(tables) => render_tables(tables),
        Response::Query(q) => render_query(q),
        // Rendering a stream header directly (no chunk machinery) shows
        // whatever rows it carries — usually none; chunk-aware clients use
        // `render_stream_header`/`render_rows`/`render_stream_footer`.
        Response::QueryStream(q) => render_query(q),
        Response::Analysis(a) => {
            format!(
                "── physical ──\n{}\n── static analysis ──\n{}\n",
                a.physical, a.certificate
            )
        }
        Response::Ingest(r) => render_ingest(r, delta_limit),
        Response::Subscribed(r) => render_subscribed(r, delta_limit),
        Response::Live(s) => render_live(s),
        Response::Sealed(r) => render_sealed(r, delta_limit),
        Response::Superstar(rows) => render_superstar(rows),
        Response::Stats(s) => render_stats(s),
        Response::Error(e) => format!("error: {}", e.message),
    }
}

fn render_tables(tables: &[TableInfo]) -> String {
    if tables.is_empty() {
        return "no relations — try \\gen faculty 100\n".into();
    }
    let mut out = String::new();
    for t in tables {
        let lambda = t
            .lambda
            .map(|l| format!("{l:.3}"))
            .unwrap_or_else(|| "-".into());
        writeln!(
            out,
            "{}: {} rows, schema {}, λ={lambda}, mean dur {:.1}, max concurrency {}",
            t.name, t.rows, t.schema, t.mean_duration, t.max_concurrency
        )
        .ok();
    }
    out
}

fn render_query(q: &QueryReport) -> String {
    let mut out = render_stream_header(q);
    out.push_str(&render_rows(&q.rows.rows));
    out.push_str(&render_stream_footer(q, q.rows.rows.len() as u64));
    out
}

/// Everything that precedes the rows of a query result: optional plan and
/// certificate blocks plus the column header line. Chunk-aware clients
/// print this once, then [`render_rows`] per arriving chunk, then
/// [`render_stream_footer`].
pub fn render_stream_header(q: &QueryReport) -> String {
    let mut out = String::new();
    if let Some(l) = &q.logical {
        writeln!(out, "── logical (translated) ──\n{l}").ok();
    }
    if let Some(o) = &q.optimized {
        writeln!(out, "── logical (optimized) ──\n{o}").ok();
    }
    if let Some(p) = &q.physical {
        writeln!(out, "── physical ──\n{p}").ok();
    }
    if let Some(c) = &q.certificate {
        writeln!(out, "── static analysis ──\n{c}").ok();
    }
    writeln!(out, "{}", q.rows.columns.join(" | ")).ok();
    out
}

/// One chunk of result rows, one line each.
pub fn render_rows(rows: &[tdb::prelude::Row]) -> String {
    let mut out = String::new();
    for row in rows {
        let cells: Vec<String> = row.values().iter().map(|v| v.to_string()).collect();
        writeln!(out, "{}", cells.join(" | ")).ok();
    }
    out
}

/// Everything that follows the rows: the more-rows marker (`shown` is how
/// many rows were actually printed), the stats line, and the trace block.
pub fn render_stream_footer(q: &QueryReport, shown: u64) -> String {
    let mut out = String::new();
    if q.rows.total > shown {
        writeln!(out, "… ({} more rows)", q.rows.total - shown).ok();
    }
    writeln!(
        out,
        "{} rows in {:.2?} — {} scanned, {} comparisons, workspace {}, {} sorts",
        q.rows.total,
        Duration::from_micros(q.elapsed_us),
        q.stats.rows_scanned,
        q.stats.comparisons,
        q.stats.max_workspace,
        q.stats.sorts_performed,
    )
    .ok();
    if let Some(t) = &q.trace {
        render_trace(t, &mut out);
    }
    out
}

/// One trace block: a span line per operator, observed workspace next to
/// the analyzer's predictions.
fn render_trace(t: &QueryTrace, out: &mut String) {
    if t.query_id != 0 {
        writeln!(out, "── trace (query {}) ──", t.query_id).ok();
    } else {
        writeln!(out, "── trace ──").ok();
    }
    for s in &t.stages {
        let detail = if s.detail.is_empty() {
            String::new()
        } else {
            format!("  {}", s.detail)
        };
        writeln!(
            out,
            "{}{:<10} +{:>8}µs  {:>8}µs{detail}",
            "  ".repeat(s.depth as usize + 1),
            s.stage.name(),
            s.start_us,
            s.elapsed_us,
        )
        .ok();
    }
    for s in &t.spans {
        let cap = s
            .predicted_cap
            .map(|c| c.to_string())
            .unwrap_or_else(|| "-".into());
        let expect = s
            .predicted_expectation
            .map(|e| format!("{e:.2}"))
            .unwrap_or_else(|| "-".into());
        let flag = if s.cap_exceeded() {
            "  CAP EXCEEDED"
        } else {
            ""
        };
        writeln!(
            out,
            "{}{}: {} in → {} out, {} comparisons, {} evicted, \
             workspace peak {} (mean {:.1}) vs cap {cap}, λ·E[D] {expect}{flag}",
            s.operator,
            if s.partitions > 1 {
                format!(" ×{}", s.partitions)
            } else {
                String::new()
            },
            s.rows_in,
            s.rows_out,
            s.comparisons,
            s.evicted,
            s.workspace_peak,
            s.workspace_mean,
        )
        .ok();
    }
}

fn wm_str(wm: Option<tdb::core::TimePoint>) -> String {
    wm.map(|t| t.to_string()).unwrap_or_else(|| "-".into())
}

/// Render one delta block: the header names the finalizing epoch and
/// watermark so shell users see the same correlation handle remote
/// clients get in the frame.
pub fn render_delta(delta: &DeltaFrame, delta_limit: usize, out: &mut String) {
    writeln!(
        out,
        "▸ #{} `{}`: +{} rows (epoch {}, watermark {})",
        delta.subscription,
        delta.label,
        delta.rows.len(),
        delta.epoch,
        wm_str(delta.watermark),
    )
    .ok();
    for row in delta.rows.iter().take(delta_limit) {
        let cells: Vec<String> = row.values().iter().map(|v| v.to_string()).collect();
        writeln!(out, "  {}", cells.join(" | ")).ok();
    }
    if delta.rows.len() > delta_limit {
        writeln!(out, "  … ({} more rows)", delta.rows.len() - delta_limit).ok();
    }
}

fn render_ingest(r: &IngestReport, delta_limit: usize) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{}: {} arrivals — {} promoted (final), {} staged, watermark {}",
        r.relation,
        r.offered,
        r.promoted,
        r.staged,
        wm_str(r.watermark),
    )
    .ok();
    for d in &r.deltas {
        render_delta(d, delta_limit, &mut out);
    }
    out
}

fn render_subscribed(r: &SubscribeReport, delta_limit: usize) -> String {
    let mut out = String::new();
    writeln!(out, "subscription #{} registered", r.id).ok();
    if let Some(c) = &r.certificate {
        writeln!(out, "── static analysis (live) ──\n{c}").ok();
    }
    if !r.initial.rows.is_empty() {
        render_delta(&r.initial, delta_limit, &mut out);
    }
    out
}

fn render_live(s: &LiveStatus) -> String {
    let mut out = String::new();
    for rel in &s.relations {
        writeln!(
            out,
            "{} ({}): watermark {}{}, {} admitted, {} staged, {} promoted, \
             lag {}, {} stalls",
            rel.name,
            rel.order,
            wm_str(rel.watermark),
            if rel.sealed { " [sealed]" } else { "" },
            rel.admitted,
            rel.staged,
            rel.promoted,
            rel.watermark_lag,
            rel.stalls,
        )
        .ok();
    }
    for sub in &s.subscriptions {
        writeln!(
            out,
            "#{} `{}`: {} evaluations, {} rows emitted, workspace peak {} / cap {}{}",
            sub.id,
            sub.label,
            sub.evaluations,
            sub.emitted,
            sub.workspace_peak,
            sub.workspace_cap,
            if sub.cancelled { " [cancelled]" } else { "" },
        )
        .ok();
    }
    if out.is_empty() {
        out = "no live relations — try \\ingest <rel> <file>\n".into();
    }
    out
}

fn render_sealed(r: &SealReport, delta_limit: usize) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{} sealed: {} rows promoted (final)",
        r.relation, r.promoted
    )
    .ok();
    for d in &r.deltas {
        render_delta(d, delta_limit, &mut out);
    }
    out
}

fn render_stats(s: &StatsReport) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{} queries, {} rows returned, cap exceeded {}{}",
        s.queries,
        s.rows_returned,
        s.cap_exceeded,
        if s.health.is_empty() {
            String::new()
        } else {
            format!(", health {}", s.health)
        },
    )
    .ok();
    if !s.stages.is_empty() {
        writeln!(out, "stage        count      p50        p99").ok();
        for l in &s.stages {
            writeln!(
                out,
                "  {:<10} {:>6} {:>7}µs  {:>7}µs",
                l.stage, l.count, l.p50_us, l.p99_us
            )
            .ok();
        }
    }
    for o in &s.slo {
        writeln!(
            out,
            "slo {}: target {:.4}, burn {:.2} ({}s) / {:.2} ({}s) — {}",
            o.objective,
            o.target,
            o.fast_burn,
            o.fast_window_s,
            o.slow_burn,
            o.slow_window_s,
            o.health,
        )
        .ok();
    }
    if let Some(last) = &s.last {
        writeln!(
            out,
            "last: `{}` — {} rows in {:.2?}",
            last.label,
            last.rows,
            Duration::from_micros(last.elapsed_us)
        )
        .ok();
        render_trace(last, &mut out);
    }
    writeln!(
        out,
        "slow queries (≥ {}µs): {}",
        s.slow_threshold_us,
        s.slow.len()
    )
    .ok();
    for t in &s.slow {
        writeln!(
            out,
            "  {:.2?}  {} rows  `{}`",
            Duration::from_micros(t.elapsed_us),
            t.rows,
            t.label
        )
        .ok();
    }
    for m in &s.live {
        let drift = |stat: Option<f64>, live: Option<f64>| match (stat, live) {
            (Some(a), Some(b)) => format!("{a:.3} → {b:.3}"),
            (_, Some(b)) => format!("- → {b:.3}"),
            (Some(a), _) => format!("{a:.3} → -"),
            _ => "-".into(),
        };
        writeln!(
            out,
            "live {}: queue {}/{}, staged {}, lag {}, {} promotions (max batch {}), \
             λ {}, E[D] {}",
            m.relation,
            m.queue_depth,
            m.queue_capacity,
            m.staged,
            m.watermark_lag,
            m.promotion_batches,
            m.max_promotion_batch,
            drift(m.lambda_static, m.lambda_live),
            drift(m.duration_static, m.duration_live),
        )
        .ok();
    }
    if let Some(w) = &s.wal {
        writeln!(
            out,
            "wal ({}): {} appends, {} commits, {} fsyncs, {} bytes, \
             {} checkpoints; replay {} records / {} bytes in {:.2?}, {} torn tails cut",
            w.flush_policy,
            w.appends,
            w.commits,
            w.fsyncs,
            w.bytes_written,
            w.checkpoints,
            w.replayed_records,
            w.replay_bytes,
            Duration::from_micros(w.replay_us),
            w.torn_truncations,
        )
        .ok();
        for f in &w.slow_fsyncs {
            writeln!(
                out,
                "  slow fsync: {} took {:.2?}",
                f.relation,
                Duration::from_micros(f.micros)
            )
            .ok();
        }
    }
    if let Some(n) = &s.net {
        writeln!(
            out,
            "net: {} connections, frames {}/{} in/out, bytes {}/{}, \
             push high-water {}, {} slow-subscriber disconnects",
            n.connections,
            n.frames_in,
            n.frames_out,
            n.bytes_in,
            n.bytes_out,
            n.push_queue_highwater,
            n.slow_subscriber_disconnects,
        )
        .ok();
        // Under a burning SLO every open connection is a shed candidate;
        // flag them so `tdb top` readers see where load could come off.
        let shed = !s.health.is_empty() && s.health != "ok";
        for c in &n.conns {
            writeln!(
                out,
                "  conn #{}: frames {}/{} in/out, bytes {}/{}, push high-water {}{}",
                c.id,
                c.frames_in,
                c.frames_out,
                c.bytes_in,
                c.bytes_out,
                c.push_highwater,
                if shed { "  [slo: shed candidate]" } else { "" },
            )
            .ok();
        }
    }
    out
}

fn render_superstar(rows: &[SuperstarRow]) -> String {
    let mut out = String::new();
    for r in rows {
        writeln!(
            out,
            "{:<30} {:>10.2?}  {:>12} comparisons  {} superstars",
            r.label,
            Duration::from_micros(r.elapsed_us),
            r.comparisons,
            r.superstars
        )
        .ok();
    }
    out
}
