//! The typed engine response surface.
//!
//! Every [`Engine`](crate::Engine) method answers with a [`Response`]: a
//! structured value — result rows, plan reports, analyzer verdicts, live
//! progress, errors as typed variants — that a *renderer* turns into a
//! transport's native representation. The CLI renders text
//! ([`crate::render`]); `tdb-net` encodes binary frames through the
//! [`Codec`](tdb::storage::Codec) impls in [`crate::codec`]. Nothing in
//! here is pre-formatted for a terminal: widths, truncation markers and
//! glyphs are the renderer's business.

use tdb::prelude::*;

pub use tdb_obs::{OpSpan, QueryTrace};

/// A structured reply from the engine, one per request.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Informational text: command acknowledgements, help, usage hints.
    Info(String),
    /// The client asked to end the session (`\quit`).
    Goodbye,
    /// Relation listing with per-relation temporal statistics.
    Tables(Vec<TableInfo>),
    /// A query executed: rows plus optional plan/verifier reports.
    Query(QueryReport),
    /// A query executed whose rows travel *separately* as chunk frames:
    /// the report here is the header (plans, columns, stats, trace) with
    /// `rows.rows` empty. Serving layers emit this when a result is too
    /// large for one wire frame; clients reassemble the chunks (or render
    /// them incrementally) and treat the terminator as end-of-result.
    QueryStream(QueryReport),
    /// A query statically analyzed without executing.
    Analysis(AnalysisReport),
    /// A live-ingest batch was admitted.
    Ingest(IngestReport),
    /// A standing query registered.
    Subscribed(SubscribeReport),
    /// Live-subsystem status: watermarks, staging, subscriptions.
    Live(LiveStatus),
    /// A live stream was sealed.
    Sealed(SealReport),
    /// Superstar formulation comparison rows.
    Superstar(Vec<SuperstarRow>),
    /// Observability snapshot: counters, slow-query log, live and network
    /// telemetry (`\stats`).
    Stats(StatsReport),
    /// The request failed; see the typed error taxonomy.
    Error(ErrorInfo),
}

impl Response {
    /// Build an error response from a [`TdbError`].
    pub fn error(e: &TdbError) -> Response {
        Response::Error(ErrorInfo::from(e))
    }

    /// Drain the subscription deltas out of this response, leaving the
    /// rest intact. Serving layers use this to route each delta to the
    /// connection that owns the subscription (as a push frame) instead of
    /// echoing every delta back to whichever client triggered the epoch.
    pub fn take_deltas(&mut self) -> Vec<DeltaFrame> {
        match self {
            Response::Ingest(r) => std::mem::take(&mut r.deltas),
            Response::Sealed(r) => std::mem::take(&mut r.deltas),
            _ => Vec::new(),
        }
    }
}

/// One relation's catalog entry, as listed by `\tables`.
#[derive(Debug, Clone, PartialEq)]
pub struct TableInfo {
    /// Relation name.
    pub name: String,
    /// Stored row count.
    pub rows: u64,
    /// Rendered schema (field names and types).
    pub schema: String,
    /// Arrival-rate estimate λ, if statistics were collected.
    pub lambda: Option<f64>,
    /// Mean tuple duration E[D].
    pub mean_duration: f64,
    /// Maximum observed interval concurrency.
    pub max_concurrency: u64,
}

/// Result rows with their column header, possibly truncated by the
/// requesting client's row limit.
#[derive(Debug, Clone, PartialEq)]
pub struct RowSet {
    /// Qualified output column names.
    pub columns: Vec<String>,
    /// The rows delivered (at most the client's row limit).
    pub rows: Vec<Row>,
    /// Rows the producer offered to the result sink. Exact when the whole
    /// result was scanned; a lower bound when the row limit stopped the
    /// producer early (the sink short-circuits the scan rather than
    /// truncating a fully materialized result).
    pub total: u64,
}

/// Executor counters for one query run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryStats {
    /// Base-relation rows read.
    pub rows_scanned: u64,
    /// Predicate evaluations / comparisons across all operators.
    pub comparisons: u64,
    /// Maximum stream-operator workspace (state tuples) observed.
    pub max_workspace: u64,
    /// Explicit sorts performed.
    pub sorts_performed: u64,
}

/// The full report for an executed query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReport {
    /// The engine-minted query id, carried on the wire so a client's
    /// round-trip sample, the server's trace, and the slow-query log all
    /// name the same execution.
    pub query_id: u64,
    /// Translated logical plan (present when explain is on).
    pub logical: Option<String>,
    /// Optimized logical plan (present when explain is on).
    pub optimized: Option<String>,
    /// Physical plan (present when explain is on).
    pub physical: Option<String>,
    /// Rendered static-analysis certificate (present when verify is on).
    pub certificate: Option<String>,
    /// Result rows (truncated to the client's row limit).
    pub rows: RowSet,
    /// Executor counters.
    pub stats: QueryStats,
    /// Wall-clock execution time in microseconds.
    pub elapsed_us: u64,
    /// Per-operator trace — observed workspace next to the analyzer's
    /// predicted cap and λ·E[D] — when the client enabled `\trace on`.
    pub trace: Option<QueryTrace>,
}

/// One stream operator's verdict from the static verifier.
#[derive(Debug, Clone, PartialEq)]
pub struct OpVerdict {
    /// Plan path of the operator occurrence.
    pub path: String,
    /// Operator name.
    pub operator: String,
    /// The Table 1/2/3 entry that admits it.
    pub table_entry: String,
    /// Expected workspace E[W] = λ·E[D], when statistics allow.
    pub workspace_expectation: Option<f64>,
    /// Sound workspace cap, when statistics allow.
    pub workspace_cap: Option<u64>,
}

/// The static-analysis report for a plan (from `\analyze`).
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    /// The physical plan the proofs ran over.
    pub physical: String,
    /// Per-operator verdicts.
    pub ops: Vec<OpVerdict>,
    /// The rendered certificate (what `\explain verify` prints).
    pub certificate: String,
}

/// One subscription's newly final rows, stamped with the epoch and
/// watermark frontier they were finalized at.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaFrame {
    /// Owning subscription id.
    pub subscription: u64,
    /// The subscription's label (its query text, typically).
    pub label: String,
    /// Engine epoch that finalized these rows (strictly increasing), so
    /// clients can correlate deltas with progress counters instead of
    /// relying on frame arrival order.
    pub epoch: u64,
    /// Watermark frontier at finalization, `None` before any arrival.
    pub watermark: Option<TimePoint>,
    /// The newly final rows, in plan output order. Never truncated: push
    /// consumers need every row; display truncation is the renderer's.
    pub rows: Vec<Row>,
}

impl From<Delta> for DeltaFrame {
    fn from(d: Delta) -> DeltaFrame {
        DeltaFrame {
            subscription: d.subscription as u64,
            label: d.label,
            epoch: d.epoch,
            watermark: d.watermark,
            rows: d.rows,
        }
    }
}

/// The outcome of one live-ingest batch.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestReport {
    /// Target relation.
    pub relation: String,
    /// Arrivals offered in this batch.
    pub offered: u64,
    /// Rows promoted (final) this epoch, across relations.
    pub promoted: u64,
    /// Rows staged but not yet final for this relation.
    pub staged: u64,
    /// The relation's watermark after admission.
    pub watermark: Option<TimePoint>,
    /// Deltas finalized by this batch's epoch (all subscriptions).
    pub deltas: Vec<DeltaFrame>,
}

/// A standing query registered.
#[derive(Debug, Clone, PartialEq)]
pub struct SubscribeReport {
    /// The new subscription's id.
    pub id: u64,
    /// Rendered live-analysis certificate (present when verify is on).
    pub certificate: Option<String>,
    /// Rows already final at registration time.
    pub initial: DeltaFrame,
}

/// A live stream sealed: every staged row promoted.
#[derive(Debug, Clone, PartialEq)]
pub struct SealReport {
    /// The sealed relation.
    pub relation: String,
    /// Rows promoted by the sealing epoch.
    pub promoted: u64,
    /// Deltas flushed by the sealing epoch (all subscriptions).
    pub deltas: Vec<DeltaFrame>,
}

/// One live relation's status line.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveRelationStatus {
    /// Relation name.
    pub name: String,
    /// Rendered arrival sort order.
    pub order: String,
    /// Has the stream been sealed?
    pub sealed: bool,
    /// Current watermark, `None` before any arrival.
    pub watermark: Option<TimePoint>,
    /// Rows admitted into staging.
    pub admitted: u64,
    /// Rows staged but not yet final.
    pub staged: u64,
    /// Rows promoted into the catalog heap.
    pub promoted: u64,
    /// Current watermark lag in ticks.
    pub watermark_lag: u64,
    /// Producer stalls against the bounded ingest queue.
    pub stalls: u64,
}

/// One subscription's status line.
#[derive(Debug, Clone, PartialEq)]
pub struct SubscriptionStatus {
    /// Subscription id.
    pub id: u64,
    /// Registration label.
    pub label: String,
    /// Evaluations performed.
    pub evaluations: u64,
    /// Result rows emitted over the subscription's lifetime.
    pub emitted: u64,
    /// Peak runtime workspace across evaluations.
    pub workspace_peak: u64,
    /// Largest statically proven workspace cap across evaluations.
    pub workspace_cap: u64,
    /// Has the subscription been cancelled?
    pub cancelled: bool,
}

/// The live subsystem's status (`\live`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LiveStatus {
    /// Per-relation status, in name order.
    pub relations: Vec<LiveRelationStatus>,
    /// Per-subscription status, in id order.
    pub subscriptions: Vec<SubscriptionStatus>,
}

/// One Superstar formulation's measured run.
#[derive(Debug, Clone, PartialEq)]
pub struct SuperstarRow {
    /// Formulation label.
    pub label: String,
    /// Wall-clock execution time in microseconds.
    pub elapsed_us: u64,
    /// Comparisons performed.
    pub comparisons: u64,
    /// Distinct superstars found.
    pub superstars: u64,
}

/// One live relation's telemetry line in a [`StatsReport`]: queue and
/// promotion gauges plus the EWMA drift of the online λ/E[D] estimates
/// against the plan-time catalog statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveRelationMetrics {
    /// Relation name.
    pub relation: String,
    /// Raw rows waiting in the bounded ingest queue.
    pub queue_depth: u64,
    /// The ingest queue's bound.
    pub queue_capacity: u64,
    /// Rows staged but not yet watermark-final (row lag).
    pub staged: u64,
    /// Current watermark lag in ticks (wall lag).
    pub watermark_lag: u64,
    /// Non-empty promotion batches drained so far.
    pub promotion_batches: u64,
    /// Largest single promotion batch.
    pub max_promotion_batch: u64,
    /// Plan-time catalog arrival rate λ, if statistics were collected.
    pub lambda_static: Option<f64>,
    /// Live EWMA arrival-rate estimate, `None` before the first arrival.
    pub lambda_live: Option<f64>,
    /// Plan-time catalog mean duration E[D].
    pub duration_static: Option<f64>,
    /// Live EWMA mean-duration estimate.
    pub duration_live: Option<f64>,
}

/// One network connection's counters in a [`NetMetrics`] block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnMetrics {
    /// Server-assigned connection id.
    pub id: u64,
    /// Frames received from this client.
    pub frames_in: u64,
    /// Bytes received from this client.
    pub bytes_in: u64,
    /// Frames written to this client (replies and pushes).
    pub frames_out: u64,
    /// Bytes written to this client.
    pub bytes_out: u64,
    /// High-water mark of this connection's push queue.
    pub push_highwater: u64,
}

/// Network-layer telemetry, present when stats were requested over
/// `tdb-net` (a CLI-embedded engine has no network face and reports
/// `None`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetMetrics {
    /// Currently open connections.
    pub connections: u64,
    /// Frames received across all connections, living and retired.
    pub frames_in: u64,
    /// Bytes received across all connections.
    pub bytes_in: u64,
    /// Frames written across all connections.
    pub frames_out: u64,
    /// Bytes written across all connections.
    pub bytes_out: u64,
    /// Largest push-queue depth any connection ever reached.
    pub push_queue_highwater: u64,
    /// Connections dropped because their push queue overflowed.
    pub slow_subscriber_disconnects: u64,
    /// Per-connection counters for the connections still open, in id
    /// order.
    pub conns: Vec<ConnMetrics>,
}

/// One fsync that crossed the slow threshold, in a [`WalReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowFsyncInfo {
    /// Relation whose log was being synced.
    pub relation: String,
    /// How long the fsync took, in microseconds.
    pub micros: u64,
}

/// Durability telemetry, present when the engine runs with a
/// write-ahead log (`tdb serve --data-dir`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WalReport {
    /// The flush policy in force (`per-record`, `group-commit`, `off`).
    pub flush_policy: String,
    /// WAL records appended since open.
    pub appends: u64,
    /// Commit (group-flush) calls.
    pub commits: u64,
    /// fsync/fdatasync calls.
    pub fsyncs: u64,
    /// Bytes written to log files.
    pub bytes_written: u64,
    /// Checkpoint compactions performed.
    pub checkpoints: u64,
    /// Torn log tails truncated during replay.
    pub torn_truncations: u64,
    /// Records replayed at the last open.
    pub replayed_records: u64,
    /// Bytes replayed at the last open.
    pub replay_bytes: u64,
    /// Wall-clock replay time at the last open, in microseconds.
    pub replay_us: u64,
    /// The most recent fsyncs that crossed the slow threshold.
    pub slow_fsyncs: Vec<SlowFsyncInfo>,
}

/// One pipeline stage's latency summary in a [`StatsReport`], estimated
/// from the engine's fixed-bucket stage histograms (quantiles report the
/// bucket upper bound containing the rank, so they are conservative).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageLatency {
    /// Stage name (`parse`, `plan`, `execute`, `wal_fsync`, …).
    pub stage: String,
    /// Observations recorded for this stage.
    pub count: u64,
    /// Estimated median latency in microseconds.
    pub p50_us: u64,
    /// Estimated 99th-percentile latency in microseconds.
    pub p99_us: u64,
}

/// One SLO objective's burn-rate snapshot in a [`StatsReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// Objective name (`latency`, `errors`).
    pub objective: String,
    /// Required good ratio, e.g. 0.99.
    pub target: f64,
    /// Fast evaluation window in seconds.
    pub fast_window_s: u64,
    /// Slow evaluation window in seconds.
    pub slow_window_s: u64,
    /// Burn rate over the fast window.
    pub fast_burn: f64,
    /// Burn rate over the slow window.
    pub slow_burn: f64,
    /// This objective's verdict (`ok` / `degraded` / `critical`).
    pub health: String,
}

/// The observability snapshot a `\stats` request returns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsReport {
    /// Queries executed since the engine opened.
    pub queries: u64,
    /// Result rows produced across all queries.
    pub rows_returned: u64,
    /// Times an observed workspace peak exceeded its statically proven
    /// cap — every increment is a verifier bug worth surfacing.
    pub cap_exceeded: u64,
    /// The slow-query log's current threshold in microseconds.
    pub slow_threshold_us: u64,
    /// The N worst traces above the slow threshold, slowest first.
    pub slow: Vec<QueryTrace>,
    /// The most recent query's trace, regardless of speed.
    pub last: Option<QueryTrace>,
    /// Per-relation live telemetry, in name order.
    pub live: Vec<LiveRelationMetrics>,
    /// Network counters, when the engine is being served over `tdb-net`.
    pub net: Option<NetMetrics>,
    /// Durability counters, when the engine write-ahead logs.
    pub wal: Option<WalReport>,
    /// Per-stage latency summaries (stages with observations only), in
    /// pipeline order.
    pub stages: Vec<StageLatency>,
    /// Per-objective SLO burn-rate snapshots.
    pub slo: Vec<SloStatus>,
    /// The folded health verdict across all objectives (`ok` /
    /// `degraded` / `critical`) — what `/healthz` serves.
    pub health: String,
}

/// The wire-level error taxonomy: every [`TdbError`] variant maps to a
/// stable code so remote clients can dispatch without string matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// `ValidFrom >= ValidTo` in a period.
    InvalidPeriod = 1,
    /// A stream violated its declared sort order (late arrival).
    OrderViolation = 2,
    /// An operator was configured with an unsupported ordering.
    UnsupportedOrdering = 3,
    /// Storage I/O failure.
    Io = 4,
    /// Malformed serialized data.
    Corrupt = 5,
    /// Schema-level problem.
    Schema = 6,
    /// Catalog-level problem (unknown/duplicate relation).
    Catalog = 7,
    /// Query-text parse error.
    Parse = 8,
    /// Plan construction/verification failure.
    Plan = 9,
    /// Runtime evaluation failure.
    Eval = 10,
    /// Integrity-constraint violation.
    ConstraintViolation = 11,
    /// Buffer pool exhausted.
    BufferExhausted = 12,
    /// Wire-protocol violation (bad frame, unsupported version).
    Protocol = 13,
    /// The server is shutting down or dropped the session.
    Unavailable = 14,
    /// A client configuration setting was rejected (unknown `\set` key,
    /// unparsable value, or out-of-range value).
    Config = 15,
    /// A write-ahead log frame passed its CRC but failed to decode, or
    /// its replay contradicted the catalog — real corruption, distinct
    /// from the torn tails recovery truncates silently.
    WalCorrupt = 16,
}

impl ErrorCode {
    /// Decode a wire byte back into a code.
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::InvalidPeriod,
            2 => ErrorCode::OrderViolation,
            3 => ErrorCode::UnsupportedOrdering,
            4 => ErrorCode::Io,
            5 => ErrorCode::Corrupt,
            6 => ErrorCode::Schema,
            7 => ErrorCode::Catalog,
            8 => ErrorCode::Parse,
            9 => ErrorCode::Plan,
            10 => ErrorCode::Eval,
            11 => ErrorCode::ConstraintViolation,
            12 => ErrorCode::BufferExhausted,
            13 => ErrorCode::Protocol,
            14 => ErrorCode::Unavailable,
            15 => ErrorCode::Config,
            16 => ErrorCode::WalCorrupt,
            _ => return None,
        })
    }
}

/// A typed error: a taxonomy code plus the rendered diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorInfo {
    /// Stable error class.
    pub code: ErrorCode,
    /// Human-readable diagnostic (the [`TdbError`] display text).
    pub message: String,
}

impl ErrorInfo {
    /// Build an error with an explicit code.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ErrorInfo {
        ErrorInfo {
            code,
            message: message.into(),
        }
    }
}

impl From<&TdbError> for ErrorInfo {
    fn from(e: &TdbError) -> ErrorInfo {
        let code = match e {
            TdbError::InvalidPeriod { .. } => ErrorCode::InvalidPeriod,
            TdbError::OrderViolation { .. } => ErrorCode::OrderViolation,
            TdbError::UnsupportedOrdering { .. } => ErrorCode::UnsupportedOrdering,
            TdbError::Io(_) => ErrorCode::Io,
            TdbError::Corrupt(_) => ErrorCode::Corrupt,
            TdbError::Schema(_) => ErrorCode::Schema,
            TdbError::Catalog(_) => ErrorCode::Catalog,
            TdbError::Parse { .. } => ErrorCode::Parse,
            TdbError::Plan(_) => ErrorCode::Plan,
            TdbError::Eval(_) => ErrorCode::Eval,
            TdbError::ConstraintViolation(_) => ErrorCode::ConstraintViolation,
            TdbError::BufferExhausted { .. } => ErrorCode::BufferExhausted,
            TdbError::Config(_) => ErrorCode::Config,
            TdbError::WalCorrupt { .. } => ErrorCode::WalCorrupt,
        };
        ErrorInfo::new(code, e.to_string())
    }
}
