//! # tdb-cli — an interactive shell for the temporal database
//!
//! A small REPL over the transport-agnostic [`Engine`]: generate or load
//! temporal relations, type modified-Quel queries (terminated by `;`),
//! inspect logical/physical plans, and compare the Superstar
//! formulations.
//!
//! ```text
//! $ cargo run -p tdb-cli --bin tdb
//! tdb> \gen faculty 200 42
//! tdb> range of f is Faculty retrieve (N=f.Name) where f.Rank = "Full";
//! tdb> \explain on
//! tdb> \superstar
//! ```
//!
//! All execution lives in [`tdb_engine::Engine`], which returns typed
//! [`Response`](tdb_engine::Response) values; [`Session`] owns the
//! line-buffering and local-only concerns (stdin ingest) and renders
//! responses to text. The same engine serves remote clients through
//! `tdb-net` (`tdb serve` / `tdb connect` in `main.rs`).

pub use tdb_engine::HELP;
use tdb_engine::{render, ClientState, Engine, Response};

use tdb::prelude::*;

/// REPL state: one local engine plus this shell's per-client settings.
pub struct Session {
    engine: Engine,
    /// Echo logical and physical plans before running queries.
    pub explain: bool,
    /// Echo the static-analysis certificate before running queries
    /// (`\explain verify`).
    pub verify: bool,
    /// Planner strategy for queries.
    pub config: PlannerConfig,
    /// Maximum rows printed per result.
    pub row_limit: usize,
    /// Attach a per-operator trace (observed workspace vs the
    /// analyzer's predictions) to every query result (`\trace on`).
    pub trace: bool,
    buffer: String,
}

/// The outcome of feeding one input line to the session.
#[derive(Debug, PartialEq, Eq)]
pub enum LineResult {
    /// Output to display.
    Output(String),
    /// The line was buffered; the query is not yet terminated by `;`.
    Continue,
    /// The user asked to quit.
    Quit,
}

impl Session {
    /// Create a session backed by a catalog directory. Live-ingest staging
    /// runs spill under `<dir>/live`.
    pub fn open(dir: impl AsRef<std::path::Path>) -> TdbResult<Session> {
        let ctx = ClientState::default();
        Ok(Session {
            engine: Engine::open(dir)?,
            explain: ctx.explain,
            verify: ctx.verify,
            config: ctx.config,
            row_limit: ctx.row_limit,
            trace: ctx.trace,
            buffer: String::new(),
        })
    }

    fn ctx(&self) -> ClientState {
        ClientState {
            explain: self.explain,
            verify: self.verify,
            config: self.config,
            row_limit: self.row_limit,
            trace: self.trace,
        }
    }

    fn absorb(&mut self, ctx: ClientState) {
        self.explain = ctx.explain;
        self.verify = ctx.verify;
        self.config = ctx.config;
        self.row_limit = ctx.row_limit;
        self.trace = ctx.trace;
    }

    /// Run one complete input through the engine and render the typed
    /// response as shell text.
    fn execute(&mut self, input: &str) -> LineResult {
        let mut ctx = self.ctx();
        let resp = self.engine.execute(&mut ctx, input);
        self.absorb(ctx);
        if let Response::Goodbye = resp {
            return LineResult::Quit;
        }
        LineResult::Output(render(&resp, self.row_limit))
    }

    /// Feed one input line.
    pub fn feed(&mut self, line: &str) -> LineResult {
        let trimmed = line.trim();
        if self.buffer.is_empty() && trimmed.starts_with('\\') {
            // Stdin ingest needs this process's stdin, so the transport
            // (not the engine) resolves it.
            let parts: Vec<&str> = trimmed.split_whitespace().collect();
            if let ["\\ingest", rel, "-"] = parts.as_slice() {
                return match read_stdin() {
                    Ok(text) => {
                        let resp = self.engine.ingest_text(rel, &text);
                        LineResult::Output(render(&resp, self.row_limit))
                    }
                    Err(e) => LineResult::Output(format!("error: {e}")),
                };
            }
            return self.execute(trimmed);
        }
        if trimmed.is_empty() && self.buffer.is_empty() {
            return LineResult::Output(String::new());
        }
        self.buffer.push_str(line);
        self.buffer.push('\n');
        if trimmed.ends_with(';') {
            let text = std::mem::take(&mut self.buffer);
            self.execute(text.trim_end())
        } else {
            LineResult::Continue
        }
    }

    /// Statically analyze a query without running it: compile, optimize,
    /// plan, and print the verifier's certificate (or its diagnostics).
    /// Shared by the `\analyze` command and the `tdb analyze` subcommand.
    pub fn analyze_query(&mut self, text: &str) -> TdbResult<String> {
        let report = self.engine.analyze(self.config, text)?;
        Ok(render(&Response::Analysis(report), self.row_limit))
    }
}

fn read_stdin() -> TdbResult<String> {
    use std::io::Read as _;
    let mut s = String::new();
    std::io::stdin().lock().read_to_string(&mut s)?;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(tag: &str) -> Session {
        let dir = std::env::temp_dir().join(format!("tdb-cli-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Session::open(dir).unwrap()
    }

    fn out(r: LineResult) -> String {
        match r {
            LineResult::Output(s) => s,
            other => panic!("expected output, got {other:?}"),
        }
    }

    #[test]
    fn generate_and_query() {
        let mut s = session("a");
        let msg = out(s.feed("\\gen faculty 50 7"));
        assert!(msg.contains("Faculty loaded"), "{msg}");
        let msg = out(s.feed("range of f is Faculty retrieve (N=f.Name) where f.Rank = \"Full\";"));
        assert!(msg.contains("rows in"), "{msg}");
        assert!(msg.contains("comparisons"));
    }

    #[test]
    fn multi_line_queries_buffer_until_semicolon() {
        let mut s = session("b");
        out(s.feed("\\gen faculty 20 1"));
        assert_eq!(s.feed("range of f is Faculty"), LineResult::Continue);
        assert_eq!(s.feed("retrieve (N=f.Name)"), LineResult::Continue);
        let msg = out(s.feed("where f.Rank = \"Associate\";"));
        assert!(msg.contains("rows in"), "{msg}");
    }

    #[test]
    fn explain_mode_prints_plans() {
        let mut s = session("c");
        out(s.feed("\\gen faculty 20 1"));
        out(s.feed("\\explain on"));
        let msg = out(s.feed("range of f is Faculty retrieve (N=f.Name);"));
        assert!(msg.contains("── physical ──"), "{msg}");
        assert!(msg.contains("SeqScan Faculty"));
    }

    #[test]
    fn explain_verify_prints_certificate() {
        let mut s = session("v");
        out(s.feed("\\gen faculty 30 5"));
        out(s.feed("\\explain verify"));
        assert!(s.verify);
        let query = "range of f1 is Faculty range of f2 is Faculty \
                     retrieve (N=f1.Name) \
                     where f1.ValidFrom < f2.ValidFrom and f2.ValidTo < f1.ValidTo;";
        let msg = out(s.feed(query));
        assert!(msg.contains("── static analysis ──"), "{msg}");
        assert!(msg.contains("Table 1 (b)"), "{msg}");
        assert!(msg.contains("λ·E[D]"), "{msg}");
        // `\explain off` clears verify too.
        out(s.feed("\\explain off"));
        assert!(!s.verify);
    }

    #[test]
    fn analyze_command_verifies_without_running() {
        let mut s = session("w");
        out(s.feed("\\gen faculty 30 5"));
        let msg = out(s.feed(
            "\\analyze range of f1 is Faculty range of f2 is Faculty \
             retrieve (N=f1.Name) where f1.ValidTo < f2.ValidFrom;",
        ));
        assert!(msg.contains("── static analysis ──"), "{msg}");
        // Before-join: correct under any order, never partitioned.
        assert!(msg.contains("BeforeJoin"), "{msg}");
        assert!(msg.contains("any order"), "{msg}");
        // No result footer — the query did not run.
        assert!(!msg.contains("rows in"), "{msg}");
    }

    #[test]
    fn superstar_command_compares_plans() {
        let mut s = session("d");
        out(s.feed("\\gen faculty 80 3"));
        let msg = out(s.feed("\\superstar"));
        assert!(msg.contains("conventional"), "{msg}");
        assert!(msg.contains("self-semijoin"));
        // Without Faculty: helpful error.
        let mut s2 = session("d2");
        let msg = out(s2.feed("\\superstar"));
        assert!(msg.contains("load Faculty first"), "{msg}");
    }

    #[test]
    fn tables_and_config_and_errors() {
        let mut s = session("e");
        let msg = out(s.feed("\\tables"));
        assert!(msg.contains("no relations"));
        out(s.feed("\\gen intervals Sensors 100 3 10 5"));
        let msg = out(s.feed("\\tables"));
        assert!(msg.contains("Sensors: 100 rows"), "{msg}");
        let msg = out(s.feed("\\config conventional"));
        assert!(msg.contains("conventional"));
        let msg = out(s.feed("\\config bogus"));
        assert!(msg.contains("unknown config"));
        let msg = out(s.feed("\\nonsense"));
        assert!(msg.contains("unknown command"));
        let msg = out(s.feed("range of f is Nope retrieve (N=f.Name);"));
        assert!(msg.starts_with("error:"), "{msg}");
    }

    #[test]
    fn set_parallelism_flows_into_plans() {
        let mut s = session("h");
        out(s.feed("\\gen faculty 40 9"));
        let msg = out(s.feed("\\set parallelism 4"));
        assert!(msg.contains("4 time-range partitions"), "{msg}");
        assert_eq!(s.config.parallelism, 4);
        out(s.feed("\\explain on"));
        let query = "range of f1 is Faculty range of f2 is Faculty \
                     retrieve (N=f1.Name) \
                     where f1.ValidFrom < f2.ValidFrom and f2.ValidTo < f1.ValidTo;";
        let msg = out(s.feed(query));
        assert!(msg.contains("Parallel ×4"), "{msg}");
        let msg = out(s.feed("\\set parallelism 1"));
        assert!(msg.contains("serial"), "{msg}");
        let msg = out(s.feed("\\set parallelism x"));
        assert!(msg.starts_with("error:"), "{msg}");
    }

    #[test]
    fn set_batch_flows_into_session_config() {
        let mut s = session("batch");
        let msg = out(s.feed("\\set batch 256"));
        assert!(msg.contains("256 rows"), "{msg}");
        assert_eq!(s.config.batch_rows, 256);
        let msg = out(s.feed("\\set batch 0"));
        assert!(msg.contains("row-at-a-time"), "{msg}");
        // Unknown keys and out-of-range values surface the engine's typed
        // configuration error, same as over the wire.
        let msg = out(s.feed("\\set warp 9"));
        assert!(msg.contains("configuration error"), "{msg}");
        let msg = out(s.feed("\\set batch 9999999999"));
        assert!(msg.contains("configuration error"), "{msg}");
    }

    #[test]
    fn set_limit_changes_session_row_limit() {
        let mut s = session("lim");
        let msg = out(s.feed("\\set limit 3"));
        assert!(msg.contains("row limit: 3"), "{msg}");
        assert_eq!(s.row_limit, 3);
        out(s.feed("\\gen intervals T 50 3 10 1"));
        let msg = out(s.feed("range of t is T retrieve (A=t.ValidFrom);"));
        assert!(msg.contains("more rows"), "{msg}");
    }

    fn arrivals_file(tag: &str, lines: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("tdb-cli-arrivals-{}-{tag}", std::process::id()));
        std::fs::write(&path, lines).unwrap();
        path
    }

    #[test]
    fn ingest_subscribe_and_close_flow() {
        let mut s = session("live");
        // First batch: a long interval and one it contains; TS 30 holds
        // the watermark so only TS < 30 is final.
        let f1 = arrivals_file("l1", "# comment\n0 100 long\n10 20 a\n30 40 b\n");
        let msg = out(s.feed(&format!("\\ingest S {}", f1.display())));
        assert!(msg.contains("S: 3 arrivals"), "{msg}");
        assert!(msg.contains("2 promoted"), "{msg}");
        assert!(msg.contains("1 staged"), "{msg}");
        assert!(msg.contains("watermark t30"), "{msg}");

        let query = "range of a is S range of b is S retrieve (X=a.Id, Y=b.Id) \
                     where a.ValidFrom < b.ValidFrom and b.ValidTo < a.ValidTo";
        let msg = out(s.feed(&format!("\\subscribe {query};")));
        assert!(msg.contains("subscription #0 registered"), "{msg}");
        // (long, a) is already final at registration.
        assert!(msg.contains("+1 rows"), "{msg}");
        assert!(msg.contains("\"long\" | \"a\""), "{msg}");

        // Second batch pushes the watermark past b; the delta header
        // names the epoch and watermark that finalized it.
        let f2 = arrivals_file("l2", "50 60 c\n");
        let msg = out(s.feed(&format!("\\ingest S {}", f2.display())));
        assert!(msg.contains("+1 rows"), "{msg}");
        assert!(msg.contains("| \"b\""), "{msg}");
        assert!(msg.contains("watermark t50"), "{msg}");

        let msg = out(s.feed("\\live"));
        assert!(msg.contains("S (ValidFrom ↑)"), "{msg}");
        assert!(msg.contains("4 admitted"), "{msg}");
        assert!(msg.contains("#0 `range of"), "{msg}");
        assert!(msg.contains("workspace peak"), "{msg}");

        let msg = out(s.feed("\\live close S"));
        assert!(msg.contains("S sealed"), "{msg}");
        // (long, c) becomes final once the stream seals.
        assert!(msg.contains("| \"c\""), "{msg}");
        let msg = out(s.feed("\\live"));
        assert!(msg.contains("[sealed]"), "{msg}");
    }

    #[test]
    fn ingest_rejects_garbage_and_unsorted_arrivals() {
        let mut s = session("livebad");
        let f = arrivals_file("bad", "not numbers\n");
        let msg = out(s.feed(&format!("\\ingest S {}", f.display())));
        assert!(msg.starts_with("error:"), "{msg}");
        let f = arrivals_file("late", "50 60 a\n10 20 late\n");
        let msg = out(s.feed(&format!("\\ingest S {}", f.display())));
        assert!(msg.contains("order violation"), "{msg}");
    }

    #[test]
    fn subscribe_requires_known_relations() {
        let mut s = session("livesub");
        let msg = out(s.feed("\\subscribe range of x is Nope retrieve (A=x.Id);"));
        assert!(msg.starts_with("error:"), "{msg}");
    }

    #[test]
    fn trace_and_stats_commands() {
        let mut s = session("obs");
        out(s.feed("\\gen intervals T 100 3 10 7"));
        let msg = out(s.feed("\\trace on"));
        assert!(s.trace, "{msg}");
        let msg = out(s.feed(
            "range of a is T range of b is T retrieve (X=a.Id, Y=b.Id) \
             where a.ValidFrom < b.ValidFrom and b.ValidTo < a.ValidTo;",
        ));
        assert!(msg.contains("── trace (query "), "{msg}");
        assert!(msg.contains("workspace peak"), "{msg}");
        assert!(msg.contains("λ·E[D]"), "{msg}");
        assert!(!msg.contains("CAP EXCEEDED"), "{msg}");
        // Timed stage spans render above the operator spans.
        assert!(msg.contains("parse"), "{msg}");
        assert!(msg.contains("execute"), "{msg}");
        out(s.feed("\\trace off"));
        assert!(!s.trace);
        let msg = out(s.feed("\\stats"));
        assert!(msg.contains("1 queries"), "{msg}");
        assert!(msg.contains("cap exceeded 0"), "{msg}");
        assert!(msg.contains("health ok"), "{msg}");
        assert!(msg.contains("slo latency"), "{msg}");
        assert!(msg.contains("p99"), "{msg}");
        assert!(msg.contains("last: `range of a is T"), "{msg}");
    }

    #[test]
    fn quit() {
        let mut s = session("f");
        assert_eq!(s.feed("\\quit"), LineResult::Quit);
        assert_eq!(s.feed("\\q"), LineResult::Quit);
    }

    #[test]
    fn row_limit_truncates_output() {
        let mut s = session("g");
        s.row_limit = 3;
        out(s.feed("\\gen intervals T 50 3 10 1"));
        let msg = out(s.feed("range of t is T retrieve (A=t.ValidFrom);"));
        assert!(msg.contains("more rows"), "{msg}");
    }
}
