//! # tdb-cli — an interactive shell for the temporal database
//!
//! A small REPL wrapping the full pipeline: generate or load temporal
//! relations, type modified-Quel queries (terminated by `;`), inspect
//! logical/physical plans, and compare the Superstar formulations.
//!
//! ```text
//! $ cargo run -p tdb-cli --bin tdb
//! tdb> \gen faculty 200 42
//! tdb> range of f is Faculty retrieve (N=f.Name) where f.Rank = "Full";
//! tdb> \explain on
//! tdb> \superstar
//! ```
//!
//! The engine lives in [`Session`]; `main.rs` is a thin stdin loop, so the
//! command surface is fully unit-testable.

use std::fmt::Write as _;
use tdb::prelude::*;

/// REPL state.
pub struct Session {
    catalog: Catalog,
    live: LiveEngine,
    /// Echo logical and physical plans before running queries.
    pub explain: bool,
    /// Echo the static-analysis certificate before running queries
    /// (`\explain verify`).
    pub verify: bool,
    /// Planner strategy for queries.
    pub config: PlannerConfig,
    /// Maximum rows printed per result.
    pub row_limit: usize,
    buffer: String,
}

/// The outcome of feeding one input line to the session.
#[derive(Debug, PartialEq, Eq)]
pub enum LineResult {
    /// Output to display.
    Output(String),
    /// The line was buffered; the query is not yet terminated by `;`.
    Continue,
    /// The user asked to quit.
    Quit,
}

impl Session {
    /// Create a session backed by a catalog directory. Live-ingest staging
    /// runs spill under `<dir>/live`.
    pub fn open(dir: impl AsRef<std::path::Path>) -> TdbResult<Session> {
        let dir = dir.as_ref();
        Ok(Session {
            catalog: Catalog::open(dir, IoStats::new())?,
            live: LiveEngine::new(dir.join("live"), LiveConfig::default()),
            explain: false,
            verify: false,
            config: PlannerConfig::stream(),
            row_limit: 20,
            buffer: String::new(),
        })
    }

    /// Feed one input line.
    pub fn feed(&mut self, line: &str) -> LineResult {
        let trimmed = line.trim();
        if self.buffer.is_empty() && trimmed.starts_with('\\') {
            return match self.command(trimmed) {
                Ok(Some(out)) => LineResult::Output(out),
                Ok(None) => LineResult::Quit,
                Err(e) => LineResult::Output(format!("error: {e}")),
            };
        }
        if trimmed.is_empty() && self.buffer.is_empty() {
            return LineResult::Output(String::new());
        }
        self.buffer.push_str(line);
        self.buffer.push('\n');
        if trimmed.ends_with(';') {
            let text = std::mem::take(&mut self.buffer);
            let text = text.trim_end().trim_end_matches(';');
            match self.run_query(text) {
                Ok(out) => LineResult::Output(out),
                Err(e) => LineResult::Output(format!("error: {e}")),
            }
        } else {
            LineResult::Continue
        }
    }

    fn command(&mut self, line: &str) -> TdbResult<Option<String>> {
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            ["\\help"] => Ok(Some(HELP.to_string())),
            ["\\quit" | "\\q"] => Ok(None),
            ["\\tables"] => {
                let mut out = String::new();
                for name in self.catalog.relation_names() {
                    let meta = self.catalog.meta(&name)?;
                    let lambda = meta
                        .stats
                        .lambda
                        .map(|l| format!("{l:.3}"))
                        .unwrap_or_else(|| "-".into());
                    writeln!(
                        out,
                        "{name}: {} rows, schema {}, λ={lambda}, mean dur {:.1}, max concurrency {}",
                        meta.rows,
                        meta.schema.schema,
                        meta.stats.mean_duration,
                        meta.stats.max_concurrency
                    )
                    .ok();
                }
                if out.is_empty() {
                    out = "no relations — try \\gen faculty 100\n".into();
                }
                Ok(Some(out))
            }
            ["\\explain", v @ ("on" | "off")] => {
                self.explain = *v == "on";
                if !self.explain {
                    self.verify = false;
                }
                Ok(Some(format!("explain {v}\n")))
            }
            ["\\explain", "verify"] => {
                self.explain = true;
                self.verify = true;
                Ok(Some(
                    "explain verify (plans + static-analysis certificate)\n".into(),
                ))
            }
            ["\\analyze", rest @ ..] if !rest.is_empty() => {
                let text = rest.join(" ");
                let text = text.trim_end_matches(';');
                self.analyze_query(text).map(Some)
            }
            ["\\config", c] => {
                self.config = match *c {
                    "stream" => PlannerConfig::stream(),
                    "conventional" => PlannerConfig::conventional(),
                    "naive" => PlannerConfig::naive(),
                    other => {
                        return Ok(Some(format!(
                            "unknown config `{other}` (stream|conventional|naive)\n"
                        )))
                    }
                };
                Ok(Some(format!("planner config: {c}\n")))
            }
            ["\\set", "parallelism", n] => {
                let k: usize = n
                    .parse()
                    .map_err(|_| TdbError::Eval(format!("bad partition count `{n}`")))?;
                self.config = self.config.with_parallelism(k);
                Ok(Some(if k > 1 {
                    format!("parallelism: {k} time-range partitions\n")
                } else {
                    "parallelism: serial\n".to_string()
                }))
            }
            ["\\gen", "faculty", n, rest @ ..] => {
                let n: usize = n
                    .parse()
                    .map_err(|_| TdbError::Eval(format!("bad count `{n}`")))?;
                let seed: u64 = rest.first().and_then(|s| s.parse().ok()).unwrap_or(0);
                let faculty = FacultyGen {
                    n_faculty: n,
                    seed,
                    continuous_employment: true,
                    ..FacultyGen::default()
                }
                .generate();
                let rows: Vec<Row> = faculty.iter().map(|t| t.to_row()).collect();
                self.catalog.create_relation(
                    "Faculty",
                    TemporalSchema::time_sequence("Name", "Rank"),
                    &rows,
                    vec![],
                )?;
                Ok(Some(format!(
                    "Faculty loaded: {} members, {} tuples (seed {seed})\n",
                    n,
                    rows.len()
                )))
            }
            ["\\gen", "intervals", name, n, gap, dur, rest @ ..] => {
                let parse_f = |s: &str| {
                    s.parse::<f64>()
                        .map_err(|_| TdbError::Eval(format!("bad number `{s}`")))
                };
                let n: usize = n
                    .parse()
                    .map_err(|_| TdbError::Eval(format!("bad count `{n}`")))?;
                let seed: u64 = rest.first().and_then(|s| s.parse().ok()).unwrap_or(0);
                let tuples = IntervalGen::poisson(n, parse_f(gap)?, parse_f(dur)?, seed).generate();
                let rows: Vec<Row> = tuples
                    .iter()
                    .map(|t| {
                        Row::new(vec![
                            t.surrogate.clone(),
                            t.value.clone(),
                            Value::Time(t.ts()),
                            Value::Time(t.te()),
                        ])
                    })
                    .collect();
                self.catalog.create_relation(
                    name,
                    interval_schema()?,
                    &rows,
                    vec![StreamOrder::TS_ASC],
                )?;
                Ok(Some(format!("{name} loaded: {} tuples\n", rows.len())))
            }
            ["\\ingest", rel, source] => self.ingest(rel, source).map(Some),
            ["\\subscribe", rest @ ..] if !rest.is_empty() => {
                let text = rest.join(" ");
                let text = text.trim_end_matches(';').to_string();
                self.subscribe(&text).map(Some)
            }
            ["\\live"] => Ok(Some(self.live_status())),
            ["\\live", "close", rel] => self.live_close(rel).map(Some),
            ["\\superstar"] => self.superstar().map(Some),
            _ => Ok(Some(format!("unknown command `{line}` — try \\help\n"))),
        }
    }

    fn run_query(&mut self, text: &str) -> TdbResult<String> {
        let (logical, _query) = compile(text, &self.catalog)?;
        let optimized = conventional_optimize(logical.clone());
        // Every plan passes the static verifier before it executes; the
        // planner never emits a rejected plan, so a failure here means the
        // plan tree was corrupted, not that the query is wrong.
        let (physical, analysis) = plan_verified(&optimized, self.config, &self.catalog)?;
        let mut out = String::new();
        if self.explain {
            writeln!(out, "── logical (translated) ──\n{}", logical.parse_tree()).ok();
            writeln!(out, "── logical (optimized) ──\n{}", optimized.parse_tree()).ok();
            writeln!(out, "── physical ──\n{}", physical.explain()).ok();
        }
        if self.verify {
            writeln!(out, "── static analysis ──\n{}", analysis.render()).ok();
        }
        let start = std::time::Instant::now();
        let result = physical.execute(&self.catalog)?;
        let elapsed = start.elapsed();

        let header: Vec<String> = result
            .scope
            .columns()
            .iter()
            .map(|c| {
                if c.var.is_empty() {
                    c.attr.clone()
                } else {
                    c.to_string()
                }
            })
            .collect();
        writeln!(out, "{}", header.join(" | ")).ok();
        for row in result.rows.iter().take(self.row_limit) {
            let cells: Vec<String> = row.values().iter().map(|v| v.to_string()).collect();
            writeln!(out, "{}", cells.join(" | ")).ok();
        }
        if result.rows.len() > self.row_limit {
            writeln!(out, "… ({} more rows)", result.rows.len() - self.row_limit).ok();
        }
        writeln!(
            out,
            "{} rows in {elapsed:.2?} — {} scanned, {} comparisons, workspace {}, {} sorts",
            result.rows.len(),
            result.stats.rows_scanned,
            result.stats.comparisons,
            result.stats.max_workspace,
            result.stats.sorts_performed,
        )
        .ok();
        Ok(out)
    }

    /// Statically analyze a query without running it: compile, optimize,
    /// plan, and print the verifier's certificate (or its diagnostics).
    /// Shared by the `\analyze` command and the `tdb analyze` subcommand.
    pub fn analyze_query(&mut self, text: &str) -> TdbResult<String> {
        let (logical, _query) = compile(text, &self.catalog)?;
        let optimized = conventional_optimize(logical);
        let (physical, analysis) = plan_verified(&optimized, self.config, &self.catalog)?;
        let mut out = String::new();
        writeln!(out, "── physical ──\n{}", physical.explain()).ok();
        writeln!(out, "── static analysis ──\n{}", analysis.render()).ok();
        Ok(out)
    }

    /// `\ingest <rel> <file|->`: live-append arrivals. An unknown relation
    /// is auto-registered with the interval schema (`Id`, `Seq`,
    /// `ValidFrom`, `ValidTo`) arriving in (TS↑); an existing relation is
    /// registered under its first known sort order.
    fn ingest(&mut self, rel: &str, source: &str) -> TdbResult<String> {
        if !self.live.is_live(rel) {
            let (schema, order) = match self.catalog.meta(rel) {
                Ok(meta) => (
                    meta.schema.clone(),
                    meta.known_orders.first().copied().ok_or_else(|| {
                        TdbError::Catalog(format!(
                            "relation `{rel}` claims no sort order, so arrivals \
                             cannot be appended in order"
                        ))
                    })?,
                ),
                Err(_) => (interval_schema()?, StreamOrder::TS_ASC),
            };
            self.live.register(&mut self.catalog, rel, schema, order)?;
        }
        let text = if source == "-" {
            use std::io::Read as _;
            let mut s = String::new();
            std::io::stdin().lock().read_to_string(&mut s)?;
            s
        } else {
            std::fs::read_to_string(source)?
        };
        let rows = parse_arrivals(&text)?;
        let offered = rows.len();
        let report = self.live.ingest(&mut self.catalog, rel, rows)?;
        let state = self.live.relation(rel).expect("registered above");
        let mut out = String::new();
        let wm = state
            .watermark()
            .map(|t| t.to_string())
            .unwrap_or_else(|| "-".into());
        writeln!(
            out,
            "{rel}: {offered} arrivals — {} promoted (final), {} staged, watermark {wm}",
            report.promoted,
            state.staged_len(),
        )
        .ok();
        self.render_deltas(&report, &mut out);
        Ok(out)
    }

    /// `\subscribe <query>`: register a standing query. The plan must pass
    /// the live verifier (bounded workspace under unbounded arrival) before
    /// it registers; rows already final are emitted immediately.
    fn subscribe(&mut self, text: &str) -> TdbResult<String> {
        let (logical, _query) = compile(text, &self.catalog)?;
        let optimized = conventional_optimize(logical);
        let (analysis, delta) = self.live.subscribe(&self.catalog, text, optimized)?;
        let mut out = String::new();
        writeln!(out, "subscription #{} registered", delta.subscription).ok();
        if self.verify {
            writeln!(out, "── static analysis (live) ──\n{}", analysis.render()).ok();
        }
        if !delta.rows.is_empty() {
            let report = LiveReport {
                promoted: 0,
                deltas: vec![delta],
            };
            self.render_deltas(&report, &mut out);
        }
        Ok(out)
    }

    /// `\live`: watermark, staging, and subscription status.
    fn live_status(&self) -> String {
        let mut out = String::new();
        for rel in self.live.relations() {
            let snap = rel.progress().snapshot();
            let wm = rel
                .watermark()
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into());
            writeln!(
                out,
                "{} ({}): watermark {wm}{}, {} admitted, {} staged, {} promoted, \
                 lag {}, {} stalls",
                rel.name(),
                rel.order(),
                if rel.is_sealed() { " [sealed]" } else { "" },
                rel.admitted(),
                rel.staged_len(),
                rel.promoted(),
                snap.watermark_lag,
                rel.stalls(),
            )
            .ok();
        }
        for sub in self.live.subscriptions() {
            let (peak, cap) = sub.workspace_watermark();
            writeln!(
                out,
                "#{} `{}`: {} evaluations, {} rows emitted, workspace peak {peak} / cap {cap}",
                sub.id(),
                sub.label(),
                sub.evaluations(),
                sub.emitted_count(),
            )
            .ok();
        }
        if out.is_empty() {
            out = "no live relations — try \\ingest <rel> <file>\n".into();
        }
        out
    }

    /// `\live close <rel>`: seal the stream — every staged row becomes
    /// final, is promoted, and the last deltas flush.
    fn live_close(&mut self, rel: &str) -> TdbResult<String> {
        let report = self.live.seal(&mut self.catalog, rel)?;
        let mut out = String::new();
        writeln!(
            out,
            "{rel} sealed: {} rows promoted (final)",
            report.promoted
        )
        .ok();
        self.render_deltas(&report, &mut out);
        Ok(out)
    }

    fn render_deltas(&self, report: &LiveReport, out: &mut String) {
        for delta in &report.deltas {
            writeln!(
                out,
                "▸ #{} `{}`: +{} rows",
                delta.subscription,
                delta.label,
                delta.rows.len()
            )
            .ok();
            for row in delta.rows.iter().take(self.row_limit) {
                let cells: Vec<String> = row.values().iter().map(|v| v.to_string()).collect();
                writeln!(out, "  {}", cells.join(" | ")).ok();
            }
            if delta.rows.len() > self.row_limit {
                writeln!(out, "  … ({} more rows)", delta.rows.len() - self.row_limit).ok();
            }
        }
    }

    fn superstar(&mut self) -> TdbResult<String> {
        self.catalog
            .meta("Faculty")
            .map_err(|_| TdbError::Catalog("load Faculty first: \\gen faculty 200".into()))?;
        let mut out = String::new();
        for (label, logical) in superstar_plans(true) {
            if label.starts_with("unoptimized") {
                continue;
            }
            let config = if label.starts_with("conventional") {
                PlannerConfig::conventional()
            } else {
                PlannerConfig::stream()
            };
            let (physical, _analysis) = plan_verified(&logical, config, &self.catalog)?;
            let start = std::time::Instant::now();
            let result = physical.execute(&self.catalog)?;
            let names: std::collections::BTreeSet<&str> = result
                .rows
                .iter()
                .filter_map(|r| r.get(0).as_str())
                .collect();
            writeln!(
                out,
                "{label:<30} {:>10.2?}  {:>12} comparisons  {} superstars",
                start.elapsed(),
                result.stats.comparisons,
                names.len()
            )
            .ok();
        }
        Ok(out)
    }
}

/// The schema live-ingested interval relations use (also `\gen intervals`):
/// `Id: Str, Seq: Int, ValidFrom: Time, ValidTo: Time`.
fn interval_schema() -> TdbResult<TemporalSchema> {
    TemporalSchema::new(
        tdb::core::Schema::new(vec![
            tdb::core::Field::new("Id", tdb::core::FieldType::Str),
            tdb::core::Field::new("Seq", tdb::core::FieldType::Int),
            tdb::core::Field::new("ValidFrom", tdb::core::FieldType::Time),
            tdb::core::Field::new("ValidTo", tdb::core::FieldType::Time),
        ]),
        2,
        3,
    )
}

/// Parse ingest lines into interval-schema rows. Each non-empty line not
/// starting with `#` is `<ts> <te> [id [seq]]`; `id` defaults to `r<line>`
/// and `seq` to the line index.
fn parse_arrivals(text: &str) -> TdbResult<Vec<Row>> {
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let time = |s: &str| {
            s.parse::<i64>()
                .map(TimePoint)
                .map_err(|_| TdbError::Eval(format!("line {}: bad time `{s}`", i + 1)))
        };
        let (ts, te) = match fields.as_slice() {
            [ts, te, ..] => (time(ts)?, time(te)?),
            _ => {
                return Err(TdbError::Eval(format!(
                    "line {}: expected `<ts> <te> [id [seq]]`, got `{line}`",
                    i + 1
                )))
            }
        };
        let id = fields
            .get(2)
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("r{}", i + 1));
        let seq: i64 = match fields.get(3) {
            Some(s) => s
                .parse()
                .map_err(|_| TdbError::Eval(format!("line {}: bad seq `{s}`", i + 1)))?,
            None => i as i64 + 1,
        };
        rows.push(Row::new(vec![
            Value::str(&id),
            Value::Int(seq),
            Value::Time(ts),
            Value::Time(te),
        ]));
    }
    Ok(rows)
}

/// Help text.
pub const HELP: &str = r#"commands:
  \gen faculty <n> [seed]                     load a generated Faculty relation
  \gen intervals <name> <n> <gap> <dur> [seed]  load a Poisson interval relation
  \tables                                     list relations and statistics
  \explain on|off|verify                      show plans (verify: + static analysis)
  \analyze <query>                            verify a query's plan without running it
  \config stream|conventional|naive           planner strategy
  \set parallelism <k>                        time-range partitions for stream operators
  \ingest <rel> <file|->                      live-append arrivals (`-` reads stdin to EOF);
                                              lines are `<ts> <te> [id [seq]]`
  \subscribe <query>                          register a standing query (live-verified);
                                              deltas print as rows become final
  \live                                       live status: watermarks, staging, subscriptions
  \live close <rel>                           seal a live stream (all staged rows final)
  \superstar                                  compare the Superstar formulations
  \help   \quit
queries: modified Quel, terminated by `;`, e.g.
  range of f is Faculty retrieve (N=f.Name) where f.Rank = "Full";
"#;

#[cfg(test)]
mod tests {
    use super::*;

    fn session(tag: &str) -> Session {
        let dir = std::env::temp_dir().join(format!("tdb-cli-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Session::open(dir).unwrap()
    }

    fn out(r: LineResult) -> String {
        match r {
            LineResult::Output(s) => s,
            other => panic!("expected output, got {other:?}"),
        }
    }

    #[test]
    fn generate_and_query() {
        let mut s = session("a");
        let msg = out(s.feed("\\gen faculty 50 7"));
        assert!(msg.contains("Faculty loaded"), "{msg}");
        let msg = out(s.feed("range of f is Faculty retrieve (N=f.Name) where f.Rank = \"Full\";"));
        assert!(msg.contains("rows in"), "{msg}");
        assert!(msg.contains("comparisons"));
    }

    #[test]
    fn multi_line_queries_buffer_until_semicolon() {
        let mut s = session("b");
        out(s.feed("\\gen faculty 20 1"));
        assert_eq!(s.feed("range of f is Faculty"), LineResult::Continue);
        assert_eq!(s.feed("retrieve (N=f.Name)"), LineResult::Continue);
        let msg = out(s.feed("where f.Rank = \"Associate\";"));
        assert!(msg.contains("rows in"), "{msg}");
    }

    #[test]
    fn explain_mode_prints_plans() {
        let mut s = session("c");
        out(s.feed("\\gen faculty 20 1"));
        out(s.feed("\\explain on"));
        let msg = out(s.feed("range of f is Faculty retrieve (N=f.Name);"));
        assert!(msg.contains("── physical ──"), "{msg}");
        assert!(msg.contains("SeqScan Faculty"));
    }

    #[test]
    fn explain_verify_prints_certificate() {
        let mut s = session("v");
        out(s.feed("\\gen faculty 30 5"));
        out(s.feed("\\explain verify"));
        assert!(s.verify);
        let query = "range of f1 is Faculty range of f2 is Faculty \
                     retrieve (N=f1.Name) \
                     where f1.ValidFrom < f2.ValidFrom and f2.ValidTo < f1.ValidTo;";
        let msg = out(s.feed(query));
        assert!(msg.contains("── static analysis ──"), "{msg}");
        assert!(msg.contains("Table 1 (b)"), "{msg}");
        assert!(msg.contains("λ·E[D]"), "{msg}");
        // `\explain off` clears verify too.
        out(s.feed("\\explain off"));
        assert!(!s.verify);
    }

    #[test]
    fn analyze_command_verifies_without_running() {
        let mut s = session("w");
        out(s.feed("\\gen faculty 30 5"));
        let msg = out(s.feed(
            "\\analyze range of f1 is Faculty range of f2 is Faculty \
             retrieve (N=f1.Name) where f1.ValidTo < f2.ValidFrom;",
        ));
        assert!(msg.contains("── static analysis ──"), "{msg}");
        // Before-join: correct under any order, never partitioned.
        assert!(msg.contains("BeforeJoin"), "{msg}");
        assert!(msg.contains("any order"), "{msg}");
        // No result footer — the query did not run.
        assert!(!msg.contains("rows in"), "{msg}");
    }

    #[test]
    fn superstar_command_compares_plans() {
        let mut s = session("d");
        out(s.feed("\\gen faculty 80 3"));
        let msg = out(s.feed("\\superstar"));
        assert!(msg.contains("conventional"), "{msg}");
        assert!(msg.contains("self-semijoin"));
        // Without Faculty: helpful error.
        let mut s2 = session("d2");
        let msg = out(s2.feed("\\superstar"));
        assert!(msg.contains("load Faculty first"), "{msg}");
    }

    #[test]
    fn tables_and_config_and_errors() {
        let mut s = session("e");
        let msg = out(s.feed("\\tables"));
        assert!(msg.contains("no relations"));
        out(s.feed("\\gen intervals Sensors 100 3 10 5"));
        let msg = out(s.feed("\\tables"));
        assert!(msg.contains("Sensors: 100 rows"), "{msg}");
        let msg = out(s.feed("\\config conventional"));
        assert!(msg.contains("conventional"));
        let msg = out(s.feed("\\config bogus"));
        assert!(msg.contains("unknown config"));
        let msg = out(s.feed("\\nonsense"));
        assert!(msg.contains("unknown command"));
        let msg = out(s.feed("range of f is Nope retrieve (N=f.Name);"));
        assert!(msg.starts_with("error:"), "{msg}");
    }

    #[test]
    fn set_parallelism_flows_into_plans() {
        let mut s = session("h");
        out(s.feed("\\gen faculty 40 9"));
        let msg = out(s.feed("\\set parallelism 4"));
        assert!(msg.contains("4 time-range partitions"), "{msg}");
        assert_eq!(s.config.parallelism, 4);
        out(s.feed("\\explain on"));
        let query = "range of f1 is Faculty range of f2 is Faculty \
                     retrieve (N=f1.Name) \
                     where f1.ValidFrom < f2.ValidFrom and f2.ValidTo < f1.ValidTo;";
        let msg = out(s.feed(query));
        assert!(msg.contains("Parallel ×4"), "{msg}");
        let msg = out(s.feed("\\set parallelism 1"));
        assert!(msg.contains("serial"), "{msg}");
        let msg = out(s.feed("\\set parallelism x"));
        assert!(msg.starts_with("error:"), "{msg}");
    }

    fn arrivals_file(tag: &str, lines: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("tdb-cli-arrivals-{}-{tag}", std::process::id()));
        std::fs::write(&path, lines).unwrap();
        path
    }

    #[test]
    fn ingest_subscribe_and_close_flow() {
        let mut s = session("live");
        // First batch: a long interval and one it contains; TS 30 holds
        // the watermark so only TS < 30 is final.
        let f1 = arrivals_file("l1", "# comment\n0 100 long\n10 20 a\n30 40 b\n");
        let msg = out(s.feed(&format!("\\ingest S {}", f1.display())));
        assert!(msg.contains("S: 3 arrivals"), "{msg}");
        assert!(msg.contains("2 promoted"), "{msg}");
        assert!(msg.contains("1 staged"), "{msg}");
        assert!(msg.contains("watermark t30"), "{msg}");

        let query = "range of a is S range of b is S retrieve (X=a.Id, Y=b.Id) \
                     where a.ValidFrom < b.ValidFrom and b.ValidTo < a.ValidTo";
        let msg = out(s.feed(&format!("\\subscribe {query};")));
        assert!(msg.contains("subscription #0 registered"), "{msg}");
        // (long, a) is already final at registration.
        assert!(msg.contains("+1 rows"), "{msg}");
        assert!(msg.contains("\"long\" | \"a\""), "{msg}");

        // Second batch pushes the watermark past b.
        let f2 = arrivals_file("l2", "50 60 c\n");
        let msg = out(s.feed(&format!("\\ingest S {}", f2.display())));
        assert!(msg.contains("+1 rows"), "{msg}");
        assert!(msg.contains("| \"b\""), "{msg}");

        let msg = out(s.feed("\\live"));
        assert!(msg.contains("S (ValidFrom ↑)"), "{msg}");
        assert!(msg.contains("4 admitted"), "{msg}");
        assert!(msg.contains("#0 `range of"), "{msg}");
        assert!(msg.contains("workspace peak"), "{msg}");

        let msg = out(s.feed("\\live close S"));
        assert!(msg.contains("S sealed"), "{msg}");
        // (long, c) becomes final once the stream seals.
        assert!(msg.contains("| \"c\""), "{msg}");
        let msg = out(s.feed("\\live"));
        assert!(msg.contains("[sealed]"), "{msg}");
    }

    #[test]
    fn ingest_rejects_garbage_and_unsorted_arrivals() {
        let mut s = session("livebad");
        let f = arrivals_file("bad", "not numbers\n");
        let msg = out(s.feed(&format!("\\ingest S {}", f.display())));
        assert!(msg.starts_with("error:"), "{msg}");
        let f = arrivals_file("late", "50 60 a\n10 20 late\n");
        let msg = out(s.feed(&format!("\\ingest S {}", f.display())));
        assert!(msg.contains("order violation"), "{msg}");
    }

    #[test]
    fn subscribe_requires_known_relations() {
        let mut s = session("livesub");
        let msg = out(s.feed("\\subscribe range of x is Nope retrieve (A=x.Id);"));
        assert!(msg.starts_with("error:"), "{msg}");
    }

    #[test]
    fn quit() {
        let mut s = session("f");
        assert_eq!(s.feed("\\quit"), LineResult::Quit);
        assert_eq!(s.feed("\\q"), LineResult::Quit);
    }

    #[test]
    fn row_limit_truncates_output() {
        let mut s = session("g");
        s.row_limit = 3;
        out(s.feed("\\gen intervals T 50 3 10 1"));
        let msg = out(s.feed("range of t is T retrieve (A=t.ValidFrom);"));
        assert!(msg.contains("more rows"), "{msg}");
    }
}
