//! The `tdb` interactive shell. See [`tdb_cli::Session`] for the command
//! surface (`\help` inside the shell).

use std::io::{BufRead, Write};
use tdb_cli::{LineResult, Session, HELP};

fn main() {
    let dir = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("tdb-cli-data"));
    let mut session = match Session::open(&dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to open catalog at {}: {e}", dir.display());
            std::process::exit(1);
        }
    };
    println!("tdb — temporal database shell (catalog: {})", dir.display());
    println!("{HELP}");

    let stdin = std::io::stdin();
    let mut continuation = false;
    loop {
        print!("{}", if continuation { "...> " } else { "tdb> " });
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        match session.feed(&line) {
            LineResult::Output(out) => {
                continuation = false;
                if !out.is_empty() {
                    println!("{out}");
                }
            }
            LineResult::Continue => continuation = true,
            LineResult::Quit => break,
        }
    }
}
