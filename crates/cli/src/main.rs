//! The `tdb` interactive shell and network front end.
//!
//! ```text
//! tdb [dir]                 local shell over a catalog directory
//! tdb analyze <query>       statically verify a query, print the certificate
//! tdb serve [dir] [addr] [--metrics <addr>] [--data-dir <dir>]
//!                           serve one shared catalog over framed TCP,
//!                           optionally with a Prometheus /metrics endpoint;
//!                           --data-dir makes it durable (write-ahead logged,
//!                           crash recovery on the next start)
//! tdb connect [addr]        open the shell against a running server
//! tdb top [addr] [--once]   live observability dashboard for a server
//! tdb lint [root]           run the workspace source lints (ci gate)
//! ```
//!
//! See [`tdb_cli::Session`] for the command surface (`\help` inside the
//! shell).

use std::io::{BufRead, Write};
use tdb_cli::{LineResult, Session, HELP};
use tdb_engine::{render, render_delta, Response};

const DEFAULT_ADDR: &str = "127.0.0.1:5433";

/// `tdb lint [root]` — run the workspace source lints and exit non-zero
/// on any finding. With no argument the workspace root is found by
/// walking up from the current directory to the first `[workspace]`
/// manifest, so it works from any subdirectory of the repo.
fn lint_main(args: &[String]) -> ! {
    let root = match args.first() {
        Some(dir) => std::path::PathBuf::from(dir),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|e| {
                eprintln!("error: cannot determine current directory: {e}");
                std::process::exit(2);
            });
            tdb_lint::find_workspace_root(&cwd).unwrap_or_else(|| {
                eprintln!("error: no [workspace] Cargo.toml above {}", cwd.display());
                std::process::exit(2);
            })
        }
    };
    match tdb_lint::lint_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("tdb lint: 0 findings");
            std::process::exit(0);
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("tdb lint: {} finding(s)", findings.len());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!(
                "error: cannot read workspace sources under {}: {e}",
                root.display()
            );
            std::process::exit(2);
        }
    }
}

/// `tdb analyze <query>` — statically verify a query's plan against the
/// default catalog and print the certificate, without executing it.
fn analyze_main(query_words: &[String]) -> ! {
    let dir = std::env::temp_dir().join("tdb-cli-data");
    let query = query_words.join(" ");
    if query.trim().is_empty() {
        eprintln!("usage: tdb analyze <query>");
        std::process::exit(2);
    }
    let result =
        Session::open(&dir).and_then(|mut s| s.analyze_query(query.trim().trim_end_matches(';')));
    match result {
        Ok(out) => {
            println!("{out}");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// `tdb serve [dir] [addr] [--metrics <addr>] [--data-dir <dir>]` —
/// serve the catalog until stdin closes or `quit` is typed, then drain
/// connections and exit. With `--metrics`, a Prometheus text-exposition
/// endpoint serves the engine, live, and network metric families at
/// `/metrics`. With `--data-dir`, the engine opens durably at the given
/// directory: the catalog manifest is fsynced, live ingestion is
/// write-ahead logged (an acknowledged `Ingest` reply means the rows
/// survive a crash), and any log left by a previous run is replayed
/// before the listener binds.
fn serve_main(args: &[String]) -> ! {
    const SERVE_USAGE: &str = "usage: tdb serve [dir] [addr] [--metrics <addr>] [--data-dir <dir>]";
    let mut positional: Vec<&String> = Vec::new();
    let mut metrics_addr: Option<&String> = None;
    let mut data_dir: Option<&String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--metrics" {
            match it.next() {
                Some(a) => metrics_addr = Some(a),
                None => {
                    eprintln!("{SERVE_USAGE}");
                    std::process::exit(2);
                }
            }
        } else if arg == "--data-dir" {
            match it.next() {
                Some(a) => data_dir = Some(a),
                None => {
                    eprintln!("{SERVE_USAGE}");
                    std::process::exit(2);
                }
            }
        } else {
            positional.push(arg);
        }
    }
    let durable = data_dir.is_some();
    // With `--data-dir` the directory is no longer positional, so the
    // address shifts into the first positional slot.
    let addr_slot = usize::from(!durable);
    let dir = data_dir
        .or_else(|| positional.first().copied())
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("tdb-cli-data"));
    let addr = positional
        .get(addr_slot)
        .map_or(DEFAULT_ADDR, |a| a.as_str());
    let config = tdb_net::NetConfig {
        durable,
        ..tdb_net::NetConfig::default()
    };
    let handle = match tdb_net::serve(&dir, addr, config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("failed to serve {}: {e}", dir.display());
            std::process::exit(1);
        }
    };
    println!(
        "tdb serving {} {} on {} — type quit (or close stdin) to stop",
        if durable {
            "durable catalog"
        } else {
            "catalog"
        },
        dir.display(),
        handle.addr()
    );
    let metrics = metrics_addr.map(|maddr| {
        let source = handle.metrics_source();
        let health_source = source.clone();
        match tdb_obs::serve_metrics_with_health(
            maddr,
            move || source.render(),
            move || health_source.health(),
        ) {
            Ok(m) => {
                println!(
                    "metrics on http://{0}/metrics, health on http://{0}/healthz",
                    m.addr()
                );
                m
            }
            Err(e) => {
                eprintln!("failed to bind metrics listener on {maddr}: {e}");
                std::process::exit(1);
            }
        }
    });
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.trim() == "quit" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    println!("draining connections…");
    if let Some(m) = metrics {
        m.shutdown();
    }
    handle.shutdown();
    std::process::exit(0);
}

/// `tdb top [addr] [--once]` — poll a server's `\stats` snapshot and
/// redraw it every two seconds (`--once` prints a single snapshot, for
/// scripts).
fn top_main(args: &[String]) -> ! {
    let once = args.iter().any(|a| a == "--once");
    let addr = args
        .iter()
        .find(|a| *a != "--once")
        .map(String::as_str)
        .unwrap_or(DEFAULT_ADDR);
    let mut client = match tdb_net::Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("failed to connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    loop {
        let resp = match client.stats() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("stats request failed: {e}");
                std::process::exit(1);
            }
        };
        if once {
            print!("{}", render(&resp, 20));
            break;
        }
        // Clear the screen and home the cursor between redraws.
        print!("\x1b[2J\x1b[H── tdb top · {addr} ──\n{}", render(&resp, 20));
        std::io::stdout().flush().ok();
        std::thread::sleep(std::time::Duration::from_secs(2));
    }
    client.close();
    std::process::exit(0);
}

/// `tdb connect [addr]` — the shell, but every input is sent to a
/// server; subscription deltas pushed by the server print between
/// prompts.
fn connect_main(args: &[String]) -> ! {
    let addr = args.first().map(String::as_str).unwrap_or(DEFAULT_ADDR);
    let mut client = match tdb_net::Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("failed to connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("tdb — connected to {addr}");
    println!("{HELP}");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        // Show any deltas that arrived while the prompt was idle.
        let mut pushed = String::new();
        while let Some(delta) = client.try_push() {
            render_delta(&delta, 20, &mut pushed);
        }
        if !pushed.is_empty() {
            print!("{pushed}");
        }
        print!("{}", if buffer.is_empty() { "tdb> " } else { "...> " });
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        let input = if buffer.is_empty() && trimmed.starts_with('\\') {
            // Local-file commands resolve on this side of the wire.
            let parts: Vec<&str> = trimmed.split_whitespace().collect();
            if let ["\\ingest", rel, source] = parts.as_slice() {
                let text = if *source == "-" {
                    use std::io::Read as _;
                    let mut s = String::new();
                    stdin.lock().read_to_string(&mut s).ok();
                    s
                } else {
                    match std::fs::read_to_string(source) {
                        Ok(t) => t,
                        Err(e) => {
                            println!("error: {e}");
                            continue;
                        }
                    }
                };
                match client.ingest(rel, &text) {
                    Ok(resp) => print!("{}", render(&resp, 20)),
                    Err(e) => println!("error: {e}"),
                }
                continue;
            }
            trimmed.to_string()
        } else {
            if trimmed.is_empty() && buffer.is_empty() {
                continue;
            }
            buffer.push_str(&line);
            if !trimmed.ends_with(';') {
                continue;
            }
            std::mem::take(&mut buffer)
        };
        // Streamed results render incrementally: the header and each row
        // chunk print as they come off the socket, so a huge result shows
        // progress instead of buffering client-side first.
        let mut shown: u64 = 0;
        let outcome = client.request_with(&input, |ev| match ev {
            tdb_net::StreamEvent::Header(q) => {
                print!("{}", tdb_engine::render_stream_header(q));
                std::io::stdout().flush().ok();
            }
            tdb_net::StreamEvent::Rows(rows) => {
                shown += rows.len() as u64;
                print!("{}", tdb_engine::render_rows(&rows));
                std::io::stdout().flush().ok();
            }
        });
        match outcome {
            Ok(Response::Goodbye) => break,
            Ok(Response::QueryStream(q)) => {
                print!("{}", tdb_engine::render_stream_footer(&q, shown));
            }
            Ok(resp) => {
                let out = render(&resp, 20);
                if !out.is_empty() {
                    print!("{out}");
                }
            }
            Err(e) => {
                println!("error: {e}");
                if client.is_closed() {
                    break;
                }
            }
        }
    }
    client.close();
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => analyze_main(&args[1..]),
        Some("serve") => serve_main(&args[1..]),
        Some("connect") => connect_main(&args[1..]),
        Some("top") => top_main(&args[1..]),
        Some("lint") => lint_main(&args[1..]),
        _ => {}
    }
    let dir = args
        .first()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("tdb-cli-data"));
    let mut session = match Session::open(&dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to open catalog at {}: {e}", dir.display());
            std::process::exit(1);
        }
    };
    println!("tdb — temporal database shell (catalog: {})", dir.display());
    println!("{HELP}");

    let stdin = std::io::stdin();
    let mut continuation = false;
    loop {
        print!("{}", if continuation { "...> " } else { "tdb> " });
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        match session.feed(&line) {
            LineResult::Output(out) => {
                continuation = false;
                if !out.is_empty() {
                    println!("{out}");
                }
            }
            LineResult::Continue => continuation = true,
            LineResult::Quit => break,
        }
    }
}
