//! The `tdb` interactive shell. See [`tdb_cli::Session`] for the command
//! surface (`\help` inside the shell).

use std::io::{BufRead, Write};
use tdb_cli::{LineResult, Session, HELP};

/// `tdb analyze <query>` — statically verify a query's plan against the
/// default catalog and print the certificate, without executing it.
fn analyze_main(query_words: &[String]) -> ! {
    let dir = std::env::temp_dir().join("tdb-cli-data");
    let query = query_words.join(" ");
    if query.trim().is_empty() {
        eprintln!("usage: tdb analyze <query>");
        std::process::exit(2);
    }
    let result =
        Session::open(&dir).and_then(|mut s| s.analyze_query(query.trim().trim_end_matches(';')));
    match result {
        Ok(out) => {
            println!("{out}");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("analyze") {
        analyze_main(&args[1..]);
    }
    let dir = args
        .first()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("tdb-cli-data"));
    let mut session = match Session::open(&dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to open catalog at {}: {e}", dir.display());
            std::process::exit(1);
        }
    };
    println!("tdb — temporal database shell (catalog: {})", dir.display());
    println!("{HELP}");

    let stdin = std::io::stdin();
    let mut continuation = false;
    loop {
        print!("{}", if continuation { "...> " } else { "tdb> " });
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        match session.feed(&line) {
            LineResult::Output(out) => {
                continuation = false;
                if !out.is_empty() {
                    println!("{out}");
                }
            }
            LineResult::Continue => continuation = true,
            LineResult::Quit => break,
        }
    }
}
