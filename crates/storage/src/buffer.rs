//! A fixed-capacity buffer pool with LRU replacement.
//!
//! Pages are identified by `(file_id, page_no)`. Callers `pin` a page to get
//! a guard; while any guard is alive the frame cannot be evicted. Eviction
//! picks the least-recently-used unpinned frame; dirty frames are written
//! back through the owning file before reuse.
//!
//! The pool exists so experiments can run with a bounded memory budget and
//! report buffer hit/miss behaviour — the "multiple passes over input
//! streams" cost the paper trades against workspace and sort order.

use crate::iostats::IoStats;
use crate::page::{Page, PAGE_SIZE};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::sync::Arc;
use tdb_core::{TdbError, TdbResult};

/// Identifies a file registered with the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileId(pub u32);

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PageKey {
    file: FileId,
    page_no: u64,
}

struct Frame {
    page: Page,
    dirty: bool,
    pins: usize,
    /// Monotonic counter value at last unpin (for LRU).
    last_used: u64,
}

struct PoolInner {
    files: HashMap<FileId, File>,
    next_file_id: u32,
    frames: HashMap<PageKey, Frame>,
    capacity: usize,
    clock: u64,
}

/// A shared, thread-safe buffer pool.
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<Mutex<PoolInner>>,
    io: IoStats,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages.
    pub fn new(capacity: usize, io: IoStats) -> BufferPool {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            inner: Arc::new(Mutex::new(PoolInner {
                files: HashMap::new(),
                next_file_id: 0,
                frames: HashMap::new(),
                capacity,
                clock: 0,
            })),
            io,
        }
    }

    /// Register an open file with the pool, receiving its [`FileId`].
    pub fn register(&self, file: File) -> FileId {
        let mut inner = self.inner.lock();
        let id = FileId(inner.next_file_id);
        inner.next_file_id += 1;
        inner.files.insert(id, file);
        id
    }

    /// Number of frames currently resident.
    pub fn resident(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// Pin a page, loading it from disk on a miss. Returns a copy-on-read
    /// guard; call [`BufferPool::unpin`] when done.
    pub fn pin(&self, file: FileId, page_no: u64) -> TdbResult<Page> {
        let mut inner = self.inner.lock();
        let key = PageKey { file, page_no };
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(frame) = inner.frames.get_mut(&key) {
            frame.pins += 1;
            frame.last_used = clock;
            self.io.record_hit();
            return Ok(frame.page.clone());
        }
        self.io.record_miss();
        self.evict_if_full(&mut inner)?;
        // Read the page from disk.
        let f = inner
            .files
            .get_mut(&file)
            .ok_or_else(|| TdbError::Corrupt(format!("unregistered file {file:?}")))?;
        f.seek(SeekFrom::Start(page_no * PAGE_SIZE as u64))?;
        let mut buf = vec![0u8; PAGE_SIZE];
        f.read_exact(&mut buf)?;
        self.io.record_read(PAGE_SIZE as u64);
        let page = Page::from_bytes(&buf)?;
        inner.frames.insert(
            key,
            Frame {
                page: page.clone(),
                dirty: false,
                pins: 1,
                last_used: clock,
            },
        );
        Ok(page)
    }

    /// Write a page through the pool (marks the frame dirty; it reaches disk
    /// on eviction or [`BufferPool::flush_all`]).
    pub fn write(&self, file: FileId, page_no: u64, page: Page) -> TdbResult<()> {
        let mut inner = self.inner.lock();
        let key = PageKey { file, page_no };
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(frame) = inner.frames.get_mut(&key) {
            frame.page = page;
            frame.dirty = true;
            frame.last_used = clock;
            return Ok(());
        }
        self.evict_if_full(&mut inner)?;
        inner.frames.insert(
            key,
            Frame {
                page,
                dirty: true,
                pins: 0,
                last_used: clock,
            },
        );
        Ok(())
    }

    /// Release one pin on a page.
    pub fn unpin(&self, file: FileId, page_no: u64) {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(frame) = inner.frames.get_mut(&PageKey { file, page_no }) {
            frame.pins = frame.pins.saturating_sub(1);
            frame.last_used = clock;
        }
    }

    fn evict_if_full(&self, inner: &mut PoolInner) -> TdbResult<()> {
        while inner.frames.len() >= inner.capacity {
            let victim = inner
                .frames
                .iter()
                .filter(|(_, f)| f.pins == 0)
                .min_by_key(|(_, f)| f.last_used)
                .map(|(k, _)| *k);
            let Some(key) = victim else {
                return Err(TdbError::BufferExhausted {
                    capacity: inner.capacity,
                });
            };
            let frame = inner.frames.remove(&key).expect("victim exists");
            if frame.dirty {
                let f = inner
                    .files
                    .get_mut(&key.file)
                    .ok_or_else(|| TdbError::Corrupt("dirty frame for unknown file".into()))?;
                f.seek(SeekFrom::Start(key.page_no * PAGE_SIZE as u64))?;
                f.write_all(frame.page.as_bytes())?;
                self.io.record_write(PAGE_SIZE as u64);
            }
        }
        Ok(())
    }

    /// Write every dirty frame back to its file.
    pub fn flush_all(&self) -> TdbResult<()> {
        let mut inner = self.inner.lock();
        let keys: Vec<_> = inner
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(k, _)| *k)
            .collect();
        for key in keys {
            // Take the page out to appease the borrow checker, then reinsert.
            let page = inner.frames[&key].page.clone();
            let f = inner
                .files
                .get_mut(&key.file)
                .ok_or_else(|| TdbError::Corrupt("dirty frame for unknown file".into()))?;
            f.seek(SeekFrom::Start(key.page_no * PAGE_SIZE as u64))?;
            f.write_all(page.as_bytes())?;
            self.io.record_write(PAGE_SIZE as u64);
            inner.frames.get_mut(&key).expect("still there").dirty = false;
        }
        for f in inner.files.values_mut() {
            f.flush()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;

    fn tmpfile(name: &str) -> File {
        let d = std::env::temp_dir().join(format!("tdb-buffer-test-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(d.join(name))
            .unwrap()
    }

    fn page_with(text: &[u8]) -> Page {
        let mut p = Page::new();
        p.insert(text).unwrap();
        p
    }

    #[test]
    fn write_then_pin_hits_cache() {
        let io = IoStats::new();
        let pool = BufferPool::new(4, io.clone());
        let f = pool.register(tmpfile("a"));
        pool.write(f, 0, page_with(b"zero")).unwrap();
        let p = pool.pin(f, 0).unwrap();
        assert_eq!(p.get(0).unwrap(), b"zero");
        pool.unpin(f, 0);
        assert_eq!(io.snapshot().buffer_hits, 1);
        assert_eq!(io.snapshot().pages_read, 0);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let io = IoStats::new();
        let pool = BufferPool::new(2, io.clone());
        let f = pool.register(tmpfile("b"));
        for i in 0..5u64 {
            pool.write(f, i, page_with(format!("page{i}").as_bytes()))
                .unwrap();
        }
        // Capacity 2 means at least 3 evictions, each writing back.
        assert!(io.snapshot().pages_written >= 3);
        // Re-pinning an evicted page reads it back from disk correctly.
        let p = pool.pin(f, 0).unwrap();
        assert_eq!(p.get(0).unwrap(), b"page0");
        pool.unpin(f, 0);
        assert!(io.snapshot().pages_read >= 1);
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let pool = BufferPool::new(2, IoStats::new());
        let f = pool.register(tmpfile("c"));
        pool.write(f, 0, page_with(b"a")).unwrap();
        pool.write(f, 1, page_with(b"b")).unwrap();
        let _a = pool.pin(f, 0).unwrap();
        let _b = pool.pin(f, 1).unwrap();
        // Both frames pinned: a third page cannot enter.
        assert!(matches!(
            pool.write(f, 2, page_with(b"c")),
            Err(TdbError::BufferExhausted { .. })
        ));
        pool.unpin(f, 0);
        pool.write(f, 2, page_with(b"c")).unwrap();
    }

    #[test]
    fn lru_prefers_older_frames() {
        let io = IoStats::new();
        let pool = BufferPool::new(2, io.clone());
        let f = pool.register(tmpfile("d"));
        pool.write(f, 0, page_with(b"a")).unwrap();
        pool.write(f, 1, page_with(b"b")).unwrap();
        // Touch page 0 so page 1 becomes LRU.
        pool.pin(f, 0).unwrap();
        pool.unpin(f, 0);
        pool.write(f, 2, page_with(b"c")).unwrap(); // evicts page 1
        let before = io.snapshot();
        pool.pin(f, 0).unwrap(); // still resident → hit
        pool.unpin(f, 0);
        let delta = io.snapshot().since(&before);
        assert_eq!(delta.buffer_hits, 1);
        assert_eq!(delta.pages_read, 0);
    }

    #[test]
    fn flush_all_persists_dirty_frames() {
        let io = IoStats::new();
        let pool = BufferPool::new(8, io.clone());
        let f = pool.register(tmpfile("e"));
        pool.write(f, 0, page_with(b"persist-me")).unwrap();
        pool.flush_all().unwrap();
        assert_eq!(io.snapshot().pages_written, 1);
        // Second flush writes nothing (frame now clean).
        pool.flush_all().unwrap();
        assert_eq!(io.snapshot().pages_written, 1);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let pool = BufferPool::new(16, IoStats::new());
        let f = pool.register(tmpfile("f"));
        for i in 0..8u64 {
            pool.write(f, i, page_with(format!("p{i}").as_bytes()))
                .unwrap();
        }
        let mut handles = Vec::new();
        for t in 0..4 {
            let pool = pool.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    let page_no = (i + t) % 8;
                    let p = pool.pin(f, page_no).unwrap();
                    assert_eq!(p.get(0).unwrap(), format!("p{page_no}").as_bytes());
                    pool.unpin(f, page_no);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
