//! # tdb-storage — the paged storage substrate
//!
//! The paper's stream-processing analysis (Section 4.1) trades off three
//! resources: local workspace, sort order of input streams, and **multiple
//! passes over input streams (i.e. the number of disk accesses)**. To measure
//! that third axis honestly, this crate provides a real storage engine rather
//! than an assumed one:
//!
//! * slotted [`page::Page`]s and on-disk [`heap::HeapFile`]s,
//! * an LRU [`buffer::BufferPool`] with pin/unpin semantics,
//! * sequential sorted [`run::RunWriter`]/[`run::RunReader`] files,
//! * an [`sort::ExternalSorter`] (in-memory runs + k-way merge) that
//!   produces the "properly sorted" streams every Section 4 operator
//!   requires,
//! * a [`catalog::Catalog`] naming relations with schemas and statistics,
//! * [`iostats::IoStats`] counters so experiments can report passes and
//!   page I/O exactly.

pub mod buffer;
pub mod catalog;
pub mod codec;
pub mod heap;
pub mod interval_index;
pub mod iostats;
pub mod page;
pub mod run;
pub mod sort;
pub mod stage;

pub use buffer::BufferPool;
pub use catalog::{Catalog, RelationMeta};
pub use codec::Codec;
pub use heap::HeapFile;
pub use interval_index::IntervalIndex;
pub use iostats::IoStats;
pub use page::{Page, PAGE_SIZE};
pub use run::{RunReader, RunWriter};
pub use sort::ExternalSorter;
pub use stage::StagedAppend;
