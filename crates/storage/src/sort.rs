//! External merge sort.
//!
//! Produces the "properly sorted" input streams that every Section 4 stream
//! operator requires. The sorter consumes any iterator of items, holds at
//! most `memory_budget` items in memory, spills sorted runs to disk, and
//! merges them with a k-way tournament over run heads. Comparators are
//! arbitrary (a [`tdb_core::StreamOrder`] comparison in practice), so one
//! sorter serves every row of the paper's Tables 1–3.

use crate::codec::Codec;
use crate::iostats::IoStats;
use crate::run::{RunReader, RunWriter};
use std::cmp::Ordering;
use std::path::PathBuf;
use tdb_core::TdbResult;

/// Configuration for an external sort.
pub struct ExternalSorter<C> {
    /// Maximum number of items held in memory at once.
    pub memory_budget: usize,
    /// Directory for spill files (cleaned up when readers finish).
    pub spill_dir: PathBuf,
    /// Comparator defining the output order (must be a total order).
    pub cmp: C,
    /// I/O counters.
    pub io: IoStats,
    /// Unique prefix for spill file names.
    pub tag: String,
}

/// Outcome statistics of a sort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SortStats {
    /// Number of input items.
    pub items: usize,
    /// Number of spilled runs (0 means the sort was purely in-memory).
    pub runs: usize,
}

impl<C> ExternalSorter<C> {
    /// A sorter spilling into the system temp directory.
    pub fn new(memory_budget: usize, cmp: C, io: IoStats) -> ExternalSorter<C> {
        let spill_dir = std::env::temp_dir().join(format!("tdb-sort-{}", std::process::id()));
        ExternalSorter {
            memory_budget: memory_budget.max(2),
            spill_dir,
            cmp,
            io,
            tag: format!(
                "s{}",
                SORTER_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            ),
        }
    }
}

/// Process-wide sequence number keeping concurrent sorters' spill files
/// distinct.
static SORTER_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl<C> ExternalSorter<C> {
    /// Sort `input`, returning an iterator over the items in order plus
    /// sort statistics.
    pub fn sort<T>(
        &self,
        input: impl IntoIterator<Item = T>,
    ) -> TdbResult<(SortedRuns<T, &C>, SortStats)>
    where
        T: Codec,
        C: Fn(&T, &T) -> Ordering,
    {
        std::fs::create_dir_all(&self.spill_dir)?;
        let mut runs: Vec<PathBuf> = Vec::new();
        let mut buf: Vec<T> = Vec::with_capacity(self.memory_budget.min(1 << 16));
        let mut items = 0usize;

        for item in input {
            items += 1;
            buf.push(item);
            if buf.len() >= self.memory_budget {
                self.spill(&mut buf, &mut runs)?;
            }
        }

        if runs.is_empty() {
            // Pure in-memory sort: no I/O at all.
            buf.sort_by(&self.cmp);
            let stats = SortStats { items, runs: 0 };
            return Ok((SortedRuns::in_memory(buf), stats));
        }

        if !buf.is_empty() {
            self.spill(&mut buf, &mut runs)?;
        }
        let stats = SortStats {
            items,
            runs: runs.len(),
        };
        let readers = runs
            .iter()
            .map(|p| RunReader::open(p, self.io.clone()))
            .collect::<TdbResult<Vec<_>>>()?;
        Ok((SortedRuns::merging(readers, &self.cmp, runs)?, stats))
    }

    fn spill<T>(&self, buf: &mut Vec<T>, runs: &mut Vec<PathBuf>) -> TdbResult<()>
    where
        T: Codec,
        C: Fn(&T, &T) -> Ordering,
    {
        buf.sort_by(&self.cmp);
        let path = self
            .spill_dir
            .join(format!("{}-{}.run", self.tag, runs.len()));
        let mut w = RunWriter::create(&path, self.io.clone())?;
        for item in buf.drain(..) {
            w.push(&item)?;
        }
        w.finish()?;
        runs.push(path);
        Ok(())
    }
}

/// Iterator over the sorted output: either an in-memory vector or a k-way
/// merge of spilled runs.
pub struct SortedRuns<T, C> {
    state: SortedState<T, C>,
    /// Spill files to delete when the iterator is dropped.
    cleanup: Vec<PathBuf>,
}

enum SortedState<T, C> {
    Memory(std::vec::IntoIter<T>),
    Merge {
        readers: Vec<RunReader<T>>,
        /// Tournament heap of (head item, run index); a binary min-heap
        /// ordered by the comparator, maintained manually because the
        /// comparator is a closure rather than an `Ord` impl.
        heap: Vec<(T, usize)>,
        cmp: C,
    },
    /// An error terminated the merge.
    Poisoned,
}

impl<T: Codec, C: Fn(&T, &T) -> Ordering> SortedRuns<T, C> {
    fn in_memory(mut buf: Vec<T>) -> SortedRuns<T, C> {
        // Already sorted by caller; IntoIter just drains.
        SortedRuns {
            state: SortedState::Memory(std::mem::take(&mut buf).into_iter()),
            cleanup: Vec::new(),
        }
    }

    fn merging(
        mut readers: Vec<RunReader<T>>,
        cmp: C,
        cleanup: Vec<PathBuf>,
    ) -> TdbResult<SortedRuns<T, C>> {
        let mut heap: Vec<(T, usize)> = Vec::with_capacity(readers.len());
        for (i, r) in readers.iter_mut().enumerate() {
            if let Some(item) = r.next_record()? {
                heap.push((item, i));
            }
        }
        let mut s = SortedRuns {
            state: SortedState::Merge { readers, heap, cmp },
            cleanup,
        };
        s.heapify();
        Ok(s)
    }

    fn heapify(&mut self) {
        if let SortedState::Merge { heap, .. } = &self.state {
            let n = heap.len();
            for i in (0..n / 2).rev() {
                self.sift_down(i);
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let SortedState::Merge { heap, cmp, .. } = &mut self.state else {
            return;
        };
        let n = heap.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < n && cmp(&heap[l].0, &heap[smallest].0) == Ordering::Less {
                smallest = l;
            }
            if r < n && cmp(&heap[r].0, &heap[smallest].0) == Ordering::Less {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            heap.swap(i, smallest);
            i = smallest;
        }
    }

    fn next_merged(&mut self) -> TdbResult<Option<T>> {
        let SortedState::Merge { readers, heap, .. } = &mut self.state else {
            unreachable!("next_merged only called in merge state")
        };
        if heap.is_empty() {
            return Ok(None);
        }
        let run = heap[0].1;
        let replacement = match readers[run].next_record() {
            Ok(r) => r,
            Err(e) => {
                self.state = SortedState::Poisoned;
                return Err(e);
            }
        };
        let out = match replacement {
            Some(item) => std::mem::replace(&mut heap[0], (item, run)).0,
            None => {
                let last = heap.len() - 1;
                heap.swap(0, last);
                heap.pop().expect("nonempty").0
            }
        };
        self.sift_down(0);
        Ok(Some(out))
    }
}

impl<T: Codec, C: Fn(&T, &T) -> Ordering> Iterator for SortedRuns<T, C> {
    type Item = TdbResult<T>;

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.state {
            SortedState::Memory(it) => it.next().map(Ok),
            SortedState::Merge { .. } => self.next_merged().transpose(),
            SortedState::Poisoned => None,
        }
    }
}

impl<T, C> Drop for SortedRuns<T, C> {
    fn drop(&mut self) {
        for p in &self.cleanup {
            let _ = std::fs::remove_file(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tdb_core::{StreamOrder, Temporal, TsTuple};

    fn shuffled_tuples(n: usize, seed: u64) -> Vec<TsTuple> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let s = rng.gen_range(-1000..1000);
                let d = rng.gen_range(1..100);
                TsTuple::new(format!("S{i}"), i as i64, s, s + d).unwrap()
            })
            .collect()
    }

    fn ts_cmp(a: &TsTuple, b: &TsTuple) -> Ordering {
        StreamOrder::TS_ASC_TE_ASC.compare(a, b)
    }

    #[test]
    fn in_memory_sort_when_budget_suffices() {
        let io = IoStats::new();
        let sorter = ExternalSorter::new(10_000, ts_cmp, io.clone());
        let input = shuffled_tuples(1000, 1);
        let (out, stats) = sorter.sort(input.clone()).unwrap();
        let sorted: Vec<_> = out.map(|r| r.unwrap()).collect();
        assert_eq!(stats.runs, 0);
        assert_eq!(stats.items, 1000);
        assert_eq!(sorted.len(), 1000);
        assert_eq!(StreamOrder::TS_ASC_TE_ASC.first_violation(&sorted), None);
        assert_eq!(io.snapshot().pages_written, 0, "no spill expected");
    }

    #[test]
    fn external_sort_spills_and_merges_correctly() {
        let io = IoStats::new();
        let sorter = ExternalSorter::new(128, ts_cmp, io.clone());
        let input = shuffled_tuples(5000, 2);
        let (out, stats) = sorter.sort(input.clone()).unwrap();
        let sorted: Vec<_> = out.map(|r| r.unwrap()).collect();
        assert!(stats.runs >= 30, "expected many runs, got {}", stats.runs);
        assert_eq!(sorted.len(), 5000);
        assert_eq!(StreamOrder::TS_ASC_TE_ASC.first_violation(&sorted), None);
        assert!(io.snapshot().pages_written > 0);
        assert!(io.snapshot().pages_read > 0);

        // Output is a permutation of the input.
        let mut a: Vec<_> = input.iter().map(|t| t.ts().ticks()).collect();
        let mut b: Vec<_> = sorted.iter().map(|t| t.ts().ticks()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input() {
        let sorter = ExternalSorter::new(16, ts_cmp, IoStats::new());
        let (out, stats) = sorter.sort(Vec::<TsTuple>::new()).unwrap();
        assert_eq!(stats.items, 0);
        assert_eq!(out.count(), 0);
    }

    #[test]
    fn sorts_under_descending_comparators() {
        let sorter = ExternalSorter::new(
            64,
            |a: &TsTuple, b: &TsTuple| StreamOrder::TE_DESC.compare(a, b),
            IoStats::new(),
        );
        let (out, _) = sorter.sort(shuffled_tuples(1500, 3)).unwrap();
        let sorted: Vec<_> = out.map(|r| r.unwrap()).collect();
        assert_eq!(StreamOrder::TE_DESC.first_violation(&sorted), None);
    }

    #[test]
    fn duplicate_keys_survive() {
        let input: Vec<_> = (0..100)
            .map(|i| TsTuple::new(format!("S{i}"), i, 5, 10).unwrap())
            .collect();
        let sorter = ExternalSorter::new(8, ts_cmp, IoStats::new());
        let (out, _) = sorter.sort(input).unwrap();
        assert_eq!(out.count(), 100);
    }

    #[test]
    fn spill_files_are_cleaned_up() {
        let io = IoStats::new();
        let sorter = ExternalSorter::new(32, ts_cmp, io);
        let spill_dir = sorter.spill_dir.clone();
        let tag = sorter.tag.clone();
        {
            let (out, stats) = sorter.sort(shuffled_tuples(1000, 4)).unwrap();
            assert!(stats.runs > 0);
            let _ = out.count();
        }
        let leftovers = std::fs::read_dir(&spill_dir)
            .map(|d| {
                d.filter_map(|e| e.ok())
                    .filter(|e| e.file_name().to_string_lossy().starts_with(&tag))
                    .count()
            })
            .unwrap_or(0);
        assert_eq!(leftovers, 0, "spill files should be removed on drop");
    }
}
