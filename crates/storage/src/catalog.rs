//! The catalog: named temporal relations with schemas and statistics.
//!
//! Paper Section 6: "Statistical information about the database is known to
//! be important in query optimization. For temporal databases, it appears to
//! be more critical ... estimating the amount of local workspace becomes
//! necessary." The catalog stores each relation's [`TemporalSchema`],
//! row count and [`TemporalStats`], plus which sort orders the stored
//! representation already satisfies — the optimizer's "interesting orders".

use crate::heap::HeapFile;
use crate::iostats::IoStats;
use crate::page::PAGE_SIZE;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use tdb_core::{
    jobj, Direction, Field, FieldType, Json, Row, Schema, SortKey, SortSpec, StreamOrder, TdbError,
    TdbResult, TemporalSchema, TemporalStats, TimePoint,
};

/// Metadata for one relation.
#[derive(Debug, Clone)]
pub struct RelationMeta {
    /// Relation name.
    pub name: String,
    /// Schema including the designated timestamp columns.
    pub schema: TemporalSchema,
    /// Heap file path, relative to the catalog directory.
    pub file: String,
    /// Row count.
    pub rows: usize,
    /// Temporal statistics (λ, durations, concurrency).
    pub stats: TemporalStats,
    /// Sort orders the stored row sequence satisfies.
    pub known_orders: Vec<StreamOrder>,
    /// Durable page count of the heap file at the last manifest write.
    /// Each append batch writes only fresh pages, so this is the commit
    /// point a durable reopen truncates torn trailing pages back to.
    /// `None` for manifests written before durability existed.
    pub pages: Option<u64>,
}

// Manifest serialization. The format is deliberately spelled out field by
// field so the on-disk schema is explicit and stable; `from_json` rejects
// anything it does not recognize rather than guessing.

fn corrupt(what: &str) -> TdbError {
    TdbError::Corrupt(format!("catalog manifest: {what}"))
}

fn sort_spec_to_json(s: SortSpec) -> Json {
    let key = match s.key {
        SortKey::ValidFrom => "ValidFrom",
        SortKey::ValidTo => "ValidTo",
    };
    let dir = match s.direction {
        Direction::Asc => "asc",
        Direction::Desc => "desc",
    };
    jobj! { "key" => key, "direction" => dir }
}

fn sort_spec_from_json(j: &Json) -> TdbResult<SortSpec> {
    let key = match j.get("key").and_then(Json::as_str) {
        Some("ValidFrom") => SortKey::ValidFrom,
        Some("ValidTo") => SortKey::ValidTo,
        _ => return Err(corrupt("bad sort key")),
    };
    let direction = match j.get("direction").and_then(Json::as_str) {
        Some("asc") => Direction::Asc,
        Some("desc") => Direction::Desc,
        _ => return Err(corrupt("bad sort direction")),
    };
    Ok(SortSpec { key, direction })
}

fn order_to_json(o: StreamOrder) -> Json {
    jobj! {
        "primary" => sort_spec_to_json(o.primary),
        "secondary" => o.secondary.map(sort_spec_to_json),
    }
}

fn order_from_json(j: &Json) -> TdbResult<StreamOrder> {
    let primary = sort_spec_from_json(j.get("primary").ok_or_else(|| corrupt("order.primary"))?)?;
    let secondary = match j.get("secondary") {
        None | Some(Json::Null) => None,
        Some(s) => Some(sort_spec_from_json(s)?),
    };
    Ok(StreamOrder { primary, secondary })
}

fn schema_to_json(s: &TemporalSchema) -> Json {
    let fields: Vec<Json> = s
        .schema
        .fields()
        .iter()
        .map(|f| jobj! { "name" => f.name.as_str(), "type" => f.ty.to_string() })
        .collect();
    jobj! {
        "fields" => fields,
        "valid_from" => s.valid_from,
        "valid_to" => s.valid_to,
    }
}

fn schema_from_json(j: &Json) -> TdbResult<TemporalSchema> {
    let mut fields = Vec::new();
    for f in j
        .get("fields")
        .and_then(Json::as_array)
        .ok_or_else(|| corrupt("schema.fields"))?
    {
        let name = f
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| corrupt("field.name"))?;
        let ty = match f.get("type").and_then(Json::as_str) {
            Some("bool") => FieldType::Bool,
            Some("int") => FieldType::Int,
            Some("time") => FieldType::Time,
            Some("str") => FieldType::Str,
            _ => return Err(corrupt("field.type")),
        };
        fields.push(Field::new(name, ty));
    }
    let valid_from = j
        .get("valid_from")
        .and_then(Json::as_usize)
        .ok_or_else(|| corrupt("schema.valid_from"))?;
    let valid_to = j
        .get("valid_to")
        .and_then(Json::as_usize)
        .ok_or_else(|| corrupt("schema.valid_to"))?;
    TemporalSchema::new(Schema::new(fields), valid_from, valid_to)
        .map_err(|e| corrupt(&format!("invalid schema: {e}")))
}

fn stats_to_json(s: &TemporalStats) -> Json {
    jobj! {
        "count" => s.count,
        "min_ts" => s.min_ts.map(|t| t.0),
        "max_te" => s.max_te.map(|t| t.0),
        "lambda" => s.lambda,
        "mean_duration" => s.mean_duration,
        "max_duration" => s.max_duration,
        "max_concurrency" => s.max_concurrency,
    }
}

fn stats_from_json(j: &Json) -> TdbResult<TemporalStats> {
    let field = |name: &str| j.get(name).ok_or_else(|| corrupt(name));
    Ok(TemporalStats {
        count: field("count")?.as_usize().ok_or_else(|| corrupt("count"))?,
        min_ts: field("min_ts")?.as_i64().map(TimePoint),
        max_te: field("max_te")?.as_i64().map(TimePoint),
        lambda: field("lambda")?.as_f64(),
        mean_duration: field("mean_duration")?
            .as_f64()
            .ok_or_else(|| corrupt("mean_duration"))?,
        max_duration: field("max_duration")?
            .as_i64()
            .ok_or_else(|| corrupt("max_duration"))?,
        max_concurrency: field("max_concurrency")?
            .as_usize()
            .ok_or_else(|| corrupt("max_concurrency"))?,
    })
}

impl RelationMeta {
    fn to_json(&self) -> Json {
        let orders: Vec<Json> = self
            .known_orders
            .iter()
            .copied()
            .map(order_to_json)
            .collect();
        jobj! {
            "name" => self.name.as_str(),
            "schema" => schema_to_json(&self.schema),
            "file" => self.file.as_str(),
            "rows" => self.rows,
            "stats" => stats_to_json(&self.stats),
            "known_orders" => orders,
            "pages" => self.pages.map(|p| p as i64),
        }
    }

    fn from_json(j: &Json) -> TdbResult<RelationMeta> {
        let known_orders = j
            .get("known_orders")
            .and_then(Json::as_array)
            .ok_or_else(|| corrupt("known_orders"))?
            .iter()
            .map(order_from_json)
            .collect::<TdbResult<Vec<_>>>()?;
        Ok(RelationMeta {
            name: j
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| corrupt("name"))?
                .to_string(),
            schema: schema_from_json(j.get("schema").ok_or_else(|| corrupt("schema"))?)?,
            file: j
                .get("file")
                .and_then(Json::as_str)
                .ok_or_else(|| corrupt("file"))?
                .to_string(),
            rows: j
                .get("rows")
                .and_then(Json::as_usize)
                .ok_or_else(|| corrupt("rows"))?,
            stats: stats_from_json(j.get("stats").ok_or_else(|| corrupt("stats"))?)?,
            known_orders,
            pages: j.get("pages").and_then(Json::as_i64).map(|p| p as u64),
        })
    }
}

/// A directory-backed catalog of temporal relations.
pub struct Catalog {
    dir: PathBuf,
    relations: BTreeMap<String, RelationMeta>,
    io: IoStats,
    /// When set, every manifest write goes through write-temp → fsync →
    /// rename and heap appends are fdatasync'd before the manifest points
    /// at them, so a crash can never expose a half-written catalog.
    durable: bool,
}

impl Catalog {
    const MANIFEST: &'static str = "catalog.json";

    /// Open (or initialize) a catalog in `dir`.
    pub fn open(dir: impl AsRef<Path>, io: IoStats) -> TdbResult<Catalog> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let manifest = dir.join(Self::MANIFEST);
        let relations = if manifest.exists() {
            let text = std::fs::read_to_string(&manifest)?;
            let doc = Json::parse(&text)
                .map_err(|e| TdbError::Corrupt(format!("catalog manifest: {e}")))?;
            doc.as_object()
                .ok_or_else(|| corrupt("top level must be an object"))?
                .iter()
                .map(|(name, meta)| Ok((name.clone(), RelationMeta::from_json(meta)?)))
                .collect::<TdbResult<BTreeMap<_, _>>>()?
        } else {
            BTreeMap::new()
        };
        Ok(Catalog {
            dir,
            relations,
            io,
            durable: false,
        })
    }

    /// Open a catalog in durable mode: crash-safe manifest writes, synced
    /// heap appends, and torn trailing heap pages (from a batch that died
    /// before its manifest update) truncated back to the last durable
    /// page count recorded in the manifest.
    pub fn open_durable(dir: impl AsRef<Path>, io: IoStats) -> TdbResult<Catalog> {
        let mut cat = Self::open(dir, io)?;
        cat.durable = true;
        cat.repair_heaps()?;
        Ok(cat)
    }

    /// Whether this catalog was opened in durable mode.
    pub fn is_durable(&self) -> bool {
        self.durable
    }

    /// Truncate each heap file back to its manifest-recorded durable page
    /// count. Appends only ever write fresh pages past that point, so
    /// anything beyond it is an unacknowledged batch torn by a crash. A
    /// heap *shorter* than the manifest claims is real corruption: the
    /// manifest is only renamed into place after the heap is synced.
    fn repair_heaps(&self) -> TdbResult<()> {
        for meta in self.relations.values() {
            let Some(pages) = meta.pages else { continue };
            let path = self.dir.join(&meta.file);
            let len = std::fs::metadata(&path)?.len();
            let want = pages * PAGE_SIZE as u64;
            if len < want {
                return Err(TdbError::Corrupt(format!(
                    "heap file {} has {len} bytes but the manifest records {pages} durable pages",
                    path.display()
                )));
            }
            if len > want {
                let file = std::fs::OpenOptions::new().write(true).open(&path)?;
                file.set_len(want)?;
                file.sync_data()?;
            }
        }
        Ok(())
    }

    fn persist(&self) -> TdbResult<()> {
        let doc = Json::Object(
            self.relations
                .iter()
                .map(|(name, meta)| (name.clone(), meta.to_json()))
                .collect(),
        );
        let path = self.dir.join(Self::MANIFEST);
        if self.durable {
            // Crash-safe replace: the manifest is either the old complete
            // version or the new complete version, never a torn mix.
            let tmp = self.dir.join("catalog.json.tmp");
            {
                let mut f = std::fs::File::create(&tmp)?;
                f.write_all(doc.to_string_pretty().as_bytes())?;
                f.sync_all()?;
            }
            std::fs::rename(&tmp, &path)?;
        } else {
            std::fs::write(path, doc.to_string_pretty())?;
        }
        Ok(())
    }

    /// The I/O counter handle shared by this catalog's files.
    pub fn io(&self) -> &IoStats {
        &self.io
    }

    /// Names of all relations.
    pub fn relation_names(&self) -> Vec<String> {
        self.relations.keys().cloned().collect()
    }

    /// Metadata for `name`.
    pub fn meta(&self, name: &str) -> TdbResult<&RelationMeta> {
        self.relations
            .get(name)
            .ok_or_else(|| TdbError::Catalog(format!("unknown relation `{name}`")))
    }

    /// Create (or replace) a relation from rows, validating every row
    /// against the schema and recording statistics.
    ///
    /// `known_orders` documents orderings the caller guarantees the row
    /// sequence satisfies; they are verified here so the optimizer can trust
    /// them later.
    pub fn create_relation(
        &mut self,
        name: &str,
        schema: TemporalSchema,
        rows: &[Row],
        known_orders: Vec<StreamOrder>,
    ) -> TdbResult<()> {
        let mut periods = Vec::with_capacity(rows.len());
        for row in rows {
            schema.check_row(row)?;
            periods.push(schema.period_of(row)?);
        }
        for order in &known_orders {
            if let Some(i) = order.first_violation(&periods) {
                return Err(TdbError::OrderViolation {
                    context: "catalog create_relation",
                    detail: format!("claimed order {order} violated at row {i}"),
                });
            }
        }

        let file = format!("{name}.heap");
        let mut heap = HeapFile::create(self.dir.join(&file), self.io.clone())?;
        for row in rows {
            heap.append(row)?;
        }
        heap.flush()?;
        if self.durable {
            heap.sync_data()?;
        }

        let stats = TemporalStats::compute(&periods);
        let pages = Some(heap.page_count());
        self.relations.insert(
            name.to_string(),
            RelationMeta {
                name: name.to_string(),
                schema,
                file,
                rows: rows.len(),
                stats,
                known_orders,
                pages,
            },
        );
        self.persist()
    }

    /// Append rows to an existing relation, preserving its claimed sort
    /// orders and refreshing statistics.
    ///
    /// Every claimed order in `known_orders` is re-verified over the
    /// *combined* row sequence, so an append that would break an order the
    /// optimizer relies on is rejected outright. Live ingestion satisfies
    /// this by construction: closed prefixes are promoted in watermark
    /// order, so each batch sorts entirely after the rows already stored.
    /// Returns the new total row count.
    pub fn append_rows(&mut self, name: &str, rows: &[Row]) -> TdbResult<usize> {
        let meta = self.meta(name)?;
        if rows.is_empty() {
            return Ok(meta.rows);
        }
        let schema = meta.schema.clone();
        let file = meta.file.clone();
        let known_orders = meta.known_orders.clone();

        let existing = self.scan(name)?;
        let mut periods = Vec::with_capacity(existing.len() + rows.len());
        for row in &existing {
            periods.push(schema.period_of(row)?);
        }
        for row in rows {
            schema.check_row(row)?;
            periods.push(schema.period_of(row)?);
        }
        for order in &known_orders {
            if let Some(i) = order.first_violation(&periods) {
                return Err(TdbError::OrderViolation {
                    context: "catalog append_rows",
                    detail: format!("append would violate claimed order {order} at row {i}"),
                });
            }
        }

        let mut heap = HeapFile::open(self.dir.join(&file), self.io.clone())?;
        for row in rows {
            heap.append(row)?;
        }
        heap.flush()?;
        if self.durable {
            heap.sync_data()?;
        }

        let stats = TemporalStats::compute(&periods);
        let total = periods.len();
        let pages = Some(heap.page_count());
        let meta = self
            .relations
            .get_mut(name)
            .expect("relation existed above");
        meta.rows = total;
        meta.stats = stats;
        meta.pages = pages;
        self.persist()?;
        Ok(total)
    }

    /// Read every row of `name` in storage order.
    pub fn scan(&self, name: &str) -> TdbResult<Vec<Row>> {
        let meta = self.meta(name)?;
        let mut heap = HeapFile::open(self.dir.join(&meta.file), self.io.clone())?;
        heap.scan::<Row>()?.collect()
    }

    /// Drop a relation and its heap file.
    pub fn drop_relation(&mut self, name: &str) -> TdbResult<()> {
        let meta = self
            .relations
            .remove(name)
            .ok_or_else(|| TdbError::Catalog(format!("unknown relation `{name}`")))?;
        let _ = std::fs::remove_file(self.dir.join(&meta.file));
        self.persist()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_core::{TimePoint, Value};

    fn tmpdir(name: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("tdb-catalog-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn faculty_rows() -> (TemporalSchema, Vec<Row>) {
        let schema = TemporalSchema::time_sequence("Name", "Rank");
        let mk = |n: &str, r: &str, s: i64, e: i64| {
            Row::new(vec![
                Value::str(n),
                Value::str(r),
                Value::Time(TimePoint(s)),
                Value::Time(TimePoint(e)),
            ])
        };
        (
            schema,
            vec![
                mk("Smith", "Assistant", 0, 5),
                mk("Smith", "Associate", 5, 9),
                mk("Smith", "Full", 9, 20),
            ],
        )
    }

    #[test]
    fn create_scan_round_trip() {
        let mut cat = Catalog::open(tmpdir("a"), IoStats::new()).unwrap();
        let (schema, rows) = faculty_rows();
        cat.create_relation("Faculty", schema, &rows, vec![StreamOrder::TS_ASC])
            .unwrap();
        assert_eq!(cat.scan("Faculty").unwrap(), rows);
        let meta = cat.meta("Faculty").unwrap();
        assert_eq!(meta.rows, 3);
        assert_eq!(meta.stats.count, 3);
        assert_eq!(meta.known_orders, vec![StreamOrder::TS_ASC]);
    }

    #[test]
    fn persists_across_reopen() {
        let dir = tmpdir("b");
        {
            let mut cat = Catalog::open(&dir, IoStats::new()).unwrap();
            let (schema, rows) = faculty_rows();
            cat.create_relation("Faculty", schema, &rows, vec![])
                .unwrap();
        }
        let cat = Catalog::open(&dir, IoStats::new()).unwrap();
        assert_eq!(cat.relation_names(), vec!["Faculty".to_string()]);
        assert_eq!(cat.scan("Faculty").unwrap().len(), 3);
    }

    #[test]
    fn rejects_bad_rows_and_false_order_claims() {
        let mut cat = Catalog::open(tmpdir("c"), IoStats::new()).unwrap();
        let (schema, mut rows) = faculty_rows();
        // Claimed TE ↑ is false here: TEs are 5, 9, 20 — actually it's true;
        // reverse rows to break TS order instead.
        rows.reverse();
        assert!(matches!(
            cat.create_relation("F", schema.clone(), &rows, vec![StreamOrder::TS_ASC]),
            Err(TdbError::OrderViolation { .. })
        ));
        // Arity mismatch.
        let bad = vec![Row::new(vec![Value::Int(1)])];
        assert!(cat.create_relation("F", schema, &bad, vec![]).is_err());
    }

    #[test]
    fn append_rows_extends_and_reverifies_orders() {
        let mut cat = Catalog::open(tmpdir("f"), IoStats::new()).unwrap();
        let (schema, rows) = faculty_rows();
        cat.create_relation("Faculty", schema, &rows, vec![StreamOrder::TS_ASC])
            .unwrap();
        let later = Row::new(vec![
            Value::str("Jones"),
            Value::str("Assistant"),
            Value::Time(TimePoint(12)),
            Value::Time(TimePoint(30)),
        ]);
        let total = cat
            .append_rows("Faculty", std::slice::from_ref(&later))
            .unwrap();
        assert_eq!(total, 4);
        let meta = cat.meta("Faculty").unwrap();
        assert_eq!(meta.rows, 4);
        assert_eq!(meta.stats.count, 4);
        assert_eq!(cat.scan("Faculty").unwrap().len(), 4);

        // An append that would break the claimed TS ↑ order is rejected
        // and leaves the relation untouched.
        let early = Row::new(vec![
            Value::str("Early"),
            Value::str("Assistant"),
            Value::Time(TimePoint(1)),
            Value::Time(TimePoint(2)),
        ]);
        assert!(matches!(
            cat.append_rows("Faculty", &[early]),
            Err(TdbError::OrderViolation { .. })
        ));
        assert_eq!(cat.scan("Faculty").unwrap().len(), 4);

        // Empty appends are a no-op returning the current count.
        assert_eq!(cat.append_rows("Faculty", &[]).unwrap(), 4);
    }

    #[test]
    fn unknown_relation_errors() {
        let cat = Catalog::open(tmpdir("d"), IoStats::new()).unwrap();
        assert!(matches!(cat.meta("Nope"), Err(TdbError::Catalog(_))));
        assert!(cat.scan("Nope").is_err());
    }

    #[test]
    fn drop_removes_relation_and_file() {
        let dir = tmpdir("e");
        let mut cat = Catalog::open(&dir, IoStats::new()).unwrap();
        let (schema, rows) = faculty_rows();
        cat.create_relation("Faculty", schema, &rows, vec![])
            .unwrap();
        cat.drop_relation("Faculty").unwrap();
        assert!(cat.meta("Faculty").is_err());
        assert!(!dir.join("Faculty.heap").exists());
        assert!(cat.drop_relation("Faculty").is_err());
    }
}
