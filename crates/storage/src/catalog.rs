//! The catalog: named temporal relations with schemas and statistics.
//!
//! Paper Section 6: "Statistical information about the database is known to
//! be important in query optimization. For temporal databases, it appears to
//! be more critical ... estimating the amount of local workspace becomes
//! necessary." The catalog stores each relation's [`TemporalSchema`],
//! row count and [`TemporalStats`], plus which sort orders the stored
//! representation already satisfies — the optimizer's "interesting orders".

use crate::heap::HeapFile;
use crate::iostats::IoStats;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use tdb_core::{
    Row, StreamOrder, TdbError, TdbResult, TemporalSchema, TemporalStats,
};

/// Metadata for one relation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RelationMeta {
    /// Relation name.
    pub name: String,
    /// Schema including the designated timestamp columns.
    pub schema: TemporalSchema,
    /// Heap file path, relative to the catalog directory.
    pub file: String,
    /// Row count.
    pub rows: usize,
    /// Temporal statistics (λ, durations, concurrency).
    pub stats: TemporalStats,
    /// Sort orders the stored row sequence satisfies.
    pub known_orders: Vec<StreamOrder>,
}

/// A directory-backed catalog of temporal relations.
pub struct Catalog {
    dir: PathBuf,
    relations: BTreeMap<String, RelationMeta>,
    io: IoStats,
}

impl Catalog {
    const MANIFEST: &'static str = "catalog.json";

    /// Open (or initialize) a catalog in `dir`.
    pub fn open(dir: impl AsRef<Path>, io: IoStats) -> TdbResult<Catalog> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let manifest = dir.join(Self::MANIFEST);
        let relations = if manifest.exists() {
            let text = std::fs::read_to_string(&manifest)?;
            serde_json::from_str(&text)
                .map_err(|e| TdbError::Corrupt(format!("catalog manifest: {e}")))?
        } else {
            BTreeMap::new()
        };
        Ok(Catalog { dir, relations, io })
    }

    fn persist(&self) -> TdbResult<()> {
        let text = serde_json::to_string_pretty(&self.relations)
            .map_err(|e| TdbError::Corrupt(format!("catalog serialize: {e}")))?;
        std::fs::write(self.dir.join(Self::MANIFEST), text)?;
        Ok(())
    }

    /// The I/O counter handle shared by this catalog's files.
    pub fn io(&self) -> &IoStats {
        &self.io
    }

    /// Names of all relations.
    pub fn relation_names(&self) -> Vec<String> {
        self.relations.keys().cloned().collect()
    }

    /// Metadata for `name`.
    pub fn meta(&self, name: &str) -> TdbResult<&RelationMeta> {
        self.relations
            .get(name)
            .ok_or_else(|| TdbError::Catalog(format!("unknown relation `{name}`")))
    }

    /// Create (or replace) a relation from rows, validating every row
    /// against the schema and recording statistics.
    ///
    /// `known_orders` documents orderings the caller guarantees the row
    /// sequence satisfies; they are verified here so the optimizer can trust
    /// them later.
    pub fn create_relation(
        &mut self,
        name: &str,
        schema: TemporalSchema,
        rows: &[Row],
        known_orders: Vec<StreamOrder>,
    ) -> TdbResult<()> {
        let mut periods = Vec::with_capacity(rows.len());
        for row in rows {
            schema.check_row(row)?;
            periods.push(schema.period_of(row)?);
        }
        for order in &known_orders {
            if let Some(i) = order.first_violation(&periods) {
                return Err(TdbError::OrderViolation {
                    context: "catalog create_relation",
                    detail: format!("claimed order {order} violated at row {i}"),
                });
            }
        }

        let file = format!("{name}.heap");
        let mut heap = HeapFile::create(self.dir.join(&file), self.io.clone())?;
        for row in rows {
            heap.append(row)?;
        }
        heap.flush()?;

        let stats = TemporalStats::compute(&periods);
        self.relations.insert(
            name.to_string(),
            RelationMeta {
                name: name.to_string(),
                schema,
                file,
                rows: rows.len(),
                stats,
                known_orders,
            },
        );
        self.persist()
    }

    /// Read every row of `name` in storage order.
    pub fn scan(&self, name: &str) -> TdbResult<Vec<Row>> {
        let meta = self.meta(name)?;
        let mut heap = HeapFile::open(self.dir.join(&meta.file), self.io.clone())?;
        heap.scan::<Row>()?.collect()
    }

    /// Drop a relation and its heap file.
    pub fn drop_relation(&mut self, name: &str) -> TdbResult<()> {
        let meta = self
            .relations
            .remove(name)
            .ok_or_else(|| TdbError::Catalog(format!("unknown relation `{name}`")))?;
        let _ = std::fs::remove_file(self.dir.join(&meta.file));
        self.persist()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_core::{TimePoint, Value};

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "tdb-catalog-test-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn faculty_rows() -> (TemporalSchema, Vec<Row>) {
        let schema = TemporalSchema::time_sequence("Name", "Rank");
        let mk = |n: &str, r: &str, s: i64, e: i64| {
            Row::new(vec![
                Value::str(n),
                Value::str(r),
                Value::Time(TimePoint(s)),
                Value::Time(TimePoint(e)),
            ])
        };
        (
            schema,
            vec![
                mk("Smith", "Assistant", 0, 5),
                mk("Smith", "Associate", 5, 9),
                mk("Smith", "Full", 9, 20),
            ],
        )
    }

    #[test]
    fn create_scan_round_trip() {
        let mut cat = Catalog::open(tmpdir("a"), IoStats::new()).unwrap();
        let (schema, rows) = faculty_rows();
        cat.create_relation("Faculty", schema, &rows, vec![StreamOrder::TS_ASC])
            .unwrap();
        assert_eq!(cat.scan("Faculty").unwrap(), rows);
        let meta = cat.meta("Faculty").unwrap();
        assert_eq!(meta.rows, 3);
        assert_eq!(meta.stats.count, 3);
        assert_eq!(meta.known_orders, vec![StreamOrder::TS_ASC]);
    }

    #[test]
    fn persists_across_reopen() {
        let dir = tmpdir("b");
        {
            let mut cat = Catalog::open(&dir, IoStats::new()).unwrap();
            let (schema, rows) = faculty_rows();
            cat.create_relation("Faculty", schema, &rows, vec![]).unwrap();
        }
        let cat = Catalog::open(&dir, IoStats::new()).unwrap();
        assert_eq!(cat.relation_names(), vec!["Faculty".to_string()]);
        assert_eq!(cat.scan("Faculty").unwrap().len(), 3);
    }

    #[test]
    fn rejects_bad_rows_and_false_order_claims() {
        let mut cat = Catalog::open(tmpdir("c"), IoStats::new()).unwrap();
        let (schema, mut rows) = faculty_rows();
        // Claimed TE ↑ is false here: TEs are 5, 9, 20 — actually it's true;
        // reverse rows to break TS order instead.
        rows.reverse();
        assert!(matches!(
            cat.create_relation("F", schema.clone(), &rows, vec![StreamOrder::TS_ASC]),
            Err(TdbError::OrderViolation { .. })
        ));
        // Arity mismatch.
        let bad = vec![Row::new(vec![Value::Int(1)])];
        assert!(cat.create_relation("F", schema, &bad, vec![]).is_err());
    }

    #[test]
    fn unknown_relation_errors() {
        let cat = Catalog::open(tmpdir("d"), IoStats::new()).unwrap();
        assert!(matches!(cat.meta("Nope"), Err(TdbError::Catalog(_))));
        assert!(cat.scan("Nope").is_err());
    }

    #[test]
    fn drop_removes_relation_and_file() {
        let dir = tmpdir("e");
        let mut cat = Catalog::open(&dir, IoStats::new()).unwrap();
        let (schema, rows) = faculty_rows();
        cat.create_relation("Faculty", schema, &rows, vec![]).unwrap();
        cat.drop_relation("Faculty").unwrap();
        assert!(cat.meta("Faculty").is_err());
        assert!(!dir.join("Faculty.heap").exists());
        assert!(cat.drop_relation("Faculty").is_err());
    }
}
