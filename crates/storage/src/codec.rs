//! Binary (de)serialization of values, rows and tuples.
//!
//! A compact, length-prefixed, little-endian format used by pages, heap
//! files and sorted runs. Decoding is defensive: truncated or malformed
//! input yields [`TdbError::Corrupt`], never a panic.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tdb_core::{Period, PeriodRow, Row, TdbError, TdbResult, TimePoint, TsTuple, Value};

/// Types that can round-trip through the storage byte format.
pub trait Codec: Sized {
    /// Append this value's encoding to `buf`.
    fn encode(&self, buf: &mut BytesMut);
    /// Decode one value from the front of `buf`, consuming its bytes.
    fn decode(buf: &mut Bytes) -> TdbResult<Self>;

    /// Encode into a fresh byte buffer.
    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Decode from a standalone byte slice, requiring full consumption.
    fn from_bytes(bytes: &[u8]) -> TdbResult<Self> {
        let mut b = Bytes::copy_from_slice(bytes);
        let v = Self::decode(&mut b)?;
        if !b.is_empty() {
            return Err(TdbError::Corrupt(format!(
                "{} trailing bytes after decode",
                b.len()
            )));
        }
        Ok(v)
    }
}

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_TIME: u8 = 3;
const TAG_STR: u8 = 4;

fn need(buf: &Bytes, n: usize, what: &str) -> TdbResult<()> {
    if buf.remaining() < n {
        Err(TdbError::Corrupt(format!(
            "truncated {what}: need {n} bytes, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

impl Codec for Value {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Value::Null => buf.put_u8(TAG_NULL),
            Value::Bool(b) => {
                buf.put_u8(TAG_BOOL);
                buf.put_u8(u8::from(*b));
            }
            Value::Int(i) => {
                buf.put_u8(TAG_INT);
                buf.put_i64_le(*i);
            }
            Value::Time(t) => {
                buf.put_u8(TAG_TIME);
                buf.put_i64_le(t.ticks());
            }
            Value::Str(s) => {
                buf.put_u8(TAG_STR);
                buf.put_u32_le(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
        }
    }

    fn decode(buf: &mut Bytes) -> TdbResult<Value> {
        need(buf, 1, "value tag")?;
        match buf.get_u8() {
            TAG_NULL => Ok(Value::Null),
            TAG_BOOL => {
                need(buf, 1, "bool")?;
                Ok(Value::Bool(buf.get_u8() != 0))
            }
            TAG_INT => {
                need(buf, 8, "int")?;
                Ok(Value::Int(buf.get_i64_le()))
            }
            TAG_TIME => {
                need(buf, 8, "time")?;
                Ok(Value::Time(TimePoint::new(buf.get_i64_le())))
            }
            TAG_STR => {
                need(buf, 4, "string length")?;
                let len = buf.get_u32_le() as usize;
                need(buf, len, "string body")?;
                let raw = buf.split_to(len);
                let s = std::str::from_utf8(&raw)
                    .map_err(|e| TdbError::Corrupt(format!("invalid utf-8 string: {e}")))?;
                Ok(Value::str(s))
            }
            t => Err(TdbError::Corrupt(format!("unknown value tag {t}"))),
        }
    }
}

impl Codec for Row {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16_le(self.arity() as u16);
        for v in self.values() {
            v.encode(buf);
        }
    }

    fn decode(buf: &mut Bytes) -> TdbResult<Row> {
        need(buf, 2, "row arity")?;
        let n = buf.get_u16_le() as usize;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(Value::decode(buf)?);
        }
        Ok(Row::new(values))
    }
}

impl Codec for Period {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_i64_le(self.start().ticks());
        buf.put_i64_le(self.end().ticks());
    }

    fn decode(buf: &mut Bytes) -> TdbResult<Period> {
        need(buf, 16, "period")?;
        let start = TimePoint::new(buf.get_i64_le());
        let end = TimePoint::new(buf.get_i64_le());
        Period::new(start, end)
    }
}

impl Codec for PeriodRow {
    fn encode(&self, buf: &mut BytesMut) {
        self.row.encode(buf);
        self.period.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> TdbResult<PeriodRow> {
        Ok(PeriodRow {
            row: Row::decode(buf)?,
            period: Period::decode(buf)?,
        })
    }
}

impl Codec for TsTuple {
    fn encode(&self, buf: &mut BytesMut) {
        self.surrogate.encode(buf);
        self.value.encode(buf);
        self.period.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> TdbResult<TsTuple> {
        Ok(TsTuple {
            surrogate: Value::decode(buf)?,
            value: Value::decode(buf)?,
            period: Period::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn value_round_trips() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(i64::MIN),
            Value::Int(42),
            Value::Time(TimePoint(-7)),
            Value::str(""),
            Value::str("Associate Professor 教授"),
        ] {
            assert_eq!(Value::from_bytes(&v.to_bytes()).unwrap(), v);
        }
    }

    #[test]
    fn row_round_trips() {
        let r = Row::new(vec![Value::str("Smith"), Value::Int(3), Value::Null]);
        assert_eq!(Row::from_bytes(&r.to_bytes()).unwrap(), r);
        let empty = Row::new(vec![]);
        assert_eq!(Row::from_bytes(&empty.to_bytes()).unwrap(), empty);
    }

    #[test]
    fn tuple_round_trips() {
        let t = TsTuple::new("Smith", "Full", 9, 20).unwrap();
        assert_eq!(TsTuple::from_bytes(&t.to_bytes()).unwrap(), t);
    }

    #[test]
    fn truncated_input_is_corrupt_not_panic() {
        let t = TsTuple::new("Smith", "Full", 9, 20).unwrap();
        let full = t.to_bytes();
        for cut in 0..full.len() {
            let err = TsTuple::from_bytes(&full[..cut]);
            assert!(err.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(matches!(
            Value::from_bytes(&[99]),
            Err(TdbError::Corrupt(_))
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        // TAG_STR, len=2, invalid bytes.
        let bytes = [TAG_STR, 2, 0, 0, 0, 0xff, 0xfe];
        assert!(Value::from_bytes(&bytes).is_err());
    }

    #[test]
    fn inverted_period_rejected_at_decode() {
        let mut buf = BytesMut::new();
        buf.put_i64_le(10);
        buf.put_i64_le(3);
        assert!(matches!(
            Period::from_bytes(&buf.freeze()),
            Err(TdbError::InvalidPeriod { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut b = Value::Int(1).to_bytes().to_vec();
        b.push(0);
        assert!(Value::from_bytes(&b).is_err());
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            any::<i64>().prop_map(|t| Value::Time(TimePoint(t))),
            "[a-zA-Z0-9 ]{0,40}".prop_map(Value::str),
        ]
    }

    proptest! {
        #[test]
        fn arbitrary_rows_round_trip(values in proptest::collection::vec(arb_value(), 0..12)) {
            let row = Row::new(values);
            prop_assert_eq!(Row::from_bytes(&row.to_bytes()).unwrap(), row);
        }

        #[test]
        fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = Row::from_bytes(&bytes);
            let _ = TsTuple::from_bytes(&bytes);
            let _ = Value::from_bytes(&bytes);
        }
    }
}
