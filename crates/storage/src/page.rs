//! Slotted pages.
//!
//! The classic layout: a small header, record data growing forward from the
//! header, and a slot directory growing backward from the page end. Records
//! are opaque byte strings (encoded by [`crate::codec`]).
//!
//! ```text
//! +--------+-----------------------+______________+----------------+
//! | header | record data  ──────►  |  free space  | ◄── slot array |
//! +--------+-----------------------+______________+----------------+
//! ```

use tdb_core::{TdbError, TdbResult};

/// Page size in bytes. 8 KiB, a common DBMS default.
pub const PAGE_SIZE: usize = 8192;

const HEADER_SIZE: usize = 4; // u16 slot_count, u16 data_end
const SLOT_SIZE: usize = 4; // u16 offset, u16 len

/// A fixed-size slotted page.
#[derive(Clone)]
pub struct Page {
    bytes: Box<[u8; PAGE_SIZE]>,
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("slots", &self.slot_count())
            .field("free", &self.free_space())
            .finish()
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::new()
    }
}

impl Page {
    /// A fresh, empty page.
    pub fn new() -> Page {
        let mut p = Page {
            bytes: Box::new([0u8; PAGE_SIZE]),
        };
        p.set_slot_count(0);
        p.set_data_end(HEADER_SIZE as u16);
        p
    }

    /// Reconstruct a page from raw bytes (e.g. read from disk).
    pub fn from_bytes(bytes: &[u8]) -> TdbResult<Page> {
        if bytes.len() != PAGE_SIZE {
            return Err(TdbError::Corrupt(format!(
                "page must be {PAGE_SIZE} bytes, got {}",
                bytes.len()
            )));
        }
        let mut arr = Box::new([0u8; PAGE_SIZE]);
        arr.copy_from_slice(bytes);
        let p = Page { bytes: arr };
        // Validate header consistency so a corrupt page cannot cause
        // out-of-bounds record reads later.
        let slots = p.slot_count() as usize;
        let data_end = p.data_end() as usize;
        if !(HEADER_SIZE..=PAGE_SIZE).contains(&data_end)
            || slots * SLOT_SIZE > PAGE_SIZE - HEADER_SIZE
        {
            return Err(TdbError::Corrupt("inconsistent page header".into()));
        }
        for i in 0..slots {
            let (off, len) = p.slot(i);
            if off as usize + len as usize > data_end {
                return Err(TdbError::Corrupt(format!("slot {i} exceeds data area")));
            }
        }
        Ok(p)
    }

    /// The raw bytes of this page.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[..]
    }

    fn set_slot_count(&mut self, n: u16) {
        self.bytes[0..2].copy_from_slice(&n.to_le_bytes());
    }

    /// Number of records stored on the page.
    pub fn slot_count(&self) -> u16 {
        u16::from_le_bytes([self.bytes[0], self.bytes[1]])
    }

    fn set_data_end(&mut self, n: u16) {
        self.bytes[2..4].copy_from_slice(&n.to_le_bytes());
    }

    fn data_end(&self) -> u16 {
        u16::from_le_bytes([self.bytes[2], self.bytes[3]])
    }

    fn slot_pos(i: usize) -> usize {
        PAGE_SIZE - (i + 1) * SLOT_SIZE
    }

    fn slot(&self, i: usize) -> (u16, u16) {
        let p = Self::slot_pos(i);
        (
            u16::from_le_bytes([self.bytes[p], self.bytes[p + 1]]),
            u16::from_le_bytes([self.bytes[p + 2], self.bytes[p + 3]]),
        )
    }

    fn set_slot(&mut self, i: usize, offset: u16, len: u16) {
        let p = Self::slot_pos(i);
        self.bytes[p..p + 2].copy_from_slice(&offset.to_le_bytes());
        self.bytes[p + 2..p + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Free bytes remaining (accounting for the slot entry a new record
    /// would need).
    pub fn free_space(&self) -> usize {
        let used_front = self.data_end() as usize;
        let used_back = self.slot_count() as usize * SLOT_SIZE;
        PAGE_SIZE - used_front - used_back
    }

    /// Can a record of `len` bytes be inserted?
    pub fn fits(&self, len: usize) -> bool {
        self.free_space() >= len + SLOT_SIZE
    }

    /// Insert a record, returning its slot index, or `None` if it does not
    /// fit.
    pub fn insert(&mut self, record: &[u8]) -> Option<u16> {
        if !self.fits(record.len()) || record.len() > u16::MAX as usize {
            return None;
        }
        let slot = self.slot_count();
        let offset = self.data_end();
        let end = offset as usize + record.len();
        self.bytes[offset as usize..end].copy_from_slice(record);
        self.set_slot(slot as usize, offset, record.len() as u16);
        self.set_data_end(end as u16);
        self.set_slot_count(slot + 1);
        Some(slot)
    }

    /// Read the record in slot `i`.
    pub fn get(&self, i: u16) -> TdbResult<&[u8]> {
        if i >= self.slot_count() {
            return Err(TdbError::Corrupt(format!(
                "slot {i} out of range (page has {})",
                self.slot_count()
            )));
        }
        let (off, len) = self.slot(i as usize);
        Ok(&self.bytes[off as usize..off as usize + len as usize])
    }

    /// Iterate over all records on the page.
    pub fn records(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.slot_count()).map(move |i| {
            let (off, len) = self.slot(i as usize);
            &self.bytes[off as usize..off as usize + len as usize]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_page() {
        let p = Page::new();
        assert_eq!(p.slot_count(), 0);
        assert_eq!(p.free_space(), PAGE_SIZE - HEADER_SIZE);
        assert!(p.get(0).is_err());
    }

    #[test]
    fn insert_and_get() {
        let mut p = Page::new();
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!!").unwrap();
        assert_eq!(p.get(a).unwrap(), b"hello");
        assert_eq!(p.get(b).unwrap(), b"world!!");
        assert_eq!(p.slot_count(), 2);
        let all: Vec<_> = p.records().collect();
        assert_eq!(all, vec![b"hello".as_ref(), b"world!!".as_ref()]);
    }

    #[test]
    fn fills_up_and_rejects_overflow() {
        let mut p = Page::new();
        let rec = [7u8; 100];
        let mut n = 0;
        while p.insert(&rec).is_some() {
            n += 1;
        }
        // 104 bytes per record (100 + slot) into ~8188 usable.
        assert!(n >= 78, "inserted only {n}");
        assert!(!p.fits(100));
        // Smaller record may still fit.
        let tiny_fits = p.fits(4);
        assert_eq!(p.insert(&[1, 2, 3, 4]).is_some(), tiny_fits);
    }

    #[test]
    fn empty_records_are_fine() {
        let mut p = Page::new();
        let s = p.insert(b"").unwrap();
        assert_eq!(p.get(s).unwrap(), b"");
    }

    #[test]
    fn round_trips_through_bytes() {
        let mut p = Page::new();
        p.insert(b"abc").unwrap();
        p.insert(b"defgh").unwrap();
        let q = Page::from_bytes(p.as_bytes()).unwrap();
        assert_eq!(q.get(0).unwrap(), b"abc");
        assert_eq!(q.get(1).unwrap(), b"defgh");
    }

    #[test]
    fn corrupt_headers_rejected() {
        assert!(Page::from_bytes(&[0u8; 10]).is_err()); // wrong size
        let mut bytes = vec![0u8; PAGE_SIZE];
        bytes[0] = 0xff; // absurd slot count
        bytes[1] = 0xff;
        assert!(Page::from_bytes(&bytes).is_err());
        // data_end below header.
        let mut bytes = vec![0u8; PAGE_SIZE];
        bytes[2] = 1;
        bytes[3] = 0;
        assert!(Page::from_bytes(&bytes).is_err());
    }

    #[test]
    fn corrupt_slot_rejected() {
        let mut p = Page::new();
        p.insert(b"abcd").unwrap();
        let mut bytes = p.as_bytes().to_vec();
        // Inflate slot 0's length beyond data_end.
        let pos = PAGE_SIZE - 2;
        bytes[pos] = 0xff;
        bytes[pos + 1] = 0x1f;
        assert!(Page::from_bytes(&bytes).is_err());
    }
}
