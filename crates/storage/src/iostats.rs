//! Shared I/O counters.
//!
//! Every component that touches the disk (heap files, buffer pool, run
//! files, the external sorter) increments a shared [`IoStats`] handle, so an
//! experiment can report exactly how many page reads/writes a plan cost —
//! the "number of disk accesses" axis of the paper's Section 4.1 tradeoff.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug, Default)]
struct Counters {
    pages_read: AtomicU64,
    pages_written: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    buffer_hits: AtomicU64,
    buffer_misses: AtomicU64,
}

/// A cheaply cloneable handle onto shared I/O counters.
#[derive(Debug, Clone, Default)]
pub struct IoStats {
    inner: Arc<Counters>,
}

/// A point-in-time snapshot of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Pages read from disk.
    pub pages_read: u64,
    /// Pages written to disk.
    pub pages_written: u64,
    /// Bytes read from disk.
    pub bytes_read: u64,
    /// Bytes written to disk.
    pub bytes_written: u64,
    /// Buffer-pool hits.
    pub buffer_hits: u64,
    /// Buffer-pool misses (each implies a page read).
    pub buffer_misses: u64,
}

impl IoStats {
    /// A fresh set of counters.
    pub fn new() -> IoStats {
        IoStats::default()
    }

    /// Record a page read of `bytes` bytes.
    pub fn record_read(&self, bytes: u64) {
        self.inner.pages_read.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record a page write of `bytes` bytes.
    pub fn record_write(&self, bytes: u64) {
        self.inner.pages_written.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record a buffer-pool hit.
    pub fn record_hit(&self) {
        self.inner.buffer_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a buffer-pool miss.
    pub fn record_miss(&self) {
        self.inner.buffer_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the current counter values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            pages_read: self.inner.pages_read.load(Ordering::Relaxed),
            pages_written: self.inner.pages_written.load(Ordering::Relaxed),
            bytes_read: self.inner.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.inner.bytes_written.load(Ordering::Relaxed),
            buffer_hits: self.inner.buffer_hits.load(Ordering::Relaxed),
            buffer_misses: self.inner.buffer_misses.load(Ordering::Relaxed),
        }
    }
}

impl IoSnapshot {
    /// Counter deltas since an earlier snapshot.
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            pages_read: self.pages_read - earlier.pages_read,
            pages_written: self.pages_written - earlier.pages_written,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            buffer_hits: self.buffer_hits - earlier.buffer_hits,
            buffer_misses: self.buffer_misses - earlier.buffer_misses,
        }
    }
}

impl fmt::Display for IoSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "read {} pages ({} B), wrote {} pages ({} B), buffer {}/{} hit/miss",
            self.pages_read,
            self.bytes_read,
            self.pages_written,
            self.bytes_written,
            self.buffer_hits,
            self.buffer_misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_read(4096);
        s.record_read(4096);
        s.record_write(8192);
        s.record_hit();
        s.record_miss();
        let snap = s.snapshot();
        assert_eq!(snap.pages_read, 2);
        assert_eq!(snap.bytes_read, 8192);
        assert_eq!(snap.pages_written, 1);
        assert_eq!(snap.buffer_hits, 1);
        assert_eq!(snap.buffer_misses, 1);
    }

    #[test]
    fn clones_share_counters() {
        let s = IoStats::new();
        let t = s.clone();
        t.record_write(10);
        assert_eq!(s.snapshot().pages_written, 1);
    }

    #[test]
    fn since_computes_deltas() {
        let s = IoStats::new();
        s.record_read(1);
        let before = s.snapshot();
        s.record_read(1);
        s.record_read(1);
        let delta = s.snapshot().since(&before);
        assert_eq!(delta.pages_read, 2);
        assert_eq!(delta.pages_written, 0);
    }

    #[test]
    fn display_mentions_pages() {
        let s = IoStats::new();
        s.record_read(100);
        assert!(s.snapshot().to_string().contains("read 1 pages"));
    }
}
