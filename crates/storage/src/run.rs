//! Sequential run files.
//!
//! A *run* is a sorted sequence of records written once and read once —
//! the unit the external sorter spills and merges, and the natural on-disk
//! representation of a "properly sorted stream" (paper Section 4.1).
//! Records are length-prefixed (`u32` little-endian) and buffered in
//! page-sized chunks so the I/O counters reflect page-granular access.

use crate::codec::Codec;
use crate::iostats::IoStats;
use crate::page::PAGE_SIZE;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, ErrorKind, Read, Write};
use std::path::{Path, PathBuf};
use tdb_core::{TdbError, TdbResult};

/// Writes a run file.
pub struct RunWriter {
    out: BufWriter<File>,
    path: PathBuf,
    records: u64,
    bytes: u64,
    io: IoStats,
}

impl RunWriter {
    /// Create a run file at `path`.
    pub fn create(path: impl AsRef<Path>, io: IoStats) -> TdbResult<RunWriter> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(RunWriter {
            out: BufWriter::with_capacity(PAGE_SIZE, file),
            path,
            records: 0,
            bytes: 0,
            io,
        })
    }

    /// Append one record.
    pub fn push<T: Codec>(&mut self, item: &T) -> TdbResult<()> {
        let payload = item.to_bytes();
        self.out.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.out.write_all(&payload)?;
        let written = 4 + payload.len() as u64;
        let pages_before = self.bytes / PAGE_SIZE as u64;
        self.bytes += written;
        let pages_after = self.bytes / PAGE_SIZE as u64;
        for _ in pages_before..pages_after {
            self.io.record_write(PAGE_SIZE as u64);
        }
        self.records += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn len(&self) -> u64 {
        self.records
    }

    /// Has anything been written?
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Flush and close, returning the path and record count.
    pub fn finish(mut self) -> TdbResult<(PathBuf, u64)> {
        self.out.flush()?;
        if !self.bytes.is_multiple_of(PAGE_SIZE as u64) {
            self.io.record_write(self.bytes % PAGE_SIZE as u64);
        }
        Ok((self.path, self.records))
    }
}

/// Reads a run file sequentially.
pub struct RunReader<T> {
    input: BufReader<File>,
    bytes_read: u64,
    io: IoStats,
    done: bool,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Codec> RunReader<T> {
    /// Open a run file for reading.
    pub fn open(path: impl AsRef<Path>, io: IoStats) -> TdbResult<RunReader<T>> {
        let file = File::open(path.as_ref())?;
        Ok(RunReader {
            input: BufReader::with_capacity(PAGE_SIZE, file),
            bytes_read: 0,
            io,
            done: false,
            _marker: std::marker::PhantomData,
        })
    }

    /// Read the next record, or `None` at end of file.
    pub fn next_record(&mut self) -> TdbResult<Option<T>> {
        if self.done {
            return Ok(None);
        }
        let mut len_buf = [0u8; 4];
        match self.input.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == ErrorKind::UnexpectedEof => {
                self.done = true;
                // Account for the final partial page.
                if !self.bytes_read.is_multiple_of(PAGE_SIZE as u64) {
                    self.io.record_read(self.bytes_read % PAGE_SIZE as u64);
                }
                return Ok(None);
            }
            Err(e) => return Err(e.into()),
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > 64 * 1024 * 1024 {
            return Err(TdbError::Corrupt(format!(
                "record length {len} is implausible; run file corrupt"
            )));
        }
        let mut payload = vec![0u8; len];
        self.input.read_exact(&mut payload).map_err(|e| {
            if e.kind() == ErrorKind::UnexpectedEof {
                TdbError::Corrupt("run file truncated mid-record".into())
            } else {
                e.into()
            }
        })?;
        let pages_before = self.bytes_read / PAGE_SIZE as u64;
        self.bytes_read += 4 + len as u64;
        let pages_after = self.bytes_read / PAGE_SIZE as u64;
        for _ in pages_before..pages_after {
            self.io.record_read(PAGE_SIZE as u64);
        }
        T::from_bytes(&payload).map(Some)
    }
}

impl<T: Codec> Iterator for RunReader<T> {
    type Item = TdbResult<T>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_core::TsTuple;

    fn tmppath(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tdb-run-test-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(name)
    }

    #[test]
    fn round_trip() {
        let path = tmppath("r1.run");
        let io = IoStats::new();
        let mut w = RunWriter::create(&path, io.clone()).unwrap();
        let tuples: Vec<_> = (0..500)
            .map(|i| TsTuple::new(format!("S{i}"), i, i, i + 5).unwrap())
            .collect();
        for t in &tuples {
            w.push(t).unwrap();
        }
        assert_eq!(w.len(), 500);
        let (path, n) = w.finish().unwrap();
        assert_eq!(n, 500);
        let r = RunReader::<TsTuple>::open(&path, io).unwrap();
        let back: Vec<_> = r.map(|x| x.unwrap()).collect();
        assert_eq!(back, tuples);
    }

    #[test]
    fn empty_run() {
        let path = tmppath("r2.run");
        let w = RunWriter::create(&path, IoStats::new()).unwrap();
        assert!(w.is_empty());
        let (path, n) = w.finish().unwrap();
        assert_eq!(n, 0);
        let mut r = RunReader::<TsTuple>::open(&path, IoStats::new()).unwrap();
        assert!(r.next_record().unwrap().is_none());
        // Reads after EOF stay None.
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn truncated_file_is_detected() {
        let path = tmppath("r3.run");
        let io = IoStats::new();
        let mut w = RunWriter::create(&path, io.clone()).unwrap();
        w.push(&TsTuple::interval(0, 5).unwrap()).unwrap();
        let (path, _) = w.finish().unwrap();
        // Chop the last byte off.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 1]).unwrap();
        let mut r = RunReader::<TsTuple>::open(&path, io).unwrap();
        assert!(r.next_record().is_err());
    }

    #[test]
    fn io_counters_advance_per_page() {
        let path = tmppath("r4.run");
        let io = IoStats::new();
        let mut w = RunWriter::create(&path, io.clone()).unwrap();
        for i in 0..20_000i64 {
            w.push(&TsTuple::interval(i, i + 1).unwrap()).unwrap();
        }
        w.finish().unwrap();
        assert!(io.snapshot().pages_written > 10);
    }
}
