//! An interval-tree access path for temporal relations.
//!
//! The paper's §1 taxonomy places "new access methods and data
//! organization strategies" (Lum, Ahn, Rotem & Segev) alongside query
//! processing; the stream operators of §4 deliberately need only sorted
//! scans, but point queries — "who was valid at time t?" — deserve better
//! than a full scan. [`IntervalIndex`] is a classic centered interval
//! tree, bulk-built over `(Period, row-id)` pairs:
//!
//! * [`IntervalIndex::stab`] — all rows whose lifespan spans a time point,
//!   in `O(log n + k)`;
//! * [`IntervalIndex::overlapping`] — all rows whose lifespan intersects a
//!   query period.

use tdb_core::{Period, TimePoint};

/// One indexed entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    period: Period,
    row_id: u64,
}

#[derive(Debug)]
struct Node {
    center: TimePoint,
    /// Intervals containing `center`, sorted by start ascending.
    by_start: Vec<Entry>,
    /// The same intervals, sorted by end descending.
    by_end: Vec<Entry>,
    left: Option<Box<Node>>,
    right: Option<Box<Node>>,
}

/// A static (bulk-built) centered interval tree over row lifespans.
#[derive(Debug)]
pub struct IntervalIndex {
    root: Option<Box<Node>>,
    len: usize,
}

impl IntervalIndex {
    /// Build the index from `(period, row_id)` pairs.
    pub fn build(items: impl IntoIterator<Item = (Period, u64)>) -> IntervalIndex {
        let entries: Vec<Entry> = items
            .into_iter()
            .map(|(period, row_id)| Entry { period, row_id })
            .collect();
        let len = entries.len();
        IntervalIndex {
            root: Self::build_node(entries),
            len,
        }
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn build_node(entries: Vec<Entry>) -> Option<Box<Node>> {
        if entries.is_empty() {
            return None;
        }
        // Median endpoint as the center.
        let mut points: Vec<TimePoint> = entries
            .iter()
            .flat_map(|e| [e.period.start(), e.period.end()])
            .collect();
        points.sort_unstable();
        let center = points[points.len() / 2];

        let n = entries.len();
        let mut here = Vec::new();
        let mut left = Vec::new();
        let mut right = Vec::new();
        for e in entries {
            if e.period.end() <= center && !e.period.spans(center) {
                // Entirely left of center (half-open: end ≤ center means
                // it cannot span center unless start ≤ center < end).
                left.push(e);
            } else if e.period.start() > center {
                right.push(e);
            } else {
                here.push(e);
            }
        }
        // Degenerate split (e.g. all periods identical with the median
        // endpoint at their shared end): force progress by keeping
        // everything at this node — stab/overlap remain correct because
        // node lists are always tested against the query.
        if left.len() == n || right.len() == n {
            here.append(&mut left);
            here.append(&mut right);
        }
        let mut by_start = here.clone();
        by_start.sort_by_key(|e| e.period.start());
        let mut by_end = here;
        by_end.sort_by_key(|e| std::cmp::Reverse(e.period.end()));
        Some(Box::new(Node {
            center,
            by_start,
            by_end,
            left: Self::build_node(left),
            right: Self::build_node(right),
        }))
    }

    /// Row ids whose lifespan spans `t` (`start ≤ t < end`), in ascending
    /// row order.
    pub fn stab(&self, t: TimePoint) -> Vec<u64> {
        let mut out = Vec::new();
        let mut node = self.root.as_deref();
        while let Some(n) = node {
            if t < n.center {
                // Early exit is sound on the start-sorted list; each push
                // is verified (degenerate-split nodes may hold entries not
                // spanning the center).
                for e in &n.by_start {
                    if e.period.start() > t {
                        break;
                    }
                    if e.period.spans(t) {
                        out.push(e.row_id);
                    }
                }
                node = n.left.as_deref();
            } else {
                for e in &n.by_end {
                    if e.period.end() <= t {
                        break;
                    }
                    if e.period.spans(t) {
                        out.push(e.row_id);
                    }
                }
                node = n.right.as_deref();
            }
        }
        out.sort_unstable();
        out
    }

    /// Row ids whose lifespan shares at least one point with `q` (the
    /// general `overlap` of footnote 6), in ascending row order.
    pub fn overlapping(&self, q: &Period) -> Vec<u64> {
        let mut out = Vec::new();
        Self::collect_overlapping(self.root.as_deref(), q, &mut out);
        out.sort_unstable();
        out
    }

    fn collect_overlapping(node: Option<&Node>, q: &Period, out: &mut Vec<u64>) {
        let Some(n) = node else { return };
        // Entries at this node span the center; test each against q via
        // the sorted lists with early exit.
        if q.end() <= n.center {
            // Query entirely left of center: only entries starting before
            // q.end can overlap; verify each (degenerate-split nodes).
            for e in &n.by_start {
                if e.period.start() >= q.end() {
                    break;
                }
                if e.period.overlaps(q) {
                    out.push(e.row_id);
                }
            }
            Self::collect_overlapping(n.left.as_deref(), q, out);
        } else if q.start() > n.center {
            for e in &n.by_end {
                if e.period.end() <= q.start() {
                    break;
                }
                if e.period.overlaps(q) {
                    out.push(e.row_id);
                }
            }
            Self::collect_overlapping(n.right.as_deref(), q, out);
        } else {
            for e in &n.by_start {
                if e.period.overlaps(q) {
                    out.push(e.row_id);
                }
            }
            Self::collect_overlapping(n.left.as_deref(), q, out);
            Self::collect_overlapping(n.right.as_deref(), q, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(s: i64, e: i64) -> Period {
        Period::new(s, e).unwrap()
    }

    fn linear_stab(items: &[(Period, u64)], t: TimePoint) -> Vec<u64> {
        let mut v: Vec<u64> = items
            .iter()
            .filter(|(pd, _)| pd.spans(t))
            .map(|(_, id)| *id)
            .collect();
        v.sort_unstable();
        v
    }

    fn linear_overlap(items: &[(Period, u64)], q: &Period) -> Vec<u64> {
        let mut v: Vec<u64> = items
            .iter()
            .filter(|(pd, _)| pd.overlaps(q))
            .map(|(_, id)| *id)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn stab_basic() {
        let items = vec![(p(0, 10), 0), (p(5, 15), 1), (p(20, 25), 2)];
        let idx = IntervalIndex::build(items.clone());
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.stab(TimePoint(7)), vec![0, 1]);
        assert_eq!(idx.stab(TimePoint(0)), vec![0]);
        assert_eq!(idx.stab(TimePoint(10)), vec![1]); // half-open end
        assert_eq!(idx.stab(TimePoint(17)), Vec::<u64>::new());
        assert_eq!(idx.stab(TimePoint(24)), vec![2]);
    }

    #[test]
    fn overlap_basic() {
        let items = vec![(p(0, 10), 0), (p(5, 15), 1), (p(20, 25), 2)];
        let idx = IntervalIndex::build(items);
        assert_eq!(idx.overlapping(&p(8, 21)), vec![0, 1, 2]);
        assert_eq!(idx.overlapping(&p(15, 20)), Vec::<u64>::new()); // meets both, shares no point
        assert_eq!(idx.overlapping(&p(-5, 1)), vec![0]);
    }

    #[test]
    fn empty_index() {
        let idx = IntervalIndex::build(Vec::new());
        assert!(idx.is_empty());
        assert!(idx.stab(TimePoint(0)).is_empty());
        assert!(idx.overlapping(&p(0, 1)).is_empty());
    }

    #[test]
    fn duplicates_and_identical_periods() {
        let items = vec![(p(0, 5), 0), (p(0, 5), 1), (p(0, 5), 2)];
        let idx = IntervalIndex::build(items);
        assert_eq!(idx.stab(TimePoint(3)), vec![0, 1, 2]);
    }

    proptest! {
        #[test]
        fn stab_matches_linear_scan(
            periods in proptest::collection::vec((-50i64..50, 1i64..30), 0..80),
            probes in proptest::collection::vec(-60i64..60, 1..20),
        ) {
            let items: Vec<(Period, u64)> = periods
                .iter()
                .enumerate()
                .map(|(i, (s, d))| (p(*s, s + d), i as u64))
                .collect();
            let idx = IntervalIndex::build(items.clone());
            for t in probes {
                prop_assert_eq!(
                    idx.stab(TimePoint(t)),
                    linear_stab(&items, TimePoint(t)),
                    "stab at {}", t
                );
            }
        }

        #[test]
        fn overlap_matches_linear_scan(
            periods in proptest::collection::vec((-50i64..50, 1i64..30), 0..80),
            queries in proptest::collection::vec((-60i64..60, 1i64..25), 1..10),
        ) {
            let items: Vec<(Period, u64)> = periods
                .iter()
                .enumerate()
                .map(|(i, (s, d))| (p(*s, s + d), i as u64))
                .collect();
            let idx = IntervalIndex::build(items.clone());
            for (s, d) in queries {
                let q = p(s, s + d);
                prop_assert_eq!(
                    idx.overlapping(&q),
                    linear_overlap(&items, &q),
                    "overlap with {}", q
                );
            }
        }
    }
}
