//! Staging buffer for live, not-yet-final arrivals.
//!
//! A live relation receives tuples that are *ordered on arrival* (within an
//! optional watermark slack) but not yet *final*: a tuple whose sort key
//! still lies at or above the relation's watermark may gain later-arriving
//! peers with equal keys, so it cannot be promoted into the heap without
//! risking an order violation. [`StagedAppend`] holds that frontier: it
//! accumulates arrivals in memory, spills sorted runs to disk past a memory
//! budget (reusing [`RunWriter`]/[`RunReader`], the same machinery as the
//! external sorter), and on request surrenders exactly the *closed prefix* —
//! every staged tuple a caller-supplied finality predicate accepts — in the
//! relation's declared sort order, ready for [`crate::Catalog::append_rows`].
//!
//! The finality predicate is a closure (typically `|t| watermark.closes(t)`)
//! so this crate stays independent of the live subsystem that owns the
//! watermark.

use crate::iostats::IoStats;
use crate::run::{RunReader, RunWriter};
use std::path::PathBuf;
use tdb_core::{PeriodRow, StreamOrder, TdbResult};

/// Process-wide sequence keeping concurrent stages' spill files distinct.
static STAGE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// A spill-backed staging buffer of arrivals awaiting finality.
pub struct StagedAppend {
    dir: PathBuf,
    tag: String,
    order: StreamOrder,
    mem_budget: usize,
    pending: Vec<PeriodRow>,
    runs: Vec<PathBuf>,
    /// Tuples resident in spilled runs right now.
    spilled: usize,
    /// Runs spilled over the stage's lifetime.
    spilled_runs: usize,
    io: IoStats,
}

impl StagedAppend {
    /// A staging buffer spilling into `dir`, holding at most `mem_budget`
    /// tuples in memory, emitting closed prefixes sorted by `order`.
    pub fn new(
        dir: impl Into<PathBuf>,
        order: StreamOrder,
        mem_budget: usize,
        io: IoStats,
    ) -> TdbResult<StagedAppend> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let tag = format!(
            "stage-{}-{}",
            std::process::id(),
            STAGE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        );
        Ok(StagedAppend {
            dir,
            tag,
            order,
            mem_budget: mem_budget.max(2),
            pending: Vec::new(),
            runs: Vec::new(),
            spilled: 0,
            spilled_runs: 0,
            io,
        })
    }

    /// The sort order closed prefixes are emitted in.
    pub fn order(&self) -> StreamOrder {
        self.order
    }

    /// Number of tuples currently staged (in memory plus spilled).
    pub fn len(&self) -> usize {
        self.pending.len() + self.spilled
    }

    /// Is nothing staged?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total sorted runs spilled over this stage's lifetime.
    pub fn runs_spilled(&self) -> usize {
        self.spilled_runs
    }

    /// The tuples staged in memory right now (excludes spilled runs).
    /// After a `take_closed` every staged tuple is memory-resident, so
    /// checkpointing code can snapshot the full open suffix from here.
    pub fn resident(&self) -> &[PeriodRow] {
        &self.pending
    }

    /// Stage one arrival. Spills a sorted run when the in-memory buffer
    /// exceeds the budget.
    pub fn push(&mut self, tuple: PeriodRow) -> TdbResult<()> {
        self.pending.push(tuple);
        if self.pending.len() >= self.mem_budget {
            self.spill()?;
        }
        Ok(())
    }

    fn spill(&mut self) -> TdbResult<()> {
        self.order.sort(&mut self.pending);
        let path = self
            .dir
            .join(format!("{}-{}.run", self.tag, self.spilled_runs));
        let mut w = RunWriter::create(&path, self.io.clone())?;
        for t in self.pending.drain(..) {
            w.push(&t)?;
        }
        let (path, n) = w.finish()?;
        self.spilled += n as usize;
        self.spilled_runs += 1;
        self.runs.push(path);
        Ok(())
    }

    /// Drain every staged tuple that `closed` accepts, returned sorted by
    /// this stage's order; tuples the predicate rejects remain staged.
    ///
    /// The caller's predicate is the finality proof (a watermark test): the
    /// returned prefix is safe to promote into the relation heap because no
    /// future arrival can sort before it.
    pub fn take_closed(
        &mut self,
        closed: impl Fn(&PeriodRow) -> bool,
    ) -> TdbResult<Vec<PeriodRow>> {
        // Fold spilled runs back in; staged volumes are bounded by the
        // watermark lag, so rereading the frontier is cheap by construction.
        let mut all = std::mem::take(&mut self.pending);
        for path in self.runs.drain(..) {
            let mut r = RunReader::<PeriodRow>::open(&path, self.io.clone())?;
            while let Some(t) = r.next_record()? {
                all.push(t);
            }
            let _ = std::fs::remove_file(&path);
        }
        self.spilled = 0;
        self.order.sort(&mut all);
        let (out, keep): (Vec<_>, Vec<_>) = all.into_iter().partition(|t| closed(t));
        self.pending = keep;
        Ok(out)
    }
}

impl Drop for StagedAppend {
    fn drop(&mut self) {
        for p in &self.runs {
            let _ = std::fs::remove_file(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_core::{Period, Row, TimePoint, Value};

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tdb-stage-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn pr(s: i64, e: i64) -> PeriodRow {
        PeriodRow::new(
            Row::new(vec![
                Value::Int(s),
                Value::Time(TimePoint(s)),
                Value::Time(TimePoint(e)),
            ]),
            Period::new(TimePoint(s), TimePoint(e)).unwrap(),
        )
    }

    #[test]
    fn closed_prefix_comes_out_sorted() {
        let mut st =
            StagedAppend::new(tmpdir("a"), StreamOrder::TS_ASC, 1024, IoStats::new()).unwrap();
        for (s, e) in [(3, 9), (1, 4), (7, 8), (5, 6)] {
            st.push(pr(s, e)).unwrap();
        }
        assert_eq!(st.len(), 4);
        let out = st.take_closed(|t| t.period.start() < TimePoint(5)).unwrap();
        let keys: Vec<i64> = out.iter().map(|t| t.period.start().ticks()).collect();
        assert_eq!(keys, vec![1, 3]);
        assert_eq!(st.len(), 2, "open tuples stay staged");
        let rest = st.take_closed(|_| true).unwrap();
        let keys: Vec<i64> = rest.iter().map(|t| t.period.start().ticks()).collect();
        assert_eq!(keys, vec![5, 7]);
        assert!(st.is_empty());
    }

    #[test]
    fn spills_past_budget_and_recovers_everything() {
        let io = IoStats::new();
        let mut st = StagedAppend::new(tmpdir("b"), StreamOrder::TS_ASC, 16, io.clone()).unwrap();
        for i in (0..500).rev() {
            st.push(pr(i, i + 3)).unwrap();
        }
        assert!(
            st.runs_spilled() > 10,
            "expected spills, got {}",
            st.runs_spilled()
        );
        assert_eq!(st.len(), 500);
        assert!(io.snapshot().pages_written > 0);
        let out = st
            .take_closed(|t| t.period.start() < TimePoint(400))
            .unwrap();
        assert_eq!(out.len(), 400);
        assert_eq!(StreamOrder::TS_ASC.first_violation(&out), None);
        assert_eq!(st.len(), 100);
    }

    #[test]
    fn te_order_stages_on_te() {
        let mut st =
            StagedAppend::new(tmpdir("c"), StreamOrder::TE_ASC, 1024, IoStats::new()).unwrap();
        st.push(pr(0, 9)).unwrap();
        st.push(pr(4, 5)).unwrap();
        let out = st.take_closed(|t| t.period.end() < TimePoint(9)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].period.end(), TimePoint(5));
    }
}
