//! On-disk heap files: an unordered sequence of slotted pages.
//!
//! A heap file is the base storage of a relation. Records append into the
//! last page, spilling onto a new page when full; scans read pages in order
//! through the shared [`IoStats`] counters.

use crate::codec::Codec;
use crate::iostats::IoStats;
use crate::page::{Page, PAGE_SIZE};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use tdb_core::{TdbError, TdbResult};

/// An on-disk heap file of slotted pages.
pub struct HeapFile {
    file: File,
    path: PathBuf,
    page_count: u64,
    /// Tail page being filled (flushed on drop or explicit `flush`).
    tail: Option<(u64, Page)>,
    io: IoStats,
}

impl std::fmt::Debug for HeapFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapFile")
            .field("path", &self.path)
            .field("pages", &self.page_count)
            .finish_non_exhaustive()
    }
}

impl HeapFile {
    /// Create a new, empty heap file at `path` (truncating any existing
    /// file).
    pub fn create(path: impl AsRef<Path>, io: IoStats) -> TdbResult<HeapFile> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(HeapFile {
            file,
            path,
            page_count: 0,
            tail: None,
            io,
        })
    }

    /// Open an existing heap file.
    pub fn open(path: impl AsRef<Path>, io: IoStats) -> TdbResult<HeapFile> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(TdbError::Corrupt(format!(
                "heap file {} has size {len}, not a multiple of {PAGE_SIZE}",
                path.display()
            )));
        }
        Ok(HeapFile {
            file,
            path,
            page_count: len / PAGE_SIZE as u64,
            tail: None,
            io,
        })
    }

    /// The file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of pages, including an unflushed tail.
    pub fn page_count(&self) -> u64 {
        self.page_count + u64::from(self.tail.is_some())
    }

    fn write_page(&mut self, page_no: u64, page: &Page) -> TdbResult<()> {
        self.file
            .seek(SeekFrom::Start(page_no * PAGE_SIZE as u64))?;
        self.file.write_all(page.as_bytes())?;
        self.io.record_write(PAGE_SIZE as u64);
        Ok(())
    }

    /// Read page `page_no` from disk (the unflushed tail is served from
    /// memory).
    pub fn read_page(&mut self, page_no: u64) -> TdbResult<Page> {
        if let Some((tail_no, tail)) = &self.tail {
            if *tail_no == page_no {
                return Ok(tail.clone());
            }
        }
        if page_no >= self.page_count {
            return Err(TdbError::Corrupt(format!(
                "page {page_no} beyond end of {} ({} pages)",
                self.path.display(),
                self.page_count
            )));
        }
        self.file
            .seek(SeekFrom::Start(page_no * PAGE_SIZE as u64))?;
        let mut buf = vec![0u8; PAGE_SIZE];
        self.file.read_exact(&mut buf)?;
        self.io.record_read(PAGE_SIZE as u64);
        Page::from_bytes(&buf)
    }

    /// Append one encoded record.
    pub fn append_record(&mut self, record: &[u8]) -> TdbResult<()> {
        if record.len() + 8 > PAGE_SIZE {
            return Err(TdbError::Corrupt(format!(
                "record of {} bytes exceeds page capacity",
                record.len()
            )));
        }
        let (tail_no, tail) = match self.tail.take() {
            Some(t) => t,
            None => (self.page_count, Page::new()),
        };
        let mut tail = tail;
        if tail.insert(record).is_none() {
            // Tail is full: flush it and start a new page.
            self.write_page(tail_no, &tail)?;
            self.page_count = self.page_count.max(tail_no + 1);
            let mut fresh = Page::new();
            fresh
                .insert(record)
                .expect("empty page must fit a sub-page record");
            self.tail = Some((self.page_count, fresh));
        } else {
            self.tail = Some((tail_no, tail));
        }
        Ok(())
    }

    /// Append one typed item.
    pub fn append<T: Codec>(&mut self, item: &T) -> TdbResult<()> {
        self.append_record(&item.to_bytes())
    }

    /// Flush the tail page to disk.
    pub fn flush(&mut self) -> TdbResult<()> {
        if let Some((tail_no, tail)) = self.tail.take() {
            self.write_page(tail_no, &tail)?;
            self.page_count = self.page_count.max(tail_no + 1);
        }
        self.file.flush()?;
        Ok(())
    }

    /// Force flushed pages to stable storage (`fdatasync`). Durable
    /// catalogs call this after `flush` so a crash cannot lose pages the
    /// manifest already points at.
    pub fn sync_data(&self) -> TdbResult<()> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Scan every record in file order, decoding to `T`.
    pub fn scan<T: Codec>(&mut self) -> TdbResult<HeapScan<'_, T>> {
        self.flush()?;
        Ok(HeapScan {
            heap: self,
            page_no: 0,
            page: None,
            slot: 0,
            _marker: std::marker::PhantomData,
        })
    }
}

/// Iterator over all records of a heap file.
pub struct HeapScan<'a, T> {
    heap: &'a mut HeapFile,
    page_no: u64,
    page: Option<Page>,
    slot: u16,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Codec> Iterator for HeapScan<'_, T> {
    type Item = TdbResult<T>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.page.is_none() {
                if self.page_no >= self.heap.page_count {
                    return None;
                }
                match self.heap.read_page(self.page_no) {
                    Ok(p) => {
                        self.page = Some(p);
                        self.slot = 0;
                    }
                    Err(e) => {
                        self.page_no = self.heap.page_count; // poison
                        return Some(Err(e));
                    }
                }
            }
            let page = self.page.as_ref().expect("just loaded");
            if self.slot < page.slot_count() {
                let rec = match page.get(self.slot) {
                    Ok(r) => r,
                    Err(e) => return Some(Err(e)),
                };
                self.slot += 1;
                return Some(T::from_bytes(rec));
            }
            self.page = None;
            self.page_no += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_core::TsTuple;

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "tdb-heap-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn append_scan_round_trip() {
        let path = tmpdir().join("a.heap");
        let io = IoStats::new();
        let mut h = HeapFile::create(&path, io.clone()).unwrap();
        let tuples: Vec<_> = (0..1000)
            .map(|i| TsTuple::new(format!("S{i}"), i, i, i + 10).unwrap())
            .collect();
        for t in &tuples {
            h.append(t).unwrap();
        }
        let back: Vec<_> = h.scan::<TsTuple>().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(back, tuples);
        assert!(io.snapshot().pages_written >= 1);
    }

    #[test]
    fn persists_across_reopen() {
        let path = tmpdir().join("b.heap");
        let io = IoStats::new();
        {
            let mut h = HeapFile::create(&path, io.clone()).unwrap();
            for i in 0..50 {
                h.append(&TsTuple::interval(i, i + 1).unwrap()).unwrap();
            }
            h.flush().unwrap();
        }
        let mut h = HeapFile::open(&path, io).unwrap();
        let n = h.scan::<TsTuple>().unwrap().count();
        assert_eq!(n, 50);
    }

    #[test]
    fn io_counters_track_pages() {
        let path = tmpdir().join("c.heap");
        let io = IoStats::new();
        let mut h = HeapFile::create(&path, io.clone()).unwrap();
        for i in 0..5000 {
            h.append(&TsTuple::new(format!("S{i}"), i, i, i + 3).unwrap())
                .unwrap();
        }
        h.flush().unwrap();
        let written = io.snapshot().pages_written;
        assert!(written > 5, "expected multiple pages, got {written}");
        let before = io.snapshot();
        let _ = h.scan::<TsTuple>().unwrap().count();
        let delta = io.snapshot().since(&before);
        assert!(delta.pages_read >= written - 1);
    }

    #[test]
    fn oversized_record_rejected() {
        let path = tmpdir().join("d.heap");
        let mut h = HeapFile::create(&path, IoStats::new()).unwrap();
        let huge = vec![0u8; PAGE_SIZE];
        assert!(h.append_record(&huge).is_err());
    }

    #[test]
    fn open_rejects_ragged_file() {
        let path = tmpdir().join("e.heap");
        std::fs::write(&path, [1, 2, 3]).unwrap();
        assert!(HeapFile::open(&path, IoStats::new()).is_err());
    }

    #[test]
    fn empty_heap_scans_empty() {
        let path = tmpdir().join("f.heap");
        let mut h = HeapFile::create(&path, IoStats::new()).unwrap();
        assert_eq!(h.scan::<TsTuple>().unwrap().count(), 0);
    }
}
