//! Property tests for `OpReport` aggregation under partitioned-parallel
//! runs — the invariant the per-operator observability metrics rely on:
//! the merged report's throughput totals equal the **sum** over the
//! partitions' reports, and its workspace peak equals the **max** (each
//! worker owns its state).

use proptest::prelude::*;
use tdb_core::{StreamOrder, TsTuple};
use tdb_stream::{
    parallel_join, parallel_semijoin, OpConfig, OpMetrics, OpReport, ParallelPattern,
    WorkspaceStats,
};

fn workload(spec: &[(i64, i64)]) -> Vec<TsTuple> {
    spec.iter()
        .map(|(s, d)| TsTuple::interval(*s, *s + *d).expect("generated interval is valid"))
        .collect()
}

fn synthetic_report(seed: ((u8, u8), (u8, u8, u8))) -> OpReport {
    let ((rl, rr), (c, e, w)) = seed;
    OpReport::new(
        OpMetrics {
            read_left: usize::from(rl),
            read_right: usize::from(rr),
            comparisons: usize::from(c),
            emitted: usize::from(e),
            passes: 1,
        },
        WorkspaceStats::of_resident(usize::from(w)),
    )
}

/// `report` must relate to `per_partition` as sum-of-counters /
/// max-of-peaks. `emitted` is checked by the callers: joins keep the
/// workers' sum, semijoins rewrite it to the post-dedup output size.
fn assert_merged(report: &OpReport, parts: &[OpReport]) {
    let m = &report.metrics;
    let sum = |f: fn(&OpReport) -> usize| parts.iter().map(f).sum::<usize>();
    assert_eq!(m.read_left, sum(|p| p.metrics.read_left));
    assert_eq!(m.read_right, sum(|p| p.metrics.read_right));
    assert_eq!(m.comparisons, sum(|p| p.metrics.comparisons));
    assert_eq!(
        report.max_workspace(),
        parts.iter().map(OpReport::max_workspace).max().unwrap_or(0)
    );
    assert_eq!(
        report.workspace.occupancy_histogram().iter().sum::<u64>(),
        parts
            .iter()
            .flat_map(|p| p.workspace.occupancy_histogram())
            .sum::<u64>()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn combine_parallel_fold_sums_totals_and_maxes_peak(
        seeds in proptest::collection::vec(
            ((0u8..=255, 0u8..=255), (0u8..=255, 0u8..=255, 0u8..=255)), 1..8),
    ) {
        let parts: Vec<OpReport> = seeds.into_iter().map(synthetic_report).collect();
        let merged = parts
            .iter()
            .fold(OpReport::default(), |acc, r| acc.combine_parallel(*r));
        assert_merged(&merged, &parts);
        let emitted: usize = parts.iter().map(|p| p.metrics.emitted).sum();
        assert_eq!(merged.metrics.emitted, emitted);
    }

    #[test]
    fn parallel_driver_report_aggregates_its_partitions(
        xs in proptest::collection::vec((0i64..200, 1i64..40), 0..60),
        ys in proptest::collection::vec((0i64..200, 1i64..40), 0..60),
        k in 1usize..6,
        join in proptest::bool::ANY,
    ) {
        let (xs, ys) = (workload(&xs), workload(&ys));
        if join {
            let run = parallel_join(ParallelPattern::Contains, xs, ys, k, OpConfig::new())
                .expect("parallel join runs");
            assert_merged(&run.report, &run.per_partition);
            // Joins are owner-deduplicated at emit time, so the workers'
            // summed counter is what actually came out.
            let emitted: usize = run.per_partition.iter().map(|p| p.metrics.emitted).sum();
            assert_eq!(run.report.metrics.emitted, emitted);
        } else {
            let run = parallel_semijoin(ParallelPattern::Contains, xs, ys, k, OpConfig::new())
                .expect("parallel semijoin runs");
            assert_merged(&run.report, &run.per_partition);
            // Fringe tuples may be kept by several workers; the merged
            // report counts the post-dedup output.
            let emitted: usize = run.per_partition.iter().map(|p| p.metrics.emitted).sum();
            assert_eq!(run.report.metrics.emitted, run.items.len());
            assert!(run.report.metrics.emitted <= emitted);
        }
    }
}

/// The executor's `PhysicalPlan::Parallel` arm consumes exactly
/// `ParallelRun::report`; pin the sorted-entry case too (no fringe, one
/// partition) so the serial and parallel reports coincide.
#[test]
fn single_partition_report_equals_its_only_worker() {
    let xs = workload(&[(0, 30), (5, 3), (12, 4)]);
    let ys = workload(&[(6, 1), (13, 2)]);
    let run = parallel_join(ParallelPattern::Contains, xs, ys, 1, OpConfig::new())
        .expect("parallel join runs");
    assert_eq!(run.per_partition.len(), 1);
    assert_merged(&run.report, &run.per_partition);
    assert_eq!(run.report.metrics.emitted, run.items.len());
    let _ = StreamOrder::TS_ASC; // order type participates via worker_orders
}
