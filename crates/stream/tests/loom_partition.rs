//! Loom model of the partitioned-parallel handoff (`parallel_join` /
//! `parallel_semijoin` in `tdb_stream::partition`): K workers each process
//! a fringe-replicated partition, dedup their outputs (owner-of-max for
//! joins, ordinal merge for semijoins), and hand results back to the
//! coordinator through shared state.
//!
//! The model re-creates that structure with loom's `thread`/`sync`
//! primitives around the *real* partitioning and dedup code
//! ([`PartitionSpec`], [`partition_with_fringe`], [`merge_tagged`]), so
//! the checked property is the one the production driver relies on: no
//! interleaving of worker completion can lose, duplicate, or reorder a
//! result past the dedup layer.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p tdb-stream --test
//! loom_partition`. Under the offline loom shim the schedule exploration
//! is approximate (see `crates/shim/loom`); with the real crate the same
//! test exhaustively checks all interleavings.
#![cfg(loom)]

use loom::sync::{Arc, Mutex};
use loom::thread;
use tdb_core::{Temporal, TsTuple};
use tdb_stream::{merge_tagged, partition_with_fringe, PartitionSpec, Tagged};

fn iv(s: i64, e: i64) -> TsTuple {
    TsTuple::interval(s, e).unwrap()
}

/// Fixed tiny instance with fringe tuples crossing the partition boundary,
/// so both workers see replicated copies and the dedup layer has real work.
fn instance() -> (Vec<TsTuple>, Vec<TsTuple>, PartitionSpec) {
    let xs = vec![iv(0, 10), iv(2, 9), iv(6, 8)];
    let ys = vec![iv(1, 3), iv(4, 7), iv(6, 7)];
    let spec = PartitionSpec::covering(&xs, &ys, 2).unwrap();
    (xs, ys, spec)
}

/// Joins: each worker emits a matching pair only when it owns the
/// intersection start `max(x.TS, y.TS)` — the production dedup rule.
#[test]
fn owner_dedup_join_handoff_is_exactly_once() {
    loom::model(|| {
        let (xs, ys, spec) = instance();
        let oracle: Vec<(TsTuple, TsTuple)> = xs
            .iter()
            .flat_map(|x| ys.iter().map(move |y| (x.clone(), y.clone())))
            .filter(|(x, y)| x.period().contains(&y.period()))
            .collect();

        let xparts = partition_with_fringe(&xs, &spec);
        let yparts = partition_with_fringe(&ys, &spec);
        let results = Arc::new(Mutex::new(Vec::new()));
        let spec = Arc::new(spec);

        let handles: Vec<_> = xparts
            .into_iter()
            .zip(yparts)
            .enumerate()
            .map(|(i, (xp, yp))| {
                let results = Arc::clone(&results);
                let spec = Arc::clone(&spec);
                thread::spawn(move || {
                    // The worker's serial sweep, reduced to its match set.
                    let owned: Vec<(TsTuple, TsTuple)> = xp
                        .iter()
                        .flat_map(|x| yp.iter().map(move |y| (x.clone(), y.clone())))
                        .filter(|(x, y)| x.period().contains(&y.period()))
                        // Owner-of-max dedup, exactly as in `parallel_join`.
                        .filter(|(x, y)| spec.owner_of(x.ts().max_of(y.ts())) == i)
                        .collect();
                    results.lock().unwrap().extend(owned);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let mut got = Arc::try_unwrap(results).unwrap().into_inner().unwrap();
        let key = |p: &(TsTuple, TsTuple)| {
            (
                p.0.ts().ticks(),
                p.0.te().ticks(),
                p.1.ts().ticks(),
                p.1.te().ticks(),
            )
        };
        got.sort_by_key(key);
        let mut want = oracle;
        want.sort_by_key(key);
        assert_eq!(got, want, "handoff lost or duplicated a pair");
    });
}

/// Semijoins: workers report witnessed ordinals per partition; the
/// coordinator's K-way ordinal merge dedups the fringe copies.
#[test]
fn ordinal_merge_semijoin_handoff_is_exactly_once() {
    loom::model(|| {
        let (xs, ys, spec) = instance();
        let oracle: Vec<TsTuple> = xs
            .iter()
            .filter(|x| ys.iter().any(|y| x.period().contains(&y.period())))
            .cloned()
            .collect();

        let tagged: Vec<Tagged<TsTuple>> = xs
            .into_iter()
            .enumerate()
            .map(|(ordinal, item)| Tagged { ordinal, item })
            .collect();
        let xparts = partition_with_fringe(&tagged, &spec);
        let yparts = partition_with_fringe(&ys, &spec);
        let k = spec.len();
        let parts = Arc::new(Mutex::new(vec![Vec::new(); k]));

        let handles: Vec<_> = xparts
            .into_iter()
            .zip(yparts)
            .enumerate()
            .map(|(i, (xp, yp))| {
                let parts = Arc::clone(&parts);
                thread::spawn(move || {
                    let kept: Vec<Tagged<TsTuple>> = xp
                        .into_iter()
                        .filter(|x| yp.iter().any(|y| x.period().contains(&y.period())))
                        .collect();
                    parts.lock().unwrap()[i] = kept;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let parts = Arc::try_unwrap(parts).unwrap().into_inner().unwrap();
        let got = merge_tagged(parts);
        assert_eq!(got, oracle, "ordinal merge lost a tuple or kept a dup");
    });
}
