//! Before join and semijoin (§4.2.4).
//!
//! `Before-join(X,Y)` pairs `x` with every *later* `y`: `x.TE < y.TS`.
//! The paper observes that "there is no sort ordering that would
//! significantly limit the amount of state information required when the
//! Before-join is implemented by a stream processor" — the output itself is
//! Θ(|X|·|Y|) in the worst case — but that "with proper sort orders,
//! nested-loop join can avoid scanning the inner relation in its entirety."
//!
//! [`BeforeJoin`] exploits exactly that: with Y sorted `ValidFrom ↑`, the
//! matches of each `x` form a *suffix* of Y located by binary search, so the
//! inner relation is scanned only over actual matches (plus `log |Y|`
//! probes). The inner relation must still be materialized — that Θ(|Y|)
//! workspace is the paper's point, and [`BeforeJoin::max_workspace`]
//! reports it.
//!
//! `Before-semijoin(X,Y)` selects `x` with *some* later `y`, which only
//! requires the **maximum `ValidFrom` of Y**: one scan of each input, two
//! scalar cells of state, any input order — the paper's "simple algorithm
//! which scans both operand relations only once and is independent of any
//! sort orderings; we omit the detail for brevity." [`BeforeSemijoin`] is
//! that detail.

use crate::metrics::OpMetrics;
use crate::required::{RequiredOrder, StreamOpKind};
use crate::stream::TupleStream;
use tdb_core::{StreamOrder, TdbResult, Temporal, TimePoint};

/// Before-join: emits every pair `(x, y)` with `x.TE < y.TS`.
///
/// Y is materialized and sorted on `ValidFrom ↑` internally (one pass over
/// the Y input); X streams through in its input order.
pub struct BeforeJoin<X: TupleStream, Y: TupleStream>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    x: X,
    /// Y sorted by `ValidFrom ↑`; matches of an `x` are a suffix.
    ys: Vec<Y::Item>,
    current_x: Option<X::Item>,
    /// Index of the next y to pair with `current_x`.
    y_idx: usize,
    metrics: OpMetrics,
}

impl<X: TupleStream, Y: TupleStream> RequiredOrder for BeforeJoin<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    const KIND: StreamOpKind = StreamOpKind::BeforeJoin;
}

impl<X: TupleStream, Y: TupleStream> BeforeJoin<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    /// Build the operator; consumes and materializes the entire Y input.
    pub fn new(x: X, mut y: Y) -> TdbResult<Self> {
        let mut ys = y.collect_vec()?;
        let read_right = ys.len();
        // If Y already arrives in ValidFrom ↑ order the sort is a no-op
        // verification; otherwise we sort here (the workspace is Θ(|Y|)
        // regardless — the paper's point about Before-join).
        StreamOrder::TS_ASC.sort(&mut ys);
        Ok(BeforeJoin {
            x,
            ys,
            current_x: None,
            y_idx: 0,
            metrics: OpMetrics {
                read_right,
                passes: 1,
                ..OpMetrics::default()
            },
        })
    }

    /// Execution metrics.
    pub fn metrics(&self) -> OpMetrics {
        self.metrics
    }

    /// The materialized-Y workspace — Θ(|Y|), demonstrating the paper's
    /// claim that no sort ordering bounds Before-join state.
    pub fn max_workspace(&self) -> usize {
        self.ys.len()
    }

    /// Total number of result pairs, computed without materializing them:
    /// one binary search per x. Consumes the operator.
    pub fn count(mut self) -> TdbResult<u64> {
        let mut total = 0u64;
        while let Some(x) = self.x.next()? {
            self.metrics.read_left += 1;
            let suffix = self.suffix_start(x.te());
            total += (self.ys.len() - suffix) as u64;
        }
        Ok(total)
    }

    /// First index of the Y suffix with `y.TS > te`.
    fn suffix_start(&mut self, te: TimePoint) -> usize {
        self.metrics.comparisons += (self.ys.len().max(2)).ilog2() as usize;
        self.ys.partition_point(|y| y.ts() <= te)
    }
}

impl<X: TupleStream, Y: TupleStream> TupleStream for BeforeJoin<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    type Item = (X::Item, Y::Item);

    fn next(&mut self) -> TdbResult<Option<Self::Item>> {
        loop {
            if let Some(x) = &self.current_x {
                if self.y_idx < self.ys.len() {
                    let pair = (x.clone(), self.ys[self.y_idx].clone());
                    self.y_idx += 1;
                    self.metrics.emitted += 1;
                    return Ok(Some(pair));
                }
                self.current_x = None;
            }
            let Some(x) = self.x.next()? else {
                return Ok(None);
            };
            self.metrics.read_left += 1;
            self.y_idx = self.suffix_start(x.te());
            self.current_x = Some(x);
        }
    }

    fn order(&self) -> Option<StreamOrder> {
        None
    }
}

/// Before-semijoin: emits each `x` with `x.TE < max(y.TS)`.
///
/// One pass over each input, O(1) state, independent of sort order.
pub struct BeforeSemijoin<X: TupleStream>
where
    X::Item: Temporal + Clone,
{
    x: X,
    /// Maximum `ValidFrom` over all of Y; `None` when Y was empty.
    max_y_ts: Option<TimePoint>,
    metrics: OpMetrics,
    input_order: Option<StreamOrder>,
}

impl<X: TupleStream> RequiredOrder for BeforeSemijoin<X>
where
    X::Item: Temporal + Clone,
{
    const KIND: StreamOpKind = StreamOpKind::BeforeSemijoin;
}

impl<X: TupleStream> BeforeSemijoin<X>
where
    X::Item: Temporal + Clone,
{
    /// Build the operator, consuming Y in a single pass to find its maximum
    /// `ValidFrom`.
    pub fn new<Y: TupleStream>(x: X, mut y: Y) -> TdbResult<Self>
    where
        Y::Item: Temporal,
    {
        let mut max_y_ts: Option<TimePoint> = None;
        let mut read_right = 0;
        while let Some(yt) = y.next()? {
            read_right += 1;
            let ts = yt.ts();
            max_y_ts = Some(match max_y_ts {
                Some(m) => m.max_of(ts),
                None => ts,
            });
        }
        let input_order = x.order();
        Ok(BeforeSemijoin {
            x,
            max_y_ts,
            metrics: OpMetrics {
                read_right,
                passes: 1,
                ..OpMetrics::default()
            },
            input_order,
        })
    }

    /// Execution metrics.
    pub fn metrics(&self) -> OpMetrics {
        self.metrics
    }

    /// State beyond the input buffer: a single time point.
    pub fn max_workspace(&self) -> usize {
        1
    }
}

impl<X: TupleStream> TupleStream for BeforeSemijoin<X>
where
    X::Item: Temporal + Clone,
{
    type Item = X::Item;

    fn next(&mut self) -> TdbResult<Option<X::Item>> {
        let Some(cutoff) = self.max_y_ts else {
            // Empty Y: no x ever qualifies; drain lazily without reading X.
            return Ok(None);
        };
        while let Some(x) = self.x.next()? {
            self.metrics.read_left += 1;
            self.metrics.comparisons += 1;
            if x.te() < cutoff {
                self.metrics.emitted += 1;
                return Ok(Some(x));
            }
        }
        Ok(None)
    }

    fn order(&self) -> Option<StreamOrder> {
        // Output is a filtered subsequence of X: order-preserving.
        self.input_order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{from_sorted_vec, from_vec};
    use proptest::prelude::*;
    use tdb_core::TsTuple;

    fn iv(s: i64, e: i64) -> TsTuple {
        TsTuple::interval(s, e).unwrap()
    }

    fn canon_pairs(mut v: Vec<(TsTuple, TsTuple)>) -> Vec<(TsTuple, TsTuple)> {
        v.sort_by_key(|(x, y)| {
            (
                x.ts().ticks(),
                x.te().ticks(),
                y.ts().ticks(),
                y.te().ticks(),
            )
        });
        v
    }

    fn join_oracle(xs: &[TsTuple], ys: &[TsTuple]) -> Vec<(TsTuple, TsTuple)> {
        let mut out = Vec::new();
        for x in xs {
            for y in ys {
                if x.period.before(&y.period) {
                    out.push((x.clone(), y.clone()));
                }
            }
        }
        canon_pairs(out)
    }

    #[test]
    fn join_basic() {
        let xs = vec![iv(0, 2), iv(5, 8)];
        let ys = vec![iv(3, 4), iv(9, 12), iv(1, 2)];
        let mut op = BeforeJoin::new(from_vec(xs.clone()), from_vec(ys.clone())).unwrap();
        let got = canon_pairs(op.collect_vec().unwrap());
        assert_eq!(got, join_oracle(&xs, &ys));
        // [0,2) before [3,4) and [9,12); [5,8) before [9,12) → 3 pairs.
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn meets_is_not_before() {
        let mut op = BeforeJoin::new(from_vec(vec![iv(0, 3)]), from_vec(vec![iv(3, 5)])).unwrap();
        assert!(op.collect_vec().unwrap().is_empty());
    }

    #[test]
    fn count_avoids_materialization() {
        let xs: Vec<_> = (0..100).map(|i| iv(i, i + 1)).collect();
        let ys: Vec<_> = (0..100).map(|i| iv(i, i + 1)).collect();
        let expected = join_oracle(&xs, &ys).len() as u64;
        let op = BeforeJoin::new(from_vec(xs), from_vec(ys)).unwrap();
        assert_eq!(op.count().unwrap(), expected);
    }

    #[test]
    fn join_workspace_is_theta_y() {
        let ys: Vec<_> = (0..250).map(|i| iv(i, i + 1)).collect();
        let op = BeforeJoin::new(from_vec(vec![iv(0, 1)]), from_vec(ys)).unwrap();
        assert_eq!(op.max_workspace(), 250);
    }

    #[test]
    fn semijoin_is_order_independent() {
        let xs = vec![iv(5, 8), iv(0, 2), iv(30, 40)];
        let ys = vec![iv(9, 12), iv(3, 4)];
        // max y.TS = 9 → x qualifies iff x.TE < 9 → [5,8) and [0,2).
        let mut op = BeforeSemijoin::new(from_vec(xs), from_vec(ys)).unwrap();
        let got = op.collect_vec().unwrap();
        assert_eq!(got, vec![iv(5, 8), iv(0, 2)]);
        assert_eq!(op.metrics().read_right, 2);
        assert_eq!(op.max_workspace(), 1);
    }

    #[test]
    fn semijoin_empty_y_short_circuits() {
        let mut op =
            BeforeSemijoin::new(from_vec(vec![iv(0, 1)]), from_vec(Vec::<TsTuple>::new())).unwrap();
        assert!(op.next().unwrap().is_none());
        assert_eq!(op.metrics().read_left, 0, "X never read when Y empty");
    }

    #[test]
    fn semijoin_preserves_input_order_declaration() {
        let x = from_sorted_vec(vec![iv(0, 2), iv(1, 3)], StreamOrder::TS_ASC).unwrap();
        let op = BeforeSemijoin::new(x, from_vec(vec![iv(10, 11)])).unwrap();
        assert_eq!(op.order(), Some(StreamOrder::TS_ASC));
    }

    fn arb_intervals(n: usize) -> impl Strategy<Value = Vec<TsTuple>> {
        proptest::collection::vec((-60i64..60, 1i64..40), 0..n)
            .prop_map(|v| v.into_iter().map(|(s, d)| iv(s, s + d)).collect())
    }

    proptest! {
        #[test]
        fn join_matches_oracle(xs in arb_intervals(30), ys in arb_intervals(30)) {
            let mut op = BeforeJoin::new(from_vec(xs.clone()), from_vec(ys.clone())).unwrap();
            let got = canon_pairs(op.collect_vec().unwrap());
            prop_assert_eq!(got, join_oracle(&xs, &ys));
        }

        #[test]
        fn semijoin_matches_oracle(xs in arb_intervals(30), ys in arb_intervals(30)) {
            let expected: Vec<_> = xs
                .iter()
                .filter(|x| ys.iter().any(|y| x.period.before(&y.period)))
                .cloned()
                .collect();
            let mut op = BeforeSemijoin::new(from_vec(xs), from_vec(ys)).unwrap();
            prop_assert_eq!(op.collect_vec().unwrap(), expected);
        }

        #[test]
        fn count_equals_materialized_length(xs in arb_intervals(25), ys in arb_intervals(25)) {
            let mut op = BeforeJoin::new(from_vec(xs.clone()), from_vec(ys.clone())).unwrap();
            let n = op.collect_vec().unwrap().len() as u64;
            let op2 = BeforeJoin::new(from_vec(xs), from_vec(ys)).unwrap();
            prop_assert_eq!(op2.count().unwrap(), n);
        }
    }
}
