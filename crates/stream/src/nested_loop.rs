//! The conventional baseline: nested-loop theta-join.
//!
//! Paper §3: "Traditionally, the best strategy for processing less-than
//! joins appears to be the conventional nested-loop join method." This
//! operator is that baseline — the comparator every stream algorithm is
//! benchmarked against. The inner relation is materialized once and
//! re-scanned per outer tuple; [`OpMetrics::passes`] counts those rescans.

use crate::metrics::OpMetrics;
use crate::stream::TupleStream;
use tdb_core::{StreamOrder, TdbResult, Temporal};

/// Tuple-at-a-time nested-loop join with an arbitrary predicate.
pub struct NestedLoopJoin<X: TupleStream, Y: TupleStream, P>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
    P: Fn(&X::Item, &Y::Item) -> bool,
{
    x: X,
    inner: Vec<Y::Item>,
    predicate: P,
    current_x: Option<X::Item>,
    inner_idx: usize,
    metrics: OpMetrics,
}

impl<X: TupleStream, Y: TupleStream, P> NestedLoopJoin<X, Y, P>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
    P: Fn(&X::Item, &Y::Item) -> bool,
{
    /// Build the operator, materializing the inner (Y) input.
    pub fn new(x: X, mut y: Y, predicate: P) -> TdbResult<Self> {
        let inner = y.collect_vec()?;
        let read_right = inner.len();
        Ok(NestedLoopJoin {
            x,
            inner,
            predicate,
            current_x: None,
            inner_idx: 0,
            metrics: OpMetrics {
                read_right,
                ..OpMetrics::default()
            },
        })
    }

    /// Execution metrics; `passes` counts inner-relation rescans.
    pub fn metrics(&self) -> OpMetrics {
        self.metrics
    }

    /// The materialized inner relation is the workspace.
    pub fn max_workspace(&self) -> usize {
        self.inner.len()
    }
}

impl<X: TupleStream, Y: TupleStream, P> TupleStream for NestedLoopJoin<X, Y, P>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
    P: Fn(&X::Item, &Y::Item) -> bool,
{
    type Item = (X::Item, Y::Item);

    fn next(&mut self) -> TdbResult<Option<Self::Item>> {
        loop {
            if let Some(x) = &self.current_x {
                while self.inner_idx < self.inner.len() {
                    let y = &self.inner[self.inner_idx];
                    self.inner_idx += 1;
                    self.metrics.comparisons += 1;
                    if (self.predicate)(x, y) {
                        self.metrics.emitted += 1;
                        return Ok(Some((x.clone(), y.clone())));
                    }
                }
                self.current_x = None;
            }
            let Some(x) = self.x.next()? else {
                return Ok(None);
            };
            self.metrics.read_left += 1;
            self.metrics.passes += 1; // one fresh scan of the inner relation
            self.inner_idx = 0;
            self.current_x = Some(x);
        }
    }

    fn order(&self) -> Option<StreamOrder> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::from_vec;
    use tdb_core::TsTuple;

    fn iv(s: i64, e: i64) -> TsTuple {
        TsTuple::interval(s, e).unwrap()
    }

    #[test]
    fn joins_with_arbitrary_predicate() {
        let xs = vec![iv(0, 10), iv(5, 6)];
        let ys = vec![iv(1, 2), iv(7, 8)];
        let mut op = NestedLoopJoin::new(from_vec(xs), from_vec(ys), |x, y| {
            x.period.contains(&y.period)
        })
        .unwrap();
        let out = op.collect_vec().unwrap();
        assert_eq!(out.len(), 2); // [0,10) contains both
        let m = op.metrics();
        assert_eq!(m.comparisons, 4);
        assert_eq!(m.passes, 2);
        assert_eq!(op.max_workspace(), 2);
    }

    #[test]
    fn empty_inputs() {
        let mut op = NestedLoopJoin::new(
            from_vec(Vec::<TsTuple>::new()),
            from_vec(vec![iv(0, 1)]),
            |_, _| true,
        )
        .unwrap();
        assert!(op.collect_vec().unwrap().is_empty());
        let mut op = NestedLoopJoin::new(
            from_vec(vec![iv(0, 1)]),
            from_vec(Vec::<TsTuple>::new()),
            |_, _| true,
        )
        .unwrap();
        assert!(op.collect_vec().unwrap().is_empty());
    }

    #[test]
    fn cartesian_product_under_true_predicate() {
        let xs: Vec<_> = (0..7).map(|i| iv(i, i + 1)).collect();
        let ys: Vec<_> = (0..5).map(|i| iv(i, i + 1)).collect();
        let mut op = NestedLoopJoin::new(from_vec(xs), from_vec(ys), |_, _| true).unwrap();
        assert_eq!(op.collect_vec().unwrap().len(), 35);
        assert_eq!(op.metrics().comparisons, 35);
    }
}
