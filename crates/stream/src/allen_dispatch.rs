//! Algorithm selection for a temporal join.
//!
//! Given an Allen operator and the orderings the inputs arrive in,
//! [`plan_allen_join`] picks the stream algorithm of §4.2 that evaluates it
//! — or reports what would have to change (re-sort, fall back to
//! nested-loop/buffered). This is the kernel of the physical planner in
//! `tdb-algebra`; it is kept here, next to the operators, so the mapping
//! from Table 1/Table 2 rows to implementations is in one place and unit
//! tested.

use tdb_core::{AllenRelation, StreamOrder};

/// The algorithm chosen for a temporal join, with the orderings it needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllenJoinPlan {
    /// [`crate::ContainJoinTsTs`] — Table 1 state (a). `swap` means the
    /// operator runs with the inputs exchanged (the relation was `During`,
    /// i.e. Y contains X).
    ContainTsTs {
        /// Run with inputs exchanged.
        swap: bool,
    },
    /// [`crate::ContainJoinTsTe`] — Table 1 state (b).
    ContainTsTe {
        /// Run with inputs exchanged.
        swap: bool,
    },
    /// [`crate::OverlapJoin`] in strict mode — Table 2 state (a). `swap`
    /// for `OverlappedBy`.
    Overlap {
        /// Run with inputs exchanged.
        swap: bool,
    },
    /// [`crate::BeforeJoin`] (Y materialized; suffix emission). `swap` for
    /// `After`.
    Before {
        /// Run with inputs exchanged.
        swap: bool,
    },
    /// [`crate::EventMergeJoin`] for the equality-bearing operators.
    EventMerge {
        /// The relation (equal/meets/starts/finishes or an inverse).
        relation: AllenRelation,
    },
    /// Inputs are not usefully ordered: either re-sort to `resort_to` and
    /// use `then`, or run the no-GC [`crate::BufferedJoin`].
    Resort {
        /// Ordering to impose on (X, Y).
        resort_to: (StreamOrder, StreamOrder),
        /// The plan that becomes available after re-sorting.
        then: Box<AllenJoinPlan>,
    },
}

impl AllenJoinPlan {
    /// Is this plan executable without re-sorting?
    pub fn is_direct(&self) -> bool {
        !matches!(self, AllenJoinPlan::Resort { .. })
    }
}

/// Choose an algorithm for `x <relation> y` given the arrival orders.
///
/// `x_order`/`y_order` are the orders the inputs already satisfy (`None` =
/// unordered). The function prefers a direct single-pass plan; otherwise it
/// recommends the cheapest re-sort.
pub fn plan_allen_join(
    relation: AllenRelation,
    x_order: Option<StreamOrder>,
    y_order: Option<StreamOrder>,
) -> AllenJoinPlan {
    let has =
        |o: &Option<StreamOrder>, need: StreamOrder| o.map(|x| x.satisfies(&need)).unwrap_or(false);
    let ts = StreamOrder::TS_ASC;
    let te = StreamOrder::TE_ASC;

    match relation {
        AllenRelation::Contains | AllenRelation::During => {
            // Normalize to "left contains right".
            let swap = relation == AllenRelation::During;
            let (c_order, e_order) = if swap {
                (&y_order, &x_order)
            } else {
                (&x_order, &y_order)
            };
            if has(c_order, ts) && has(e_order, te) {
                AllenJoinPlan::ContainTsTe { swap }
            } else if has(c_order, ts) && has(e_order, ts) {
                AllenJoinPlan::ContainTsTs { swap }
            } else if has(c_order, ts) {
                // Container side already usable: sort the containee on TE ↑
                // for the smaller state (b).
                AllenJoinPlan::Resort {
                    resort_to: if swap { (te, ts) } else { (ts, te) },
                    then: Box::new(AllenJoinPlan::ContainTsTe { swap }),
                }
            } else {
                AllenJoinPlan::Resort {
                    resort_to: (ts, ts),
                    then: Box::new(AllenJoinPlan::ContainTsTs { swap }),
                }
            }
        }
        AllenRelation::Overlaps | AllenRelation::OverlappedBy => {
            let swap = relation == AllenRelation::OverlappedBy;
            if has(&x_order, ts) && has(&y_order, ts) {
                AllenJoinPlan::Overlap { swap }
            } else {
                AllenJoinPlan::Resort {
                    resort_to: (ts, ts),
                    then: Box::new(AllenJoinPlan::Overlap { swap }),
                }
            }
        }
        AllenRelation::Before => AllenJoinPlan::Before { swap: false },
        AllenRelation::After => AllenJoinPlan::Before { swap: true },
        rel => AllenJoinPlan::EventMerge { relation: rel },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_prefers_ts_te_configuration() {
        let plan = plan_allen_join(
            AllenRelation::Contains,
            Some(StreamOrder::TS_ASC),
            Some(StreamOrder::TE_ASC),
        );
        assert_eq!(plan, AllenJoinPlan::ContainTsTe { swap: false });

        let plan = plan_allen_join(
            AllenRelation::Contains,
            Some(StreamOrder::TS_ASC),
            Some(StreamOrder::TS_ASC),
        );
        assert_eq!(plan, AllenJoinPlan::ContainTsTs { swap: false });
    }

    #[test]
    fn during_swaps_roles() {
        // x during y ⇔ y contains x: containers are on the right.
        let plan = plan_allen_join(
            AllenRelation::During,
            Some(StreamOrder::TE_ASC),
            Some(StreamOrder::TS_ASC),
        );
        assert_eq!(plan, AllenJoinPlan::ContainTsTe { swap: true });
    }

    #[test]
    fn unordered_inputs_get_resort_recommendations() {
        let plan = plan_allen_join(AllenRelation::Contains, None, None);
        let AllenJoinPlan::Resort { resort_to, then } = plan else {
            panic!("expected resort");
        };
        assert_eq!(resort_to, (StreamOrder::TS_ASC, StreamOrder::TS_ASC));
        assert_eq!(*then, AllenJoinPlan::ContainTsTs { swap: false });

        // Container usable, containee not: prefer the state-(b) config.
        let plan = plan_allen_join(AllenRelation::Contains, Some(StreamOrder::TS_ASC), None);
        let AllenJoinPlan::Resort { resort_to, then } = plan else {
            panic!("expected resort");
        };
        assert_eq!(resort_to, (StreamOrder::TS_ASC, StreamOrder::TE_ASC));
        assert_eq!(*then, AllenJoinPlan::ContainTsTe { swap: false });
    }

    #[test]
    fn overlaps_requires_both_ts_asc() {
        let plan = plan_allen_join(
            AllenRelation::Overlaps,
            Some(StreamOrder::TS_ASC),
            Some(StreamOrder::TS_ASC),
        );
        assert_eq!(plan, AllenJoinPlan::Overlap { swap: false });
        let plan = plan_allen_join(
            AllenRelation::OverlappedBy,
            Some(StreamOrder::TE_ASC),
            Some(StreamOrder::TS_ASC),
        );
        assert!(!plan.is_direct());
    }

    #[test]
    fn before_after_and_equalities() {
        assert_eq!(
            plan_allen_join(AllenRelation::Before, None, None),
            AllenJoinPlan::Before { swap: false }
        );
        assert_eq!(
            plan_allen_join(AllenRelation::After, None, None),
            AllenJoinPlan::Before { swap: true }
        );
        assert_eq!(
            plan_allen_join(AllenRelation::Meets, None, None),
            AllenJoinPlan::EventMerge {
                relation: AllenRelation::Meets
            }
        );
    }

    #[test]
    fn secondary_orders_still_satisfy() {
        let plan = plan_allen_join(
            AllenRelation::Contains,
            Some(StreamOrder::TS_ASC_TE_ASC),
            Some(StreamOrder::TS_ASC_TE_ASC),
        );
        assert_eq!(plan, AllenJoinPlan::ContainTsTs { swap: false });
    }
}
