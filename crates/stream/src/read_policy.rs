//! Read policies for two-input sweep operators.
//!
//! When both input buffers hold a tuple, a two-input stream processor must
//! decide *which stream to advance*. Correctness does not depend on the
//! choice (the garbage-collection rules are safe under any interleaving —
//! see the proof sketch in [`crate::contain_join`]), but workspace size
//! does. Paper §4.2.1 proposes a policy guided by the arrival rates λ:
//! "a tuple from an input stream which allows more state tuples to be
//! discarded will be read. To estimate the number of disposable state
//! tuples, 1/λ_x and 1/λ_y are used."

use tdb_core::{Temporal, TimePoint};

/// Which input a sweep operator should advance next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advance {
    /// Advance the left (X) input.
    Left,
    /// Advance the right (Y) input.
    Right,
}

/// Strategy for choosing which input to advance when both buffers are full.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReadPolicy {
    /// Strictly alternate between inputs — the naive baseline.
    Alternate,
    /// Advance the stream whose buffered tuple has the smaller sweep key —
    /// a merge-like global sweep. This minimizes read-ahead and, with both
    /// inputs sorted on the sweep key, keeps the off-sweep state empty.
    MinKey,
    /// The paper's policy: advance the stream expected to enable more
    /// garbage collection, estimated from the arrival rates.
    ///
    /// Advancing X moves the X sweep key forward by `1/λ_x` in expectation,
    /// allowing Y-state tuples behind the new key to be discarded (expected
    /// count `λ_y/λ_x`); symmetrically for advancing Y. The policy compares
    /// the two expectations, i.e. it advances the stream whose *opposite*
    /// state stands to shrink most.
    LambdaGuided {
        /// Arrival rate of the X stream.
        lambda_x: f64,
        /// Arrival rate of the Y stream.
        lambda_y: f64,
    },
}

/// Mutable state a policy needs across decisions.
#[derive(Debug, Clone, Default)]
pub struct PolicyState {
    last: Option<Advance>,
}

impl ReadPolicy {
    /// Decide which input to advance.
    ///
    /// * `x_key`, `y_key` — sweep keys of the buffered tuples;
    /// * `x_state`, `y_state` — current resident counts of the X and Y
    ///   state sets (used by the λ-guided estimate).
    #[allow(clippy::too_many_arguments)]
    pub fn decide<T: Temporal, U: Temporal>(
        &self,
        state: &mut PolicyState,
        x_buf: &T,
        y_buf: &U,
        x_key: TimePoint,
        y_key: TimePoint,
        x_state: usize,
        y_state: usize,
    ) -> Advance {
        let _ = (x_buf, y_buf);
        let choice = match *self {
            ReadPolicy::Alternate => match state.last {
                Some(Advance::Left) => Advance::Right,
                _ => Advance::Left,
            },
            ReadPolicy::MinKey => {
                if x_key <= y_key {
                    Advance::Left
                } else {
                    Advance::Right
                }
            }
            ReadPolicy::LambdaGuided { lambda_x, lambda_y } => {
                // Expected discards if we advance X: the X key moves ≈1/λ_x,
                // freeing Y-state tuples at density λ_y — but no more than
                // are resident. Symmetrically for advancing Y.
                let gain_advance_x = (lambda_y / lambda_x).min(y_state as f64);
                let gain_advance_y = (lambda_x / lambda_y).min(x_state as f64);
                if gain_advance_x >= gain_advance_y {
                    Advance::Left
                } else {
                    Advance::Right
                }
            }
        };
        state.last = Some(choice);
        choice
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_core::TsTuple;

    fn iv(s: i64, e: i64) -> TsTuple {
        TsTuple::interval(s, e).unwrap()
    }

    #[test]
    fn alternate_flips() {
        let p = ReadPolicy::Alternate;
        let mut st = PolicyState::default();
        let (a, b) = (iv(0, 1), iv(0, 1));
        let first = p.decide(&mut st, &a, &b, TimePoint(0), TimePoint(0), 0, 0);
        let second = p.decide(&mut st, &a, &b, TimePoint(0), TimePoint(0), 0, 0);
        assert_ne!(first, second);
    }

    #[test]
    fn min_key_follows_sweep() {
        let p = ReadPolicy::MinKey;
        let mut st = PolicyState::default();
        let (a, b) = (iv(0, 1), iv(5, 6));
        assert_eq!(
            p.decide(&mut st, &a, &b, TimePoint(0), TimePoint(5), 0, 0),
            Advance::Left
        );
        assert_eq!(
            p.decide(&mut st, &b, &a, TimePoint(5), TimePoint(0), 0, 0),
            Advance::Right
        );
    }

    #[test]
    fn lambda_guided_prefers_larger_expected_discards() {
        // X arrives 10× as fast as Y: advancing Y frees many X-state
        // tuples (λ_x/λ_y = 10), advancing X frees few (0.1).
        let p = ReadPolicy::LambdaGuided {
            lambda_x: 1.0,
            lambda_y: 0.1,
        };
        let mut st = PolicyState::default();
        let (a, b) = (iv(0, 1), iv(0, 1));
        assert_eq!(
            p.decide(&mut st, &a, &b, TimePoint(0), TimePoint(0), 50, 50),
            Advance::Right
        );
        // With no X state resident, the gain caps at zero: advance X.
        assert_eq!(
            p.decide(&mut st, &a, &b, TimePoint(0), TimePoint(0), 0, 50),
            Advance::Left
        );
    }
}
