//! The instrumented local workspace.
//!
//! Paper §4.1: "the implementation of a function as a stream processor may
//! require keeping some local state information ... the state represents a
//! summary of the history of a computation". For the join and semijoin
//! operators of §4.2 "the only form of state information we need consider is
//! subsets of the tuples previously read".
//!
//! [`Workspace`] is that subset, instrumented: it tracks the high-water mark
//! of resident tuples, the number of garbage-collection discards, and the
//! time-averaged occupancy. The experiments validating Tables 1–3 read these
//! numbers off the operators after a run.

use std::fmt;

/// Inclusive upper bounds of the fixed occupancy-histogram buckets every
/// workspace records into; residencies above the last bound land in the
/// implicit `+Inf` overflow bucket. Workspace size is *the* performance
/// driver of the paper's stream operators, so the distribution — not just
/// the peak — is worth keeping, and a fixed small array keeps the
/// recording cost to one array increment per insertion.
pub const OCCUPANCY_BOUNDS: [usize; 8] = [1, 2, 4, 8, 16, 64, 256, 1024];

/// Number of occupancy-histogram cells: one per bound plus overflow.
pub const OCCUPANCY_CELLS: usize = OCCUPANCY_BOUNDS.len() + 1;

/// The histogram cell a residency of `n` tuples falls into.
fn occupancy_bucket(n: usize) -> usize {
    OCCUPANCY_BOUNDS
        .iter()
        .position(|b| n <= *b)
        .unwrap_or(OCCUPANCY_BOUNDS.len())
}

/// Statistics of a workspace over an operator's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkspaceStats {
    /// Maximum number of state tuples ever resident.
    pub max_resident: usize,
    /// Tuples currently resident.
    pub resident: usize,
    /// Total tuples ever inserted.
    pub inserted: usize,
    /// Tuples discarded by garbage collection.
    pub discarded: usize,
    /// Sum of residency sampled at every insertion (for mean occupancy).
    occupancy_sum: u64,
    /// Number of samples contributing to `occupancy_sum`.
    samples: u64,
    /// Residency histogram, sampled at every insertion: one count per
    /// [`OCCUPANCY_BOUNDS`] bucket plus the `+Inf` overflow cell.
    occupancy: [u64; OCCUPANCY_CELLS],
}

impl WorkspaceStats {
    /// Mean number of resident tuples, sampled at insertions.
    pub fn mean_resident(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.samples as f64
        }
    }

    /// Synthetic stats for an operator whose workspace is a fixed
    /// materialized structure of `n` tuples (e.g. the inner relation of a
    /// nested-loop join) rather than an instrumented [`Workspace`].
    pub fn of_resident(n: usize) -> WorkspaceStats {
        let mut occupancy = [0u64; OCCUPANCY_CELLS];
        if n != 0 {
            occupancy[occupancy_bucket(n)] = 1;
        }
        WorkspaceStats {
            max_resident: n,
            resident: n,
            inserted: n,
            discarded: 0,
            occupancy_sum: n as u64,
            samples: u64::from(n != 0),
            occupancy,
        }
    }

    /// The occupancy histogram: insertion-sampled residency counts, one
    /// per [`OCCUPANCY_BOUNDS`] bucket plus the `+Inf` overflow cell.
    pub fn occupancy_histogram(&self) -> [u64; OCCUPANCY_CELLS] {
        self.occupancy
    }

    /// Account for one insertion that left `resident` tuples in the state.
    /// Shared by every workspace layout ([`Workspace`],
    /// [`crate::gapless::GaplessWorkspace`]) so the observed numbers are
    /// layout-independent by construction.
    pub(crate) fn record_insert(&mut self, resident: usize) {
        self.inserted += 1;
        self.resident = resident;
        self.max_resident = self.max_resident.max(resident);
        self.occupancy_sum += resident as u64;
        self.samples += 1;
        self.occupancy[occupancy_bucket(resident)] += 1;
    }

    /// Account for a garbage-collection pass that removed `removed` tuples,
    /// leaving `resident`.
    pub(crate) fn record_discard(&mut self, removed: usize, resident: usize) {
        self.discarded += removed;
        self.resident = resident;
    }

    /// Account for an extraction (match-removal, not GC) leaving `resident`.
    pub(crate) fn record_extract(&mut self, resident: usize) {
        self.resident = resident;
    }

    /// Element-wise sum of two occupancy histograms.
    fn merge_occupancy(self, other: WorkspaceStats) -> [u64; OCCUPANCY_CELLS] {
        let mut out = self.occupancy;
        for (cell, n) in out.iter_mut().zip(other.occupancy) {
            *cell += n;
        }
        out
    }

    /// Combine the stats of two state sets held *simultaneously* by one
    /// operator (e.g. the X and Y states of a two-sided sweep): peak
    /// residency is the **sum** of the individual peaks, matching the
    /// `max_workspace` accounting the operators already expose.
    pub fn combine_stacked(self, other: WorkspaceStats) -> WorkspaceStats {
        WorkspaceStats {
            max_resident: self.max_resident + other.max_resident,
            resident: self.resident + other.resident,
            inserted: self.inserted + other.inserted,
            discarded: self.discarded + other.discarded,
            occupancy_sum: self.occupancy_sum + other.occupancy_sum,
            samples: self.samples + other.samples,
            occupancy: self.merge_occupancy(other),
        }
    }

    /// Combine the stats of the *same* operator run over disjoint
    /// partitions in parallel: each worker holds its own workspace, so the
    /// aggregate peak is the **max** over workers while throughput counters
    /// (inserted, discarded, occupancy samples) sum.
    pub fn combine_parallel(self, other: WorkspaceStats) -> WorkspaceStats {
        WorkspaceStats {
            max_resident: self.max_resident.max(other.max_resident),
            resident: self.resident + other.resident,
            inserted: self.inserted + other.inserted,
            discarded: self.discarded + other.discarded,
            occupancy_sum: self.occupancy_sum + other.occupancy_sum,
            samples: self.samples + other.samples,
            occupancy: self.merge_occupancy(other),
        }
    }
}

impl fmt::Display for WorkspaceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "max {} resident (mean {:.1}), {} inserted, {} gc-discarded",
            self.max_resident,
            self.mean_resident(),
            self.inserted,
            self.discarded
        )
    }
}

/// An instrumented bag of state tuples.
///
/// Stored as a vector: the paper's garbage-collection criteria are sweep
/// conditions evaluated against every resident tuple, which `retain`
/// expresses directly. State sizes are small by design (that is the point of
/// the paper), so linear scans are appropriate.
#[derive(Debug, Clone)]
pub struct Workspace<T> {
    items: Vec<T>,
    stats: WorkspaceStats,
}

impl<T> Default for Workspace<T> {
    fn default() -> Self {
        Workspace::new()
    }
}

impl<T> Workspace<T> {
    /// An empty workspace.
    pub fn new() -> Workspace<T> {
        Workspace {
            items: Vec::new(),
            stats: WorkspaceStats::default(),
        }
    }

    /// Insert a state tuple.
    pub fn insert(&mut self, item: T) {
        self.items.push(item);
        self.stats.record_insert(self.items.len());
    }

    /// Garbage-collect: keep only tuples satisfying `keep`.
    pub fn gc(&mut self, keep: impl FnMut(&T) -> bool) {
        let before = self.items.len();
        self.items.retain(keep);
        self.stats
            .record_discard(before - self.items.len(), self.items.len());
    }

    /// Remove and return tuples matching `take` (used by semijoins that
    /// emit a state tuple on its first match).
    pub fn extract(&mut self, mut take: impl FnMut(&T) -> bool) -> Vec<T> {
        let mut taken = Vec::new();
        let mut kept = Vec::with_capacity(self.items.len());
        for item in self.items.drain(..) {
            if take(&item) {
                taken.push(item);
            } else {
                kept.push(item);
            }
        }
        self.items = kept;
        // Extractions are matches, not GC discards.
        self.stats.record_extract(self.items.len());
        taken
    }

    /// Iterate over resident tuples.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }

    /// Number of resident tuples.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the workspace empty?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> WorkspaceStats {
        self.stats
    }
}

impl<'a, T> IntoIterator for &'a Workspace<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_high_water_mark() {
        let mut w = Workspace::new();
        for i in 0..5 {
            w.insert(i);
        }
        w.gc(|&i| i >= 3);
        assert_eq!(w.len(), 2);
        for i in 5..7 {
            w.insert(i);
        }
        let s = w.stats();
        assert_eq!(s.max_resident, 5);
        assert_eq!(s.inserted, 7);
        assert_eq!(s.discarded, 3);
        assert_eq!(s.resident, 4);
    }

    #[test]
    fn mean_occupancy() {
        let mut w = Workspace::new();
        w.insert(1); // occupancy 1
        w.insert(2); // occupancy 2
        w.insert(3); // occupancy 3
        assert!((w.stats().mean_resident() - 2.0).abs() < 1e-12);
        let empty: Workspace<i32> = Workspace::new();
        assert_eq!(empty.stats().mean_resident(), 0.0);
    }

    #[test]
    fn extract_removes_matches_without_counting_gc() {
        let mut w = Workspace::new();
        for i in 0..6 {
            w.insert(i);
        }
        let taken = w.extract(|&i| i % 2 == 0);
        assert_eq!(taken, vec![0, 2, 4]);
        assert_eq!(w.len(), 3);
        assert_eq!(w.stats().discarded, 0);
        assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn combine_stacked_sums_peaks() {
        let mut a = Workspace::new();
        let mut b = Workspace::new();
        for i in 0..4 {
            a.insert(i);
        }
        for i in 0..3 {
            b.insert(i);
        }
        let s = a.stats().combine_stacked(b.stats());
        assert_eq!(s.max_resident, 7);
        assert_eq!(s.inserted, 7);
        assert_eq!(s.resident, 7);
    }

    #[test]
    fn combine_parallel_takes_peak_max() {
        let mut a = Workspace::new();
        let mut b = Workspace::new();
        for i in 0..4 {
            a.insert(i);
        }
        for i in 0..3 {
            b.insert(i);
        }
        let s = a.stats().combine_parallel(b.stats());
        assert_eq!(s.max_resident, 4);
        assert_eq!(s.inserted, 7);
    }

    #[test]
    fn of_resident_is_a_fixed_workspace() {
        let s = WorkspaceStats::of_resident(5);
        assert_eq!(s.max_resident, 5);
        assert_eq!(s.resident, 5);
        assert_eq!(s.mean_resident(), 5.0);
        assert_eq!(WorkspaceStats::of_resident(0).mean_resident(), 0.0);
    }

    #[test]
    fn occupancy_histogram_buckets_by_residency() {
        let mut w = Workspace::new();
        for i in 0..5 {
            w.insert(i); // residencies 1, 2, 3, 4, 5
        }
        let h = w.stats().occupancy_histogram();
        // Buckets ≤1, ≤2, ≤4, ≤8: residency 1 → cell 0, 2 → cell 1,
        // 3 and 4 → cell 2, 5 → cell 3.
        assert_eq!(&h[..4], &[1, 1, 2, 1]);
        assert_eq!(h.iter().sum::<u64>(), 5);
        // Combining parallel partitions sums the histograms.
        let both = w.stats().combine_parallel(w.stats());
        assert_eq!(both.occupancy_histogram().iter().sum::<u64>(), 10);
        // of_resident records its single synthetic sample.
        let fixed = WorkspaceStats::of_resident(3000);
        assert_eq!(fixed.occupancy_histogram()[OCCUPANCY_BOUNDS.len()], 1);
        assert_eq!(
            WorkspaceStats::of_resident(0).occupancy_histogram(),
            [0; OCCUPANCY_CELLS]
        );
    }

    #[test]
    fn display() {
        let mut w = Workspace::new();
        w.insert(1);
        assert!(w.stats().to_string().contains("max 1 resident"));
    }
}
