//! The fallback stream join for inappropriate sort orderings.
//!
//! Table 1 marks several ordering combinations "-": "the sort ordering is
//! not appropriate for stream processing — no garbage-collection criteria."
//! A join over such inputs can still run in one pass, but *nothing may ever
//! be discarded*: every tuple read must be retained, so the workspace grows
//! to Θ(|X| + |Y|). [`BufferedJoin`] is that operator — correct under any
//! input orders and any join predicate, and instrumented so experiments can
//! exhibit the degenerate state growth next to the bounded-state operators.

use crate::metrics::OpMetrics;
use crate::stream::TupleStream;
use crate::workspace::{Workspace, WorkspaceStats};
use std::collections::VecDeque;
use tdb_core::{StreamOrder, TdbResult, Temporal};

/// Single-pass theta-join with no garbage collection.
pub struct BufferedJoin<X: TupleStream, Y: TupleStream, P>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
    P: Fn(&X::Item, &Y::Item) -> bool,
{
    x: X,
    y: Y,
    predicate: P,
    state_x: Workspace<X::Item>,
    state_y: Workspace<Y::Item>,
    pending: VecDeque<(X::Item, Y::Item)>,
    x_done: bool,
    y_done: bool,
    flip: bool,
    metrics: OpMetrics,
}

impl<X: TupleStream, Y: TupleStream, P> BufferedJoin<X, Y, P>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
    P: Fn(&X::Item, &Y::Item) -> bool,
{
    /// Build the operator with an arbitrary join predicate.
    pub fn new(x: X, y: Y, predicate: P) -> Self {
        BufferedJoin {
            x,
            y,
            predicate,
            state_x: Workspace::new(),
            state_y: Workspace::new(),
            pending: VecDeque::new(),
            x_done: false,
            y_done: false,
            flip: false,
            metrics: OpMetrics {
                passes: 1,
                ..OpMetrics::default()
            },
        }
    }

    /// Execution metrics.
    pub fn metrics(&self) -> OpMetrics {
        self.metrics
    }

    /// Workspace statistics — grows to Θ(|X| + |Y|) by construction.
    pub fn workspace(&self) -> (WorkspaceStats, WorkspaceStats) {
        (self.state_x.stats(), self.state_y.stats())
    }

    /// Combined maximum resident state tuples.
    pub fn max_workspace(&self) -> usize {
        self.state_x.stats().max_resident + self.state_y.stats().max_resident
    }

    fn step_x(&mut self) -> TdbResult<()> {
        match self.x.next()? {
            Some(xt) => {
                self.metrics.read_left += 1;
                for yt in &self.state_y {
                    self.metrics.comparisons += 1;
                    if (self.predicate)(&xt, yt) {
                        self.pending.push_back((xt.clone(), yt.clone()));
                    }
                }
                self.state_x.insert(xt);
            }
            None => self.x_done = true,
        }
        Ok(())
    }

    fn step_y(&mut self) -> TdbResult<()> {
        match self.y.next()? {
            Some(yt) => {
                self.metrics.read_right += 1;
                for xt in &self.state_x {
                    self.metrics.comparisons += 1;
                    if (self.predicate)(xt, &yt) {
                        self.pending.push_back((xt.clone(), yt.clone()));
                    }
                }
                self.state_y.insert(yt);
            }
            None => self.y_done = true,
        }
        Ok(())
    }
}

impl<X: TupleStream, Y: TupleStream, P> TupleStream for BufferedJoin<X, Y, P>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
    P: Fn(&X::Item, &Y::Item) -> bool,
{
    type Item = (X::Item, Y::Item);

    fn next(&mut self) -> TdbResult<Option<Self::Item>> {
        loop {
            if let Some(pair) = self.pending.pop_front() {
                self.metrics.emitted += 1;
                return Ok(Some(pair));
            }
            if self.x_done && self.y_done {
                return Ok(None);
            }
            // Alternate between inputs; fall back to the live one.
            self.flip = !self.flip;
            if (self.flip && !self.x_done) || self.y_done {
                self.step_x()?;
            } else {
                self.step_y()?;
            }
        }
    }

    fn order(&self) -> Option<StreamOrder> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::from_vec;
    use proptest::prelude::*;
    use tdb_core::TsTuple;

    fn iv(s: i64, e: i64) -> TsTuple {
        TsTuple::interval(s, e).unwrap()
    }

    fn canon(mut v: Vec<(TsTuple, TsTuple)>) -> Vec<(TsTuple, TsTuple)> {
        v.sort_by_key(|(x, y)| {
            (
                x.ts().ticks(),
                x.te().ticks(),
                y.ts().ticks(),
                y.te().ticks(),
            )
        });
        v
    }

    #[test]
    fn joins_under_any_order_and_predicate() {
        // Deliberately unsorted inputs.
        let xs = vec![iv(10, 20), iv(0, 100), iv(5, 6)];
        let ys = vec![iv(11, 19), iv(1, 2)];
        let mut op = BufferedJoin::new(from_vec(xs.clone()), from_vec(ys.clone()), |x, y| {
            x.period.contains(&y.period)
        });
        let got = canon(op.collect_vec().unwrap());
        let mut expected = Vec::new();
        for x in &xs {
            for y in &ys {
                if x.period.contains(&y.period) {
                    expected.push((x.clone(), y.clone()));
                }
            }
        }
        assert_eq!(got, canon(expected));
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn workspace_grows_to_input_size() {
        let xs: Vec<_> = (0..100).map(|i| iv(i, i + 1)).collect();
        let ys: Vec<_> = (0..80).map(|i| iv(i, i + 1)).collect();
        let mut op = BufferedJoin::new(from_vec(xs), from_vec(ys), |_, _| false);
        let _ = op.collect_vec().unwrap();
        assert_eq!(op.max_workspace(), 180, "no GC: everything retained");
    }

    #[test]
    fn uneven_stream_lengths_drain_fully() {
        let xs = vec![iv(0, 1)];
        let ys: Vec<_> = (0..10).map(|i| iv(0, i + 1)).collect();
        let mut op = BufferedJoin::new(from_vec(xs), from_vec(ys), |x, y| {
            x.period().start() == y.period().start()
        });
        assert_eq!(op.collect_vec().unwrap().len(), 10);
    }

    fn arb_intervals(n: usize) -> impl Strategy<Value = Vec<TsTuple>> {
        proptest::collection::vec((-60i64..60, 1i64..40), 0..n)
            .prop_map(|v| v.into_iter().map(|(s, d)| iv(s, s + d)).collect())
    }

    proptest! {
        /// BufferedJoin is itself an oracle; check it against the direct
        /// double loop for the overlap predicate on unsorted data.
        #[test]
        fn matches_double_loop(xs in arb_intervals(30), ys in arb_intervals(30)) {
            let mut op = BufferedJoin::new(from_vec(xs.clone()), from_vec(ys.clone()), |x, y| {
                x.period.overlaps(&y.period)
            });
            let got = canon(op.collect_vec().unwrap());
            let mut expected = Vec::new();
            for x in &xs {
                for y in &ys {
                    if x.period.overlaps(&y.period) {
                        expected.push((x.clone(), y.clone()));
                    }
                }
            }
            prop_assert_eq!(got, canon(expected));
        }
    }
}
