//! Classic merge equi-join on arbitrary [`Value`] keys.
//!
//! §4.1 cites the merge-join as "a classical example of stream processing
//! operations": with both inputs sorted on the join key, each is read once
//! and "at any point we need only one tuple from each table as the state"
//! (plus the duplicate group). In the Superstar query this operator handles
//! `f1.Name = f2.Name`.

use crate::metrics::OpMetrics;
use crate::stream::TupleStream;
use std::collections::VecDeque;
use tdb_core::{StreamOrder, TdbError, TdbResult, Value};

/// Merge join on a `Value` key extracted from each side.
///
/// Both inputs must arrive in nondecreasing key order; this is verified at
/// runtime (key regression yields [`TdbError::OrderViolation`]).
pub struct MergeEquiJoin<X: TupleStream, Y: TupleStream, KX, KY>
where
    X::Item: Clone,
    Y::Item: Clone,
    KX: Fn(&X::Item) -> Value,
    KY: Fn(&Y::Item) -> Value,
{
    x: X,
    y: Y,
    key_x: KX,
    key_y: KY,
    x_buf: Option<X::Item>,
    y_buf: Option<Y::Item>,
    last_x_key: Option<Value>,
    last_y_key: Option<Value>,
    y_group: Vec<Y::Item>,
    y_group_key: Option<Value>,
    pending: VecDeque<(X::Item, Y::Item)>,
    metrics: OpMetrics,
    max_group: usize,
    started: bool,
}

impl<X: TupleStream, Y: TupleStream, KX, KY> MergeEquiJoin<X, Y, KX, KY>
where
    X::Item: Clone,
    Y::Item: Clone,
    KX: Fn(&X::Item) -> Value,
    KY: Fn(&Y::Item) -> Value,
{
    /// Build the operator.
    pub fn new(x: X, y: Y, key_x: KX, key_y: KY) -> Self {
        MergeEquiJoin {
            x,
            y,
            key_x,
            key_y,
            x_buf: None,
            y_buf: None,
            last_x_key: None,
            last_y_key: None,
            y_group: Vec::new(),
            y_group_key: None,
            pending: VecDeque::new(),
            metrics: OpMetrics {
                passes: 1,
                ..OpMetrics::default()
            },
            max_group: 0,
            started: false,
        }
    }

    /// Execution metrics.
    pub fn metrics(&self) -> OpMetrics {
        self.metrics
    }

    /// Largest duplicate group buffered — the merge join's state.
    pub fn max_workspace(&self) -> usize {
        self.max_group
    }

    fn refill_x(&mut self) -> TdbResult<()> {
        self.x_buf = self.x.next()?;
        if let Some(xb) = &self.x_buf {
            self.metrics.read_left += 1;
            let k = (self.key_x)(xb);
            if let Some(prev) = &self.last_x_key {
                if *prev > k {
                    return Err(TdbError::OrderViolation {
                        context: "MergeEquiJoin",
                        detail: format!("X key regressed from {prev} to {k}"),
                    });
                }
            }
            self.last_x_key = Some(k);
        }
        Ok(())
    }

    fn refill_y(&mut self) -> TdbResult<()> {
        self.y_buf = self.y.next()?;
        if let Some(yb) = &self.y_buf {
            self.metrics.read_right += 1;
            let k = (self.key_y)(yb);
            if let Some(prev) = &self.last_y_key {
                if *prev > k {
                    return Err(TdbError::OrderViolation {
                        context: "MergeEquiJoin",
                        detail: format!("Y key regressed from {prev} to {k}"),
                    });
                }
            }
            self.last_y_key = Some(k);
        }
        Ok(())
    }
}

impl<X: TupleStream, Y: TupleStream, KX, KY> TupleStream for MergeEquiJoin<X, Y, KX, KY>
where
    X::Item: Clone,
    Y::Item: Clone,
    KX: Fn(&X::Item) -> Value,
    KY: Fn(&Y::Item) -> Value,
{
    type Item = (X::Item, Y::Item);

    fn next(&mut self) -> TdbResult<Option<Self::Item>> {
        loop {
            if let Some(pair) = self.pending.pop_front() {
                self.metrics.emitted += 1;
                return Ok(Some(pair));
            }
            if !self.started {
                self.started = true;
                self.refill_x()?;
                self.refill_y()?;
            }
            let Some(xb) = &self.x_buf else {
                return Ok(None);
            };
            let x_key = (self.key_x)(xb);

            if self.y_group_key.as_ref() != Some(&x_key) {
                // Advance Y to the X key.
                loop {
                    match &self.y_buf {
                        Some(yb) if (self.key_y)(yb) < x_key => {
                            self.metrics.comparisons += 1;
                            self.refill_y()?;
                        }
                        _ => break,
                    }
                }
                self.y_group.clear();
                self.y_group_key = Some(x_key.clone());
                while let Some(yb) = &self.y_buf {
                    if (self.key_y)(yb) == x_key {
                        // The `while let Some` just matched. lint:allow(no-unwrap)
                        self.y_group.push(self.y_buf.take().expect("checked"));
                        self.refill_y()?;
                    } else {
                        break;
                    }
                }
                self.max_group = self.max_group.max(self.y_group.len());
                if self.y_group.is_empty() && self.y_buf.is_none() {
                    // Y exhausted with no group: no later X key can match.
                    return Ok(None);
                }
            }

            // The `let Some(xb)` guard above returned on None. lint:allow(no-unwrap)
            let x = self.x_buf.take().expect("checked above");
            for y in &self.y_group {
                self.metrics.comparisons += 1;
                self.pending.push_back((x.clone(), y.clone()));
            }
            self.refill_x()?;
        }
    }

    fn order(&self) -> Option<StreamOrder> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::from_vec;
    use proptest::prelude::*;
    use tdb_core::TsTuple;

    fn t(name: &str, s: i64, e: i64) -> TsTuple {
        TsTuple::new(name, "", s, e).unwrap()
    }

    fn by_name(t: &TsTuple) -> Value {
        t.surrogate.clone()
    }

    fn canon(mut v: Vec<(TsTuple, TsTuple)>) -> Vec<(TsTuple, TsTuple)> {
        v.sort_by(|a, b| {
            (&a.0.surrogate, a.0.period.start(), a.1.period.start()).cmp(&(
                &b.0.surrogate,
                b.0.period.start(),
                b.1.period.start(),
            ))
        });
        v
    }

    #[test]
    fn equijoin_on_names() {
        let xs = vec![t("Brown", 0, 5), t("Jones", 0, 5), t("Smith", 0, 5)];
        let ys = vec![t("Jones", 9, 12), t("Smith", 9, 12), t("Smith", 20, 25)];
        let mut op = MergeEquiJoin::new(from_vec(xs), from_vec(ys), by_name, by_name);
        let out = op.collect_vec().unwrap();
        assert_eq!(out.len(), 3); // Jones×1, Smith×2
        assert_eq!(op.max_workspace(), 2);
    }

    #[test]
    fn detects_unsorted_keys() {
        let xs = vec![t("Smith", 0, 5), t("Brown", 0, 5)];
        let ys = vec![t("Smith", 9, 12)];
        let mut op = MergeEquiJoin::new(from_vec(xs), from_vec(ys), by_name, by_name);
        let mut failed = false;
        loop {
            match op.next() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(TdbError::OrderViolation { .. }) => {
                    failed = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(failed);
    }

    #[test]
    fn early_termination_when_y_exhausted() {
        let xs = vec![t("A", 0, 1), t("Z", 0, 1)];
        let ys = vec![t("A", 0, 1)];
        let mut op = MergeEquiJoin::new(from_vec(xs), from_vec(ys), by_name, by_name);
        assert_eq!(op.collect_vec().unwrap().len(), 1);
    }

    proptest! {
        #[test]
        fn matches_oracle(
            xk in proptest::collection::vec(0u8..6, 0..25),
            yk in proptest::collection::vec(0u8..6, 0..25),
        ) {
            let mut xs: Vec<_> = xk.iter().enumerate()
                .map(|(i, k)| t(&format!("K{k}"), i as i64, i as i64 + 1)).collect();
            let mut ys: Vec<_> = yk.iter().enumerate()
                .map(|(i, k)| t(&format!("K{k}"), 100 + i as i64, 101 + i as i64)).collect();
            xs.sort_by(|a, b| a.surrogate.cmp(&b.surrogate));
            ys.sort_by(|a, b| a.surrogate.cmp(&b.surrogate));
            let mut op = MergeEquiJoin::new(from_vec(xs.clone()), from_vec(ys.clone()), by_name, by_name);
            let got = canon(op.collect_vec().unwrap());
            let mut expected = Vec::new();
            for x in &xs {
                for y in &ys {
                    if x.surrogate == y.surrogate {
                        expected.push((x.clone(), y.clone()));
                    }
                }
            }
            prop_assert_eq!(got, canon(expected));
        }
    }
}
