//! Grouped aggregation — the paper's Figure 4 stream processor.
//!
//! "Let us consider a simple stream processor which lists all the
//! departments and computes the sum of all employees' salaries in each
//! department ... If the stream of tuples are grouped by the department
//! name, the local workspace simply contains the partial sum and a buffer
//! for the tuple just read."
//!
//! [`GroupedSum`] is that processor: O(1) state over grouped input, with
//! runtime detection of ungrouped input. [`HashSum`] is the conventional
//! baseline whose workspace grows with the number of groups.

use crate::metrics::OpMetrics;
use crate::stream::TupleStream;
use std::collections::{HashMap, HashSet};
use tdb_core::{StreamOrder, TdbError, TdbResult, Value};

/// Streaming sum over input grouped by key: one partial sum of state.
pub struct GroupedSum<S, K, V>
where
    S: TupleStream,
    K: Fn(&S::Item) -> Value,
    V: Fn(&S::Item) -> i64,
{
    input: S,
    key: K,
    value: V,
    current: Option<(Value, i64)>,
    /// Keys of groups already closed, to detect ungrouped input.
    closed: HashSet<Value>,
    metrics: OpMetrics,
    done: bool,
}

impl<S, K, V> GroupedSum<S, K, V>
where
    S: TupleStream,
    K: Fn(&S::Item) -> Value,
    V: Fn(&S::Item) -> i64,
{
    /// Build the processor over grouped input.
    pub fn new(input: S, key: K, value: V) -> Self {
        GroupedSum {
            input,
            key,
            value,
            current: None,
            closed: HashSet::new(),
            metrics: OpMetrics {
                passes: 1,
                ..OpMetrics::default()
            },
            done: false,
        }
    }

    /// Execution metrics.
    pub fn metrics(&self) -> OpMetrics {
        self.metrics
    }

    /// State beyond the input buffer: one `(key, partial sum)` cell.
    pub fn max_workspace(&self) -> usize {
        1
    }
}

impl<S, K, V> TupleStream for GroupedSum<S, K, V>
where
    S: TupleStream,
    K: Fn(&S::Item) -> Value,
    V: Fn(&S::Item) -> i64,
{
    type Item = (Value, i64);

    fn next(&mut self) -> TdbResult<Option<(Value, i64)>> {
        if self.done {
            return Ok(None);
        }
        loop {
            match self.input.next()? {
                Some(item) => {
                    self.metrics.read_left += 1;
                    let k = (self.key)(&item);
                    let v = (self.value)(&item);
                    match &mut self.current {
                        Some((ck, sum)) if *ck == k => {
                            *sum += v;
                        }
                        Some(_) => {
                            // Group boundary: emit the finished group. The
                            // `Some(_)` arm guarantees `current` is occupied.
                            // lint:allow(no-unwrap)
                            let (ck, sum) = self.current.replace((k.clone(), v)).expect("checked");
                            if !self.closed.insert(ck.clone()) {
                                return Err(TdbError::OrderViolation {
                                    context: "GroupedSum",
                                    detail: format!("input is not grouped: key {ck} reappeared"),
                                });
                            }
                            // The reappearing *new* key is checked when its
                            // own group closes.
                            self.metrics.emitted += 1;
                            return Ok(Some((ck, sum)));
                        }
                        None => {
                            self.current = Some((k, v));
                        }
                    }
                }
                None => {
                    self.done = true;
                    if let Some((ck, sum)) = self.current.take() {
                        if !self.closed.insert(ck.clone()) {
                            return Err(TdbError::OrderViolation {
                                context: "GroupedSum",
                                detail: format!("input is not grouped: key {ck} reappeared"),
                            });
                        }
                        self.metrics.emitted += 1;
                        return Ok(Some((ck, sum)));
                    }
                    return Ok(None);
                }
            }
        }
    }

    fn order(&self) -> Option<StreamOrder> {
        None
    }
}

/// Conventional hash aggregation baseline: workspace = one cell per group.
pub struct HashSum;

impl HashSum {
    /// Sum `value` per `key` over the whole stream, returning results sorted
    /// by key, plus the number of groups held (the workspace).
    pub fn run<S, K, V>(mut input: S, key: K, value: V) -> TdbResult<(Vec<(Value, i64)>, usize)>
    where
        S: TupleStream,
        K: Fn(&S::Item) -> Value,
        V: Fn(&S::Item) -> i64,
    {
        let mut sums: HashMap<Value, i64> = HashMap::new();
        while let Some(item) = input.next()? {
            *sums.entry(key(&item)).or_insert(0) += value(&item);
        }
        let workspace = sums.len();
        let mut out: Vec<_> = sums.into_iter().collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok((out, workspace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::from_vec;

    fn dept_rows() -> Vec<(Value, i64)> {
        vec![
            (Value::str("CS"), 100),
            (Value::str("CS"), 150),
            (Value::str("EE"), 90),
            (Value::str("Math"), 70),
            (Value::str("Math"), 30),
        ]
    }

    #[test]
    fn figure4_department_sums() {
        let mut op = GroupedSum::new(from_vec(dept_rows()), |r| r.0.clone(), |r| r.1);
        let out = op.collect_vec().unwrap();
        assert_eq!(
            out,
            vec![
                (Value::str("CS"), 250),
                (Value::str("EE"), 90),
                (Value::str("Math"), 100),
            ]
        );
        assert_eq!(op.max_workspace(), 1);
        assert_eq!(op.metrics().read_left, 5);
    }

    #[test]
    fn ungrouped_input_is_detected() {
        let rows = vec![
            (Value::str("CS"), 1),
            (Value::str("EE"), 2),
            (Value::str("CS"), 3), // CS reappears after closing
        ];
        let mut op = GroupedSum::new(from_vec(rows), |r| r.0.clone(), |r| r.1);
        let mut err = None;
        loop {
            match op.next() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(err, Some(TdbError::OrderViolation { .. })));
    }

    #[test]
    fn empty_and_single_group() {
        let mut op = GroupedSum::new(
            from_vec(Vec::<(Value, i64)>::new()),
            |r| r.0.clone(),
            |r| r.1,
        );
        assert!(op.collect_vec().unwrap().is_empty());

        let mut op = GroupedSum::new(
            from_vec(vec![(Value::str("A"), 1), (Value::str("A"), 2)]),
            |r| r.0.clone(),
            |r| r.1,
        );
        assert_eq!(op.collect_vec().unwrap(), vec![(Value::str("A"), 3)]);
    }

    #[test]
    fn hash_baseline_agrees_but_uses_group_workspace() {
        let (out, ws) = HashSum::run(from_vec(dept_rows()), |r| r.0.clone(), |r| r.1).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(ws, 3, "hash agg holds every group");
        let mut stream_op = GroupedSum::new(from_vec(dept_rows()), |r| r.0.clone(), |r| r.1);
        let stream_out = stream_op.collect_vec().unwrap();
        assert_eq!(out, stream_out);
    }

    #[test]
    fn negative_values_sum_correctly() {
        let rows = vec![(Value::Int(1), -5), (Value::Int(1), 3)];
        let mut op = GroupedSum::new(from_vec(rows), |r| r.0.clone(), |r| r.1);
        assert_eq!(op.collect_vec().unwrap(), vec![(Value::Int(1), -2)]);
    }
}
