//! Low-watermarks for live, sort-ordered arrival streams.
//!
//! The paper's stream operators (§4, Tables 1–3) assume each input arrives
//! already sorted on its entry order; every garbage-collection rule is a
//! statement of the form "no *future* arrival can match this resident
//! tuple", justified by that sort order. In a live setting the same
//! reasoning powers **finality**: once the newest arrival's sort key has
//! passed `k`, every tuple with key `< k` is frozen — no later arrival can
//! precede it — so results built from the closed prefix can be emitted and
//! state below the watermark can be collected, exactly per the Table 1–3
//! rules.
//!
//! [`Watermark`] tracks that frontier for one relation:
//!
//! * for a `(TS ↑)` stream the watermark key is `ValidFrom`
//!   ([`SortKey::ValidFrom`]);
//! * for a `(TE ↑)` stream it is `ValidTo` ([`SortKey::ValidTo`]);
//! * an optional *slack* admits bounded disorder: the watermark trails the
//!   newest arrival by `slack` ticks, and arrivals older than the watermark
//!   are rejected as late.

use crate::progress::Progress;
use tdb_core::{SortKey, StreamOrder, TdbError, TdbResult, Temporal, TimePoint};

/// A per-relation low-watermark over one sort key.
#[derive(Debug, Clone)]
pub struct Watermark {
    key: SortKey,
    slack: i64,
    current: Option<TimePoint>,
    max_seen: Option<TimePoint>,
    sealed: bool,
}

impl Watermark {
    /// A watermark over `key` with zero slack (arrivals must be
    /// non-decreasing in `key`).
    pub fn new(key: SortKey) -> Watermark {
        Watermark::with_slack(key, 0)
    }

    /// A watermark over `key` trailing the newest arrival by `slack` ticks,
    /// admitting that much arrival disorder.
    pub fn with_slack(key: SortKey, slack: i64) -> Watermark {
        Watermark {
            key,
            slack: slack.max(0),
            current: None,
            max_seen: None,
            sealed: false,
        }
    }

    /// The watermark for a stream arriving in `order`: keyed on the
    /// primary sort key (`ValidFrom` for `(TS ↑)`, `ValidTo` for `(TE ↑)`).
    pub fn for_order(order: &StreamOrder, slack: i64) -> Watermark {
        Watermark::with_slack(order.primary.key, slack)
    }

    /// Rebuild a watermark from durably logged state. WAL recovery uses
    /// this to restore the frontier exactly as it stood at the crash:
    /// `current` is the logged frontier and `max_seen` is reset to the
    /// frontier plus slack (the tightest value consistent with it, so
    /// post-recovery lag never over-reports).
    pub fn restore(
        key: SortKey,
        slack: i64,
        current: Option<TimePoint>,
        sealed: bool,
    ) -> Watermark {
        let slack = slack.max(0);
        Watermark {
            key,
            slack,
            current,
            max_seen: current.map(|w| TimePoint(w.ticks().saturating_add(slack))),
            sealed,
        }
    }

    /// The sort key this watermark tracks.
    pub fn key(&self) -> SortKey {
        self.key
    }

    /// The current frontier: every tuple whose key is strictly below it is
    /// final. `None` until the first arrival.
    pub fn current(&self) -> Option<TimePoint> {
        self.current
    }

    /// Observe one arrival, advancing the frontier. Returns an
    /// [`TdbError::OrderViolation`] for a late arrival (key below the
    /// current watermark) or any arrival after [`Watermark::seal`].
    pub fn observe<T: Temporal>(&mut self, t: &T) -> TdbResult<()> {
        let k = self.key.extract(t);
        if self.sealed {
            return Err(TdbError::OrderViolation {
                context: "live watermark",
                detail: format!("arrival with key {k} after the stream was sealed"),
            });
        }
        if let Some(w) = self.current {
            if k < w {
                return Err(TdbError::OrderViolation {
                    context: "live watermark",
                    detail: format!(
                        "late arrival: key {k} is below the watermark {w} (slack {})",
                        self.slack
                    ),
                });
            }
        }
        self.max_seen = Some(match self.max_seen {
            Some(m) => m.max_of(k),
            None => k,
        });
        let candidate = TimePoint(k.ticks().saturating_sub(self.slack));
        if self.current.is_none_or(|w| candidate > w) {
            self.current = Some(candidate);
        }
        Ok(())
    }

    /// Is `t` final — provably unreachable by any future arrival? True when
    /// its key lies strictly below the watermark, or the stream is sealed.
    pub fn closes<T: Temporal>(&self, t: &T) -> bool {
        if self.sealed {
            return true;
        }
        match self.current {
            Some(w) => self.key.extract(t) < w,
            None => false,
        }
    }

    /// Declare end-of-stream: the frontier jumps to +∞ and every staged
    /// tuple becomes final. Further [`Watermark::observe`] calls error.
    pub fn seal(&mut self) {
        self.sealed = true;
    }

    /// Has the stream been sealed?
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Watermark lag in ticks: distance between the newest arrival's key
    /// and the frontier (0 once sealed or before any arrival).
    pub fn lag(&self) -> i64 {
        if self.sealed {
            return 0;
        }
        match (self.max_seen, self.current) {
            (Some(m), Some(w)) => (m - w).ticks().max(0),
            _ => 0,
        }
    }

    /// Publish the current lag into a [`Progress`] handle.
    pub fn publish_lag(&self, progress: &Progress) {
        progress.set_watermark_lag(self.lag().max(0) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_core::TsTuple;

    fn iv(s: i64, e: i64) -> TsTuple {
        TsTuple::interval(s, e).unwrap()
    }

    #[test]
    fn advances_and_closes_prefix() {
        let mut w = Watermark::new(SortKey::ValidFrom);
        assert!(!w.closes(&iv(0, 1)));
        w.observe(&iv(5, 9)).unwrap();
        assert_eq!(w.current(), Some(TimePoint(5)));
        assert!(w.closes(&iv(4, 20)), "TS 4 < watermark 5 is final");
        assert!(!w.closes(&iv(5, 6)), "equal keys may still arrive");
        w.observe(&iv(5, 7)).unwrap(); // equal key is fine
        w.observe(&iv(8, 9)).unwrap();
        assert!(w.closes(&iv(5, 6)));
    }

    #[test]
    fn rejects_late_arrivals() {
        let mut w = Watermark::new(SortKey::ValidFrom);
        w.observe(&iv(10, 12)).unwrap();
        assert!(matches!(
            w.observe(&iv(9, 20)),
            Err(TdbError::OrderViolation { .. })
        ));
    }

    #[test]
    fn slack_trails_the_frontier() {
        let mut w = Watermark::with_slack(SortKey::ValidFrom, 3);
        w.observe(&iv(10, 12)).unwrap();
        assert_eq!(w.current(), Some(TimePoint(7)));
        // Disorder within the slack is admitted…
        w.observe(&iv(8, 9)).unwrap();
        w.observe(&iv(9, 11)).unwrap();
        // …but not below the watermark.
        assert!(w.observe(&iv(6, 7)).is_err());
        assert_eq!(w.lag(), 3);
    }

    #[test]
    fn te_ordered_streams_watermark_on_te() {
        let mut w = Watermark::for_order(&StreamOrder::TE_ASC, 0);
        assert_eq!(w.key(), SortKey::ValidTo);
        w.observe(&iv(0, 10)).unwrap();
        assert!(w.closes(&iv(7, 9)), "TE 9 < watermark 10");
        assert!(!w.closes(&iv(0, 10)));
    }

    #[test]
    fn seal_finalizes_everything() {
        let mut w = Watermark::new(SortKey::ValidFrom);
        w.observe(&iv(3, 5)).unwrap();
        w.seal();
        assert!(w.is_sealed());
        assert!(w.closes(&iv(100, 200)));
        assert_eq!(w.lag(), 0);
        assert!(w.observe(&iv(4, 6)).is_err());
    }

    #[test]
    fn lag_publishes_to_progress() {
        let mut w = Watermark::with_slack(SortKey::ValidFrom, 5);
        w.observe(&iv(20, 25)).unwrap();
        let p = Progress::new();
        w.publish_lag(&p);
        assert_eq!(p.snapshot().watermark_lag, 5);
    }
}
