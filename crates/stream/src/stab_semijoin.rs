//! The two-buffer ("stab") semijoin algorithms of §4.2.2 / Figure 6.
//!
//! `Contain-semijoin(X,Y)` selects the X tuples whose lifespan strictly
//! contains that of *some* Y tuple; `Contained-semijoin(X,Y)` selects the X
//! tuples strictly contained in some Y tuple. "For semijoins, a stream
//! processor can output a tuple as soon as it finds the first matching
//! tuple. Because of this, we devise an optimized algorithm which requires
//! just one buffer for each input stream" — Table 1 state (d).
//!
//! Both operators here are instances of one scan over a *container* stream
//! sorted `ValidFrom ↑` and a *containee* stream sorted `ValidTo ↑`:
//!
//! * a containee whose `TS ≤` the buffered container's `TS` can be contained
//!   in **no** current or future container (containers' `TS` only grows) —
//!   skip it;
//! * otherwise, if the containee ends strictly before the buffered container
//!   (`e.TE < c.TE`), the pair matches (`c.TS < e.TS ∧ e.TE < c.TE`);
//! * otherwise (`e.TE ≥ c.TE`) the buffered container can contain **no**
//!   current or future containee (containees' `TE` only grows) — advance the
//!   container.
//!
//! [`ContainSemijoinStab`] emits the container side (and advances it after a
//! match — one output per container); [`ContainedSemijoinStab`] emits the
//! containee side (and advances it after a match). The local workspace is
//! exactly the two input buffers.

use crate::metrics::OpMetrics;
use crate::required::{check_stream_order, RequiredOrder, StreamOpKind};
use crate::stream::TupleStream;
use std::cmp::Ordering as CmpOrdering;
use tdb_core::{StreamOrder, TdbResult, Temporal};

/// Which side of the containment a stab semijoin emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Emit {
    Container,
    Containee,
}

/// Shared two-buffer scan. `C` is the container stream (`ValidFrom ↑`),
/// `E` the containee stream (`ValidTo ↑`).
struct StabScan<C: TupleStream, E: TupleStream> {
    containers: C,
    containees: E,
    c_buf: Option<C::Item>,
    e_buf: Option<E::Item>,
    emit: Emit,
    metrics: OpMetrics,
    started: bool,
}

enum StepOutcome<C, E> {
    EmitContainer(C),
    EmitContainee(E),
    Done,
}

impl<C: TupleStream, E: TupleStream> StabScan<C, E>
where
    C::Item: Temporal + Clone,
    E::Item: Temporal + Clone,
{
    fn new(containers: C, containees: E, emit: Emit, name: &'static str) -> TdbResult<Self> {
        check_stream_order(&containers, Some(StreamOrder::TS_ASC), name, "container")?;
        check_stream_order(&containees, Some(StreamOrder::TE_ASC), name, "containee")?;
        Ok(StabScan {
            containers,
            containees,
            c_buf: None,
            e_buf: None,
            emit,
            metrics: OpMetrics {
                passes: 1,
                ..OpMetrics::default()
            },
            started: false,
        })
    }

    fn refill_container(&mut self) -> TdbResult<()> {
        self.c_buf = self.containers.next()?;
        if self.c_buf.is_some() {
            self.metrics.read_left += 1;
        }
        Ok(())
    }

    fn refill_containee(&mut self) -> TdbResult<()> {
        self.e_buf = self.containees.next()?;
        if self.e_buf.is_some() {
            self.metrics.read_right += 1;
        }
        Ok(())
    }

    fn step(&mut self) -> TdbResult<StepOutcome<C::Item, E::Item>> {
        if !self.started {
            self.started = true;
            self.refill_container()?;
            self.refill_containee()?;
        }
        loop {
            let (Some(c), Some(e)) = (&self.c_buf, &self.e_buf) else {
                return Ok(StepOutcome::Done);
            };
            self.metrics.comparisons += 1;
            match e.ts().cmp(&c.ts()) {
                // Dead containee: no current or future container starts
                // before it.
                CmpOrdering::Less | CmpOrdering::Equal => {
                    self.refill_containee()?;
                }
                CmpOrdering::Greater => {
                    if e.te() < c.te() {
                        // Match: c.TS < e.TS ∧ e.TE < c.TE.
                        match self.emit {
                            Emit::Container => {
                                let out = c.clone();
                                self.refill_container()?; // one output per container
                                return Ok(StepOutcome::EmitContainer(out));
                            }
                            Emit::Containee => {
                                let out = e.clone();
                                self.refill_containee()?; // one output per containee
                                return Ok(StepOutcome::EmitContainee(out));
                            }
                        }
                    }
                    // This container can contain no current or future
                    // containee (their TE only grows).
                    self.refill_container()?;
                }
            }
        }
    }
}

/// `Contain-semijoin(X, Y)` over X sorted `ValidFrom ↑`, Y sorted
/// `ValidTo ↑`: emits each X tuple containing at least one Y tuple.
/// Workspace: the two input buffers (Table 1 state (d)).
pub struct ContainSemijoinStab<X: TupleStream, Y: TupleStream>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    scan: StabScan<X, Y>,
}

impl<X: TupleStream, Y: TupleStream> RequiredOrder for ContainSemijoinStab<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    const KIND: StreamOpKind = StreamOpKind::ContainSemijoinStab;
}

impl<X: TupleStream, Y: TupleStream> ContainSemijoinStab<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    /// Build the operator (X: `ValidFrom ↑`, Y: `ValidTo ↑`).
    pub fn new(x: X, y: Y) -> TdbResult<Self> {
        Ok(ContainSemijoinStab {
            scan: StabScan::new(x, y, Emit::Container, "ContainSemijoinStab")?,
        })
    }

    /// Execution metrics.
    pub fn metrics(&self) -> OpMetrics {
        self.scan.metrics
    }

    /// The buffered (container, containee) pair — the entire workspace.
    pub fn buffers(&self) -> (Option<&X::Item>, Option<&Y::Item>) {
        (self.scan.c_buf.as_ref(), self.scan.e_buf.as_ref())
    }
}

impl<X: TupleStream, Y: TupleStream> TupleStream for ContainSemijoinStab<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    type Item = X::Item;

    fn next(&mut self) -> TdbResult<Option<X::Item>> {
        match self.scan.step()? {
            StepOutcome::EmitContainer(c) => {
                self.scan.metrics.emitted += 1;
                Ok(Some(c))
            }
            StepOutcome::EmitContainee(_) => unreachable!("configured to emit containers"),
            StepOutcome::Done => Ok(None),
        }
    }

    fn order(&self) -> Option<StreamOrder> {
        // Output is a subsequence of the container input: order-preserving
        // (§4.2.3: "the output stream from a semijoin operation has the same
        // sort ordering as the input stream").
        Some(StreamOrder::TS_ASC)
    }
}

/// `Contained-semijoin(X, Y)` over X sorted `ValidTo ↑`, Y sorted
/// `ValidFrom ↑`: emits each X tuple contained in at least one Y tuple.
/// Workspace: the two input buffers (Table 1 state (d)).
pub struct ContainedSemijoinStab<X: TupleStream, Y: TupleStream>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    scan: StabScan<Y, X>, // Y are the containers, X the containees
}

impl<X: TupleStream, Y: TupleStream> RequiredOrder for ContainedSemijoinStab<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    const KIND: StreamOpKind = StreamOpKind::ContainedSemijoinStab;
}

impl<X: TupleStream, Y: TupleStream> ContainedSemijoinStab<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    /// Build the operator (X: `ValidTo ↑`, Y: `ValidFrom ↑`).
    pub fn new(x: X, y: Y) -> TdbResult<Self> {
        Ok(ContainedSemijoinStab {
            scan: StabScan::new(y, x, Emit::Containee, "ContainedSemijoinStab")?,
        })
    }

    /// Execution metrics (note: `read_left` counts the container side,
    /// i.e. Y).
    pub fn metrics(&self) -> OpMetrics {
        self.scan.metrics
    }

    /// The buffered (containee, container) pair — the entire workspace.
    pub fn buffers(&self) -> (Option<&X::Item>, Option<&Y::Item>) {
        (self.scan.e_buf.as_ref(), self.scan.c_buf.as_ref())
    }
}

impl<X: TupleStream, Y: TupleStream> TupleStream for ContainedSemijoinStab<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    type Item = X::Item;

    fn next(&mut self) -> TdbResult<Option<X::Item>> {
        match self.scan.step()? {
            StepOutcome::EmitContainee(e) => {
                self.scan.metrics.emitted += 1;
                Ok(Some(e))
            }
            StepOutcome::EmitContainer(_) => unreachable!("configured to emit containees"),
            StepOutcome::Done => Ok(None),
        }
    }

    fn order(&self) -> Option<StreamOrder> {
        Some(StreamOrder::TE_ASC)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::from_sorted_vec;
    use proptest::prelude::*;
    use tdb_core::TsTuple;

    fn iv(s: i64, e: i64) -> TsTuple {
        TsTuple::interval(s, e).unwrap()
    }

    fn contain_oracle(xs: &[TsTuple], ys: &[TsTuple]) -> Vec<TsTuple> {
        xs.iter()
            .filter(|x| ys.iter().any(|y| x.period.contains(&y.period)))
            .cloned()
            .collect()
    }

    fn contained_oracle(xs: &[TsTuple], ys: &[TsTuple]) -> Vec<TsTuple> {
        xs.iter()
            .filter(|x| ys.iter().any(|y| y.period.contains(&x.period)))
            .cloned()
            .collect()
    }

    fn canon(mut v: Vec<TsTuple>) -> Vec<TsTuple> {
        v.sort_by_key(|t| (t.ts().ticks(), t.te().ticks()));
        v
    }

    fn run_contain(mut xs: Vec<TsTuple>, mut ys: Vec<TsTuple>) -> Vec<TsTuple> {
        StreamOrder::TS_ASC.sort(&mut xs);
        StreamOrder::TE_ASC.sort(&mut ys);
        let x = from_sorted_vec(xs, StreamOrder::TS_ASC).unwrap();
        let y = from_sorted_vec(ys, StreamOrder::TE_ASC).unwrap();
        let mut op = ContainSemijoinStab::new(x, y).unwrap();
        canon(op.collect_vec().unwrap())
    }

    fn run_contained(mut xs: Vec<TsTuple>, mut ys: Vec<TsTuple>) -> Vec<TsTuple> {
        StreamOrder::TE_ASC.sort(&mut xs);
        StreamOrder::TS_ASC.sort(&mut ys);
        let x = from_sorted_vec(xs, StreamOrder::TE_ASC).unwrap();
        let y = from_sorted_vec(ys, StreamOrder::TS_ASC).unwrap();
        let mut op = ContainedSemijoinStab::new(x, y).unwrap();
        canon(op.collect_vec().unwrap())
    }

    /// The Figure 6 walk: X = {x1, x2} sorted TS↑, Y = {y1..y4} sorted TE↑.
    /// "When x1 is fetched, the local workspace contains ⟨x1, y2⟩ and for
    /// x2 it is ⟨x2, y4⟩."
    #[test]
    fn figure6_trace() {
        let x1 = iv(0, 10);
        let x2 = iv(8, 20);
        let y1 = iv(-2, 3); // TS ≤ x1.TS: dead
        let y2 = iv(1, 5); // contained in x1
        let y3 = iv(4, 7); // TS ≤ x2.TS: dead for x2
        let y4 = iv(9, 15); // contained in x2
        let x = from_sorted_vec(vec![x1.clone(), x2.clone()], StreamOrder::TS_ASC).unwrap();
        let y = from_sorted_vec(vec![y1, y2.clone(), y3, y4.clone()], StreamOrder::TE_ASC).unwrap();
        let mut op = ContainSemijoinStab::new(x, y).unwrap();

        // First emission: x1, with y2 buffered — workspace ⟨x1 (consumed), y2⟩.
        let first = op.next().unwrap().unwrap();
        assert_eq!(first, x1);
        let (c_buf, e_buf) = op.buffers();
        assert_eq!(c_buf, Some(&x2)); // container already advanced past x1
        assert_eq!(e_buf, Some(&y2)); // y2 retained for the next container

        let second = op.next().unwrap().unwrap();
        assert_eq!(second, x2);
        let (_, e_buf) = op.buffers();
        assert_eq!(e_buf, Some(&y4));

        assert!(op.next().unwrap().is_none());
        assert_eq!(op.metrics().emitted, 2);
    }

    #[test]
    fn contained_semijoin_emits_containees() {
        let xs = vec![iv(1, 5), iv(9, 15), iv(0, 30)];
        let ys = vec![iv(0, 10), iv(8, 20)];
        let got = run_contained(xs.clone(), ys.clone());
        assert_eq!(got, canon(contained_oracle(&xs, &ys)));
        assert_eq!(got.len(), 2); // [1,5) ⊂ [0,10); [9,15) ⊂ [8,20)
    }

    #[test]
    fn strict_containment_at_endpoints() {
        let xs = vec![iv(0, 10)];
        for y in [iv(0, 5), iv(5, 10), iv(0, 10)] {
            assert!(run_contain(xs.clone(), vec![y]).is_empty());
        }
        assert_eq!(run_contain(xs.clone(), vec![iv(1, 9)]).len(), 1);
    }

    #[test]
    fn each_tuple_emitted_once_despite_multiple_matches() {
        let xs = vec![iv(0, 100)];
        let ys: Vec<_> = (0..10).map(|i| iv(1 + i, 50 + i)).collect();
        let got = run_contain(xs, ys);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn empty_inputs() {
        assert!(run_contain(vec![], vec![iv(0, 1)]).is_empty());
        assert!(run_contain(vec![iv(0, 1)], vec![]).is_empty());
        assert!(run_contained(vec![], vec![]).is_empty());
    }

    #[test]
    fn rejects_wrong_orders() {
        let x = from_sorted_vec(vec![iv(0, 5)], StreamOrder::TE_ASC).unwrap();
        let y = from_sorted_vec(vec![iv(0, 5)], StreamOrder::TE_ASC).unwrap();
        assert!(ContainSemijoinStab::new(x, y).is_err());
        let x = from_sorted_vec(vec![iv(0, 5)], StreamOrder::TE_ASC).unwrap();
        let y = from_sorted_vec(vec![iv(0, 5)], StreamOrder::TE_ASC).unwrap();
        assert!(ContainedSemijoinStab::new(x, y).is_err());
    }

    #[test]
    fn output_preserves_input_order() {
        let xs: Vec<_> = (0..50).map(|i| iv(i * 3, i * 3 + 10)).collect();
        let ys: Vec<_> = (0..50).map(|i| iv(i * 3 + 1, i * 3 + 5)).collect();
        let mut ys_te = ys.clone();
        StreamOrder::TE_ASC.sort(&mut ys_te);
        let x = from_sorted_vec(xs, StreamOrder::TS_ASC).unwrap();
        let y = from_sorted_vec(ys_te, StreamOrder::TE_ASC).unwrap();
        let mut op = ContainSemijoinStab::new(x, y).unwrap();
        let out = op.collect_vec().unwrap();
        assert!(!out.is_empty());
        assert_eq!(StreamOrder::TS_ASC.first_violation(&out), None);
    }

    fn arb_intervals(n: usize) -> impl Strategy<Value = Vec<TsTuple>> {
        proptest::collection::vec((-60i64..60, 1i64..40), 0..n)
            .prop_map(|v| v.into_iter().map(|(s, d)| iv(s, s + d)).collect())
    }

    proptest! {
        #[test]
        fn contain_matches_oracle(xs in arb_intervals(50), ys in arb_intervals(50)) {
            prop_assert_eq!(
                run_contain(xs.clone(), ys.clone()),
                canon(contain_oracle(&xs, &ys))
            );
        }

        #[test]
        fn contained_matches_oracle(xs in arb_intervals(50), ys in arb_intervals(50)) {
            prop_assert_eq!(
                run_contained(xs.clone(), ys.clone()),
                canon(contained_oracle(&xs, &ys))
            );
        }
    }
}
