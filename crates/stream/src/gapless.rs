//! The gapless columnar workspace of the batched sweep kernels.
//!
//! Piatov et al.'s "gapless hash map" observation: a sweep workspace is
//! scanned in full on every garbage-collection cutoff and every probe, so
//! what matters is that the scanned keys are *dense* — no tombstones, no
//! pointer chasing, no interleaved payload bytes. [`GaplessWorkspace`]
//! therefore stores the `ValidFrom`/`ValidTo` endpoints of the resident
//! state tuples as two parallel `i64` columns and keeps them gapless under
//! deletion by in-place compaction. GC cutoffs and containment/overlap
//! probes become branch-light loops over a few cache lines of integers;
//! payloads sit in a third parallel column and are only touched on a match.
//!
//! Compaction is **order-preserving** (a parallel-array `retain`, not a
//! swap-remove): the batched kernels then emit matches in exactly the same
//! sequence as the row-at-a-time operators, which keeps batch-vs-row
//! equivalence exact, not just multiset-equal.
//!
//! The accounting is shared with the row layout: both call the same
//! [`WorkspaceStats`] recording hooks, so `max_resident`, discard counts,
//! and occupancy histograms — the numbers `tdb-analyze` caps and `tdb-obs`
//! cross-checks — are layout-independent by construction.

use crate::workspace::WorkspaceStats;
use tdb_core::Temporal;

/// An instrumented state set stored as gapless parallel endpoint columns.
///
/// Semantically identical to [`crate::workspace::Workspace`]; the layout is
/// what changes. Predicates run over `(ts, te)` tick pairs instead of
/// `&T`, which is what lets the hot loops avoid touching payloads.
#[derive(Debug, Clone)]
pub struct GaplessWorkspace<T> {
    ts: Vec<i64>,
    te: Vec<i64>,
    payload: Vec<T>,
    stats: WorkspaceStats,
}

impl<T> Default for GaplessWorkspace<T> {
    fn default() -> Self {
        GaplessWorkspace::new()
    }
}

impl<T> GaplessWorkspace<T> {
    /// An empty workspace.
    pub fn new() -> GaplessWorkspace<T> {
        GaplessWorkspace {
            ts: Vec::new(),
            te: Vec::new(),
            payload: Vec::new(),
            stats: WorkspaceStats::default(),
        }
    }

    /// Insert a state tuple with pre-extracted endpoint ticks.
    #[inline]
    pub fn insert_raw(&mut self, ts: i64, te: i64, item: T) {
        self.ts.push(ts);
        self.te.push(te);
        self.payload.push(item);
        self.stats.record_insert(self.payload.len());
    }

    /// Garbage-collect: keep only tuples whose `(ts, te)` ticks satisfy
    /// `keep`. Order-preserving in-place compaction of all three columns.
    pub fn gc(&mut self, mut keep: impl FnMut(i64, i64) -> bool) {
        let n = self.payload.len();
        let mut w = 0;
        for r in 0..n {
            if keep(self.ts[r], self.te[r]) {
                if w != r {
                    self.ts.swap(w, r);
                    self.te.swap(w, r);
                    self.payload.swap(w, r);
                }
                w += 1;
            }
        }
        self.ts.truncate(w);
        self.te.truncate(w);
        self.payload.truncate(w);
        self.stats.record_discard(n - w, w);
    }

    /// GC keeping tuples with `te >= cut` — the Contain-join X-state rule.
    #[inline]
    pub fn gc_te_ge(&mut self, cut: i64) {
        self.gc(|_, te| te >= cut)
    }

    /// GC keeping tuples with `te > cut` — the Overlap-join state rule.
    #[inline]
    pub fn gc_te_gt(&mut self, cut: i64) {
        self.gc(|_, te| te > cut)
    }

    /// GC keeping tuples with `ts > cut` — the strict-overlap Y-state rule.
    #[inline]
    pub fn gc_ts_gt(&mut self, cut: i64) {
        self.gc(|ts, _| ts > cut)
    }

    /// Discard every resident tuple, counting them as GC discards (used
    /// when an input's exhaustion proves no future matches are possible).
    pub fn clear_discard(&mut self) {
        let n = self.payload.len();
        self.ts.clear();
        self.te.clear();
        self.payload.clear();
        self.stats.record_discard(n, 0);
    }

    /// Remove and return (in residence order) tuples whose ticks satisfy
    /// `take` — matches, not GC discards.
    pub fn extract(&mut self, mut take: impl FnMut(i64, i64) -> bool) -> Vec<T> {
        let n = self.payload.len();
        let mut taken = Vec::new();
        let mut kts = Vec::with_capacity(n);
        let mut kte = Vec::with_capacity(n);
        let mut kept = Vec::with_capacity(n);
        for (i, item) in std::mem::take(&mut self.payload).into_iter().enumerate() {
            if take(self.ts[i], self.te[i]) {
                taken.push(item);
            } else {
                kts.push(self.ts[i]);
                kte.push(self.te[i]);
                kept.push(item);
            }
        }
        self.ts = kts;
        self.te = kte;
        self.payload = kept;
        self.stats.record_extract(self.payload.len());
        taken
    }

    /// The resident `ValidFrom` column, in ticks.
    #[inline]
    pub fn ts_col(&self) -> &[i64] {
        &self.ts
    }

    /// The resident `ValidTo` column, in ticks.
    #[inline]
    pub fn te_col(&self) -> &[i64] {
        &self.te
    }

    /// Payload of resident tuple `i`.
    #[inline]
    pub fn payload(&self, i: usize) -> &T {
        &self.payload[i]
    }

    /// Number of resident tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Is the workspace empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Lifetime statistics — same accounting as the row layout.
    pub fn stats(&self) -> WorkspaceStats {
        self.stats
    }
}

impl<T: Temporal> GaplessWorkspace<T> {
    /// Insert a state tuple, extracting its endpoints.
    #[inline]
    pub fn insert(&mut self, item: T) {
        let (ts, te) = (item.ts().ticks(), item.te().ticks());
        self.insert_raw(ts, te, item);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::Workspace;
    use tdb_core::TsTuple;

    fn iv(s: i64, e: i64) -> TsTuple {
        TsTuple::interval(s, e).unwrap()
    }

    #[test]
    fn mirrors_row_workspace_stats() {
        // Drive the same insert/gc sequence through both layouts and
        // require bit-identical stats.
        let rows: Vec<TsTuple> = (0..10).map(|i| iv(i, i + 4)).collect();
        let mut row = Workspace::new();
        let mut col = GaplessWorkspace::new();
        for (i, t) in rows.iter().enumerate() {
            row.insert(t.clone());
            col.insert(t.clone());
            if i % 3 == 2 {
                let cut = t.ts().ticks();
                row.gc(|x: &TsTuple| x.te().ticks() >= cut);
                col.gc_te_ge(cut);
            }
        }
        assert_eq!(row.stats(), col.stats());
        assert_eq!(row.len(), col.len());
        // Residence order must match too.
        let row_order: Vec<i64> = row.iter().map(|t| t.ts().ticks()).collect();
        assert_eq!(row_order, col.ts_col());
    }

    #[test]
    fn gc_compacts_in_order() {
        let mut w = GaplessWorkspace::new();
        for i in 0..6 {
            w.insert(iv(i, i + 10));
        }
        w.gc(|ts, _| ts % 2 == 0);
        assert_eq!(w.ts_col(), &[0, 2, 4]);
        assert_eq!(w.stats().discarded, 3);
        assert_eq!(w.stats().resident, 3);
        w.clear_discard();
        assert_eq!(w.stats().discarded, 6);
        assert!(w.is_empty());
    }

    #[test]
    fn extract_preserves_order_and_skips_gc_count() {
        let mut w = GaplessWorkspace::new();
        for i in 0..6 {
            w.insert(iv(i, i + 10));
        }
        let taken = w.extract(|ts, _| ts >= 4);
        assert_eq!(taken, vec![iv(4, 14), iv(5, 15)]);
        assert_eq!(w.len(), 4);
        assert_eq!(w.ts_col(), &[0, 1, 2, 3]);
        assert_eq!(w.stats().discarded, 0);
    }
}
