//! Overlap join and semijoin (§4.2.4, Table 2).
//!
//! Two notions of "overlap" appear in the paper:
//!
//! * [`OverlapMode::Strict`] — Allen's *overlaps* (Figure 2 row 6):
//!   `X.TS < Y.TS ∧ X.TE > Y.TS ∧ X.TE < Y.TE`;
//! * [`OverlapMode::General`] — TQuel's symmetric `overlap` (footnote 6,
//!   the operator the Superstar query uses): the lifespans share a point,
//!   `X.TS < Y.TE ∧ Y.TS < X.TE`.
//!
//! Table 2: the only orderings under which the overlap operators stream
//! efficiently are `(ValidFrom ↑, ValidFrom ↑)` (or its mirror
//! `(ValidTo ↓, ValidTo ↓)` — obtained here by time reversal in the algebra
//! layer). [`OverlapJoin`] keeps both state sets of Table 2's state (a);
//! [`OverlapSemijoin`] in general mode needs **only the two input buffers**
//! (state (b)), while strict mode degrades to a sweep with state.

use crate::metrics::OpMetrics;
use crate::progress::Progress;
use crate::read_policy::{Advance, PolicyState, ReadPolicy};
use crate::required::{check_stream_order, RequiredOrder, StreamOpKind};
use crate::stream::TupleStream;
use crate::workspace::{Workspace, WorkspaceStats};
use std::collections::VecDeque;
use tdb_core::{Period, StreamOrder, TdbError, TdbResult, Temporal};

/// Which overlap predicate the operator evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverlapMode {
    /// Allen's asymmetric *overlaps* (Figure 2 row 6).
    Strict,
    /// TQuel's symmetric `overlap` (paper footnote 6) — intervals intersect.
    General,
}

impl OverlapMode {
    /// Evaluate the predicate `x <overlap> y`.
    #[inline]
    pub fn matches(self, x: &Period, y: &Period) -> bool {
        match self {
            OverlapMode::Strict => x.allen_overlaps(y),
            OverlapMode::General => x.overlaps(y),
        }
    }
}

/// Overlap join over two `ValidFrom ↑` streams.
pub struct OverlapJoin<X: TupleStream, Y: TupleStream>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    x: X,
    y: Y,
    mode: OverlapMode,
    x_buf: Option<X::Item>,
    y_buf: Option<Y::Item>,
    state_x: Workspace<X::Item>,
    state_y: Workspace<Y::Item>,
    pending: VecDeque<(X::Item, Y::Item)>,
    policy: ReadPolicy,
    policy_state: PolicyState,
    metrics: OpMetrics,
    progress: Option<Progress>,
    started: bool,
}

impl<X: TupleStream, Y: TupleStream> RequiredOrder for OverlapJoin<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    const KIND: StreamOpKind = StreamOpKind::OverlapJoin;
}

impl<X: TupleStream, Y: TupleStream> OverlapJoin<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    /// Build the operator over `ValidFrom ↑` inputs.
    pub fn new(x: X, y: Y, mode: OverlapMode, policy: ReadPolicy) -> TdbResult<Self> {
        let req = Self::KIND.requirement();
        check_stream_order(&x, req.left(), req.operator, "X")?;
        check_stream_order(&y, req.right(), req.operator, "Y")?;
        Ok(OverlapJoin {
            x,
            y,
            mode,
            x_buf: None,
            y_buf: None,
            state_x: Workspace::new(),
            state_y: Workspace::new(),
            pending: VecDeque::new(),
            policy,
            policy_state: PolicyState::default(),
            metrics: OpMetrics {
                passes: 1,
                ..OpMetrics::default()
            },
            progress: None,
            started: false,
        })
    }

    /// Attach a shared [`Progress`] handle: the operator publishes its
    /// monotonic admitted/GC'd/emitted totals into it on every `next()`
    /// call, so a live subscriber can observe progress mid-run.
    pub fn with_progress(mut self, progress: &Progress) -> Self {
        self.progress = Some(progress.clone());
        self
    }

    fn publish_progress(&self) {
        if let Some(p) = &self.progress {
            let gc = self.state_x.stats().discarded + self.state_y.stats().discarded;
            p.publish(
                self.metrics.read_total() as u64,
                gc as u64,
                self.metrics.emitted as u64,
            );
        }
    }

    /// Execution metrics.
    pub fn metrics(&self) -> OpMetrics {
        self.metrics
    }

    /// Workspace statistics for the (X, Y) state sets — Table 2 state (a).
    pub fn workspace(&self) -> (WorkspaceStats, WorkspaceStats) {
        (self.state_x.stats(), self.state_y.stats())
    }

    /// Combined maximum resident state tuples.
    pub fn max_workspace(&self) -> usize {
        self.state_x.stats().max_resident + self.state_y.stats().max_resident
    }

    fn refill_x(&mut self) -> TdbResult<()> {
        self.x_buf = self.x.next()?;
        if self.x_buf.is_some() {
            self.metrics.read_left += 1;
        }
        Ok(())
    }

    fn refill_y(&mut self) -> TdbResult<()> {
        self.y_buf = self.y.next()?;
        if self.y_buf.is_some() {
            self.metrics.read_right += 1;
        }
        Ok(())
    }

    /// GC keyed off the buffered tuples.
    ///
    /// General mode: `x` is dead once `x.TE ≤ y_b.TS` (no future `y` starts
    /// inside it) and symmetrically for `y`. Strict mode: the same cutoff
    /// kills `x` (Allen overlap needs `y.TS < x.TE`), while `y` is dead once
    /// `y.TS ≤ x_b.TS` (needs a *later-starting*… rather *earlier-starting*
    /// x: `x.TS < y.TS`, and future x only start later).
    fn gc_phase(&mut self) {
        match &self.y_buf {
            Some(yb) => {
                let cutoff = yb.ts();
                self.state_x.gc(|x| x.te() > cutoff);
            }
            None if self.started => self.state_x.gc(|_| false),
            None => {}
        }
        match &self.x_buf {
            Some(xb) => {
                let cutoff = xb.ts();
                match self.mode {
                    OverlapMode::General => self.state_y.gc(|y| y.te() > cutoff),
                    OverlapMode::Strict => self.state_y.gc(|y| y.ts() > cutoff),
                }
            }
            None if self.started => self.state_y.gc(|_| false),
            None => {}
        }
    }

    fn process_x(&mut self) -> TdbResult<()> {
        let Some(x) = self.x_buf.take() else {
            return Err(TdbError::Eval(
                "overlap-join advanced an empty X buffer".into(),
            ));
        };
        let xp = x.period();
        for y in &self.state_y {
            self.metrics.comparisons += 1;
            if self.mode.matches(&xp, &y.period()) {
                self.pending.push_back((x.clone(), y.clone()));
            }
        }
        self.state_x.insert(x);
        self.refill_x()?;
        self.gc_phase();
        Ok(())
    }

    fn process_y(&mut self) -> TdbResult<()> {
        let Some(y) = self.y_buf.take() else {
            return Err(TdbError::Eval(
                "overlap-join advanced an empty Y buffer".into(),
            ));
        };
        let yp = y.period();
        for x in &self.state_x {
            self.metrics.comparisons += 1;
            if self.mode.matches(&x.period(), &yp) {
                self.pending.push_back((x.clone(), y.clone()));
            }
        }
        self.state_y.insert(y);
        self.refill_y()?;
        self.gc_phase();
        Ok(())
    }
}

impl<X: TupleStream, Y: TupleStream> TupleStream for OverlapJoin<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    type Item = (X::Item, Y::Item);

    fn next(&mut self) -> TdbResult<Option<Self::Item>> {
        let out = self.next_inner();
        self.publish_progress();
        out
    }

    fn order(&self) -> Option<StreamOrder> {
        None
    }
}

impl<X: TupleStream, Y: TupleStream> OverlapJoin<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    fn next_inner(&mut self) -> TdbResult<Option<(X::Item, Y::Item)>> {
        loop {
            if let Some(pair) = self.pending.pop_front() {
                self.metrics.emitted += 1;
                return Ok(Some(pair));
            }
            if !self.started {
                self.started = true;
                self.refill_x()?;
                self.refill_y()?;
            }
            match (&self.x_buf, &self.y_buf) {
                (None, None) => return Ok(None),
                (Some(_), None) => {
                    if self.state_y.is_empty() {
                        return Ok(None);
                    }
                    self.process_x()?;
                }
                (None, Some(_)) => {
                    if self.state_x.is_empty() {
                        return Ok(None);
                    }
                    self.process_y()?;
                }
                (Some(x), Some(y)) => {
                    let d = self.policy.decide(
                        &mut self.policy_state,
                        x,
                        y,
                        x.ts(),
                        y.ts(),
                        self.state_x.len(),
                        self.state_y.len(),
                    );
                    match d {
                        Advance::Left => self.process_x()?,
                        Advance::Right => self.process_y()?,
                    }
                }
            }
        }
    }
}

/// Overlap **semijoin**: emits each X tuple overlapping at least one Y
/// tuple.
///
/// In [`OverlapMode::General`] this is the two-buffer merge of Table 2
/// state (b): since general overlap is monotone in both sort keys, the scan
/// advances whichever buffer ends first and never stores a tuple. In
/// [`OverlapMode::Strict`] a sweep with state is required; we reuse the
/// join machinery with emit-once extraction.
pub struct OverlapSemijoin<X: TupleStream, Y: TupleStream>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    inner: SemiInner<X, Y>,
}

// The General/Allen split is inherent: footnote 6's general overlap needs
// only two buffers while strict Allen overlap carries sweep state.
#[allow(clippy::large_enum_variant)]
enum SemiInner<X: TupleStream, Y: TupleStream>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    General {
        x: X,
        y: Y,
        x_buf: Option<X::Item>,
        y_buf: Option<Y::Item>,
        metrics: OpMetrics,
        started: bool,
    },
    Strict {
        x: X,
        y: Y,
        x_buf: Option<X::Item>,
        y_buf: Option<Y::Item>,
        state_x: Workspace<X::Item>,
        state_y: Workspace<Y::Item>,
        pending: VecDeque<X::Item>,
        policy: ReadPolicy,
        policy_state: PolicyState,
        metrics: OpMetrics,
        started: bool,
    },
}

impl<X: TupleStream, Y: TupleStream> RequiredOrder for OverlapSemijoin<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    const KIND: StreamOpKind = StreamOpKind::OverlapSemijoin;
}

impl<X: TupleStream, Y: TupleStream> OverlapSemijoin<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    /// Build the operator over `ValidFrom ↑` inputs.
    pub fn new(x: X, y: Y, mode: OverlapMode, policy: ReadPolicy) -> TdbResult<Self> {
        let req = Self::KIND.requirement();
        check_stream_order(&x, req.left(), req.operator, "X")?;
        check_stream_order(&y, req.right(), req.operator, "Y")?;
        let metrics = OpMetrics {
            passes: 1,
            ..OpMetrics::default()
        };
        let inner = match mode {
            OverlapMode::General => SemiInner::General {
                x,
                y,
                x_buf: None,
                y_buf: None,
                metrics,
                started: false,
            },
            OverlapMode::Strict => SemiInner::Strict {
                x,
                y,
                x_buf: None,
                y_buf: None,
                state_x: Workspace::new(),
                state_y: Workspace::new(),
                pending: VecDeque::new(),
                policy,
                policy_state: PolicyState::default(),
                metrics,
                started: false,
            },
        };
        Ok(OverlapSemijoin { inner })
    }

    /// Execution metrics.
    pub fn metrics(&self) -> OpMetrics {
        match &self.inner {
            SemiInner::General { metrics, .. } | SemiInner::Strict { metrics, .. } => *metrics,
        }
    }

    /// Maximum resident state tuples (0 in general mode — buffers only).
    pub fn max_workspace(&self) -> usize {
        match &self.inner {
            SemiInner::General { .. } => 0,
            SemiInner::Strict {
                state_x, state_y, ..
            } => state_x.stats().max_resident + state_y.stats().max_resident,
        }
    }

    /// Workspace statistics (empty in general mode — the workspace is the
    /// two input buffers, Table 2 state (b)).
    pub fn workspace(&self) -> WorkspaceStats {
        match &self.inner {
            SemiInner::General { .. } => WorkspaceStats::default(),
            SemiInner::Strict {
                state_x, state_y, ..
            } => state_x.stats().combine_stacked(state_y.stats()),
        }
    }
}

impl<X: TupleStream, Y: TupleStream> TupleStream for OverlapSemijoin<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    type Item = X::Item;

    fn next(&mut self) -> TdbResult<Option<X::Item>> {
        match &mut self.inner {
            SemiInner::General {
                x,
                y,
                x_buf,
                y_buf,
                metrics,
                started,
            } => {
                if !*started {
                    *started = true;
                    *x_buf = x.next()?;
                    if x_buf.is_some() {
                        metrics.read_left += 1;
                    }
                    *y_buf = y.next()?;
                    if y_buf.is_some() {
                        metrics.read_right += 1;
                    }
                }
                loop {
                    let (Some(xb), Some(yb)) = (&*x_buf, &*y_buf) else {
                        return Ok(None);
                    };
                    metrics.comparisons += 1;
                    if xb.period().overlaps(&yb.period()) {
                        let out = xb.clone();
                        *x_buf = x.next()?;
                        if x_buf.is_some() {
                            metrics.read_left += 1;
                        }
                        metrics.emitted += 1;
                        return Ok(Some(out));
                    } else if xb.te() <= yb.ts() {
                        // x ends before y starts; future y start even later:
                        // x can never match — drop it without emitting.
                        *x_buf = x.next()?;
                        if x_buf.is_some() {
                            metrics.read_left += 1;
                        }
                    } else {
                        // y ends at/before x starts; it cannot witness this
                        // or any future x.
                        *y_buf = y.next()?;
                        if y_buf.is_some() {
                            metrics.read_right += 1;
                        }
                    }
                }
            }
            SemiInner::Strict {
                x,
                y,
                x_buf,
                y_buf,
                state_x,
                state_y,
                pending,
                policy,
                policy_state,
                metrics,
                started,
            } => {
                loop {
                    if let Some(out) = pending.pop_front() {
                        metrics.emitted += 1;
                        return Ok(Some(out));
                    }
                    if !*started {
                        *started = true;
                        *x_buf = x.next()?;
                        if x_buf.is_some() {
                            metrics.read_left += 1;
                        }
                        *y_buf = y.next()?;
                        if y_buf.is_some() {
                            metrics.read_right += 1;
                        }
                    }
                    let advance = match (&*x_buf, &*y_buf) {
                        (None, None) => return Ok(None),
                        (Some(_), None) => {
                            if state_y.is_empty() {
                                return Ok(None);
                            }
                            Advance::Left
                        }
                        (None, Some(_)) => {
                            if state_x.is_empty() {
                                return Ok(None);
                            }
                            Advance::Right
                        }
                        (Some(xb), Some(yb)) => policy.decide(
                            policy_state,
                            xb,
                            yb,
                            xb.ts(),
                            yb.ts(),
                            state_x.len(),
                            state_y.len(),
                        ),
                    };
                    match advance {
                        Advance::Left => {
                            let Some(xt) = x_buf.take() else {
                                return Err(TdbError::Eval(
                                    "overlap-semijoin advanced an empty X buffer".into(),
                                ));
                            };
                            let xp = xt.period();
                            metrics.comparisons += state_y.len();
                            if state_y.iter().any(|yt| xp.allen_overlaps(&yt.period())) {
                                pending.push_back(xt);
                            } else {
                                state_x.insert(xt);
                            }
                            *x_buf = x.next()?;
                            if x_buf.is_some() {
                                metrics.read_left += 1;
                            }
                        }
                        Advance::Right => {
                            let Some(yt) = y_buf.take() else {
                                return Err(TdbError::Eval(
                                    "overlap-semijoin advanced an empty Y buffer".into(),
                                ));
                            };
                            let yp = yt.period();
                            metrics.comparisons += state_x.len();
                            let witnessed = state_x.extract(|xt| xt.period().allen_overlaps(&yp));
                            pending.extend(witnessed);
                            state_y.insert(yt);
                            *y_buf = y.next()?;
                            if y_buf.is_some() {
                                metrics.read_right += 1;
                            }
                        }
                    }
                    // GC keyed off buffers.
                    match &*y_buf {
                        Some(yb) => {
                            let cutoff = yb.ts();
                            state_x.gc(|xt| xt.te() > cutoff);
                        }
                        None => state_x.gc(|_| false),
                    }
                    match &*x_buf {
                        Some(xb) => {
                            let cutoff = xb.ts();
                            state_y.gc(|yt| yt.ts() > cutoff);
                        }
                        None => state_y.gc(|_| false),
                    }
                }
            }
        }
    }

    fn order(&self) -> Option<StreamOrder> {
        match self.inner {
            // General mode emits a subsequence of the X input.
            SemiInner::General { .. } => Some(StreamOrder::TS_ASC),
            SemiInner::Strict { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::from_sorted_vec;
    use proptest::prelude::*;
    use tdb_core::TsTuple;

    fn iv(s: i64, e: i64) -> TsTuple {
        TsTuple::interval(s, e).unwrap()
    }

    fn canon_pairs(mut v: Vec<(TsTuple, TsTuple)>) -> Vec<(TsTuple, TsTuple)> {
        v.sort_by_key(|(x, y)| {
            (
                x.ts().ticks(),
                x.te().ticks(),
                y.ts().ticks(),
                y.te().ticks(),
            )
        });
        v
    }

    fn canon(mut v: Vec<TsTuple>) -> Vec<TsTuple> {
        v.sort_by_key(|t| (t.ts().ticks(), t.te().ticks()));
        v
    }

    fn join_oracle(xs: &[TsTuple], ys: &[TsTuple], mode: OverlapMode) -> Vec<(TsTuple, TsTuple)> {
        let mut out = Vec::new();
        for x in xs {
            for y in ys {
                if mode.matches(&x.period, &y.period) {
                    out.push((x.clone(), y.clone()));
                }
            }
        }
        canon_pairs(out)
    }

    fn semi_oracle(xs: &[TsTuple], ys: &[TsTuple], mode: OverlapMode) -> Vec<TsTuple> {
        xs.iter()
            .filter(|x| ys.iter().any(|y| mode.matches(&x.period, &y.period)))
            .cloned()
            .collect()
    }

    fn run_join(
        mut xs: Vec<TsTuple>,
        mut ys: Vec<TsTuple>,
        mode: OverlapMode,
        policy: ReadPolicy,
    ) -> Vec<(TsTuple, TsTuple)> {
        StreamOrder::TS_ASC.sort(&mut xs);
        StreamOrder::TS_ASC.sort(&mut ys);
        let x = from_sorted_vec(xs, StreamOrder::TS_ASC).unwrap();
        let y = from_sorted_vec(ys, StreamOrder::TS_ASC).unwrap();
        let mut op = OverlapJoin::new(x, y, mode, policy).unwrap();
        canon_pairs(op.collect_vec().unwrap())
    }

    fn run_semi(
        mut xs: Vec<TsTuple>,
        mut ys: Vec<TsTuple>,
        mode: OverlapMode,
    ) -> (Vec<TsTuple>, usize) {
        StreamOrder::TS_ASC.sort(&mut xs);
        StreamOrder::TS_ASC.sort(&mut ys);
        let x = from_sorted_vec(xs, StreamOrder::TS_ASC).unwrap();
        let y = from_sorted_vec(ys, StreamOrder::TS_ASC).unwrap();
        let mut op = OverlapSemijoin::new(x, y, mode, ReadPolicy::MinKey).unwrap();
        let out = op.collect_vec().unwrap();
        (canon(out), op.max_workspace())
    }

    #[test]
    fn strict_vs_general_semantics() {
        let x = vec![iv(0, 5)];
        let y = vec![iv(3, 8)];
        assert_eq!(
            run_join(
                x.clone(),
                y.clone(),
                OverlapMode::Strict,
                ReadPolicy::MinKey
            )
            .len(),
            1
        );
        // Containment is general-overlap but not strict Allen overlap.
        let x = vec![iv(0, 10)];
        let y = vec![iv(3, 8)];
        assert!(run_join(
            x.clone(),
            y.clone(),
            OverlapMode::Strict,
            ReadPolicy::MinKey
        )
        .is_empty());
        assert_eq!(
            run_join(x, y, OverlapMode::General, ReadPolicy::MinKey).len(),
            1
        );
        // Meets shares no point under half-open semantics.
        let x = vec![iv(0, 3)];
        let y = vec![iv(3, 8)];
        assert!(run_join(x, y, OverlapMode::General, ReadPolicy::MinKey).is_empty());
    }

    #[test]
    fn general_semijoin_uses_buffers_only() {
        let xs: Vec<_> = (0..500).map(|i| iv(i * 2, i * 2 + 3)).collect();
        let ys: Vec<_> = (0..500).map(|i| iv(i * 2 + 1, i * 2 + 4)).collect();
        let (got, ws) = run_semi(xs.clone(), ys.clone(), OverlapMode::General);
        assert_eq!(got, canon(semi_oracle(&xs, &ys, OverlapMode::General)));
        assert_eq!(ws, 0, "Table 2 state (b): workspace = the two buffers");
    }

    #[test]
    fn general_semijoin_unmatched_x_skipped() {
        let xs = vec![iv(0, 2), iv(10, 12)];
        let ys = vec![iv(5, 6)];
        let (got, _) = run_semi(xs, ys, OverlapMode::General);
        assert!(got.is_empty());
    }

    #[test]
    fn rejects_unsorted_inputs() {
        let x = crate::stream::from_vec(vec![iv(0, 5)]);
        let y = from_sorted_vec(vec![iv(0, 5)], StreamOrder::TS_ASC).unwrap();
        assert!(OverlapJoin::new(x, y, OverlapMode::General, ReadPolicy::MinKey).is_err());
    }

    fn arb_intervals(n: usize) -> impl Strategy<Value = Vec<TsTuple>> {
        proptest::collection::vec((-60i64..60, 1i64..40), 0..n)
            .prop_map(|v| v.into_iter().map(|(s, d)| iv(s, s + d)).collect())
    }

    proptest! {
        #[test]
        fn join_matches_oracle(xs in arb_intervals(40), ys in arb_intervals(40)) {
            for mode in [OverlapMode::Strict, OverlapMode::General] {
                for policy in [ReadPolicy::MinKey, ReadPolicy::Alternate] {
                    prop_assert_eq!(
                        run_join(xs.clone(), ys.clone(), mode, policy),
                        join_oracle(&xs, &ys, mode)
                    );
                }
            }
        }

        #[test]
        fn semijoin_matches_oracle(xs in arb_intervals(40), ys in arb_intervals(40)) {
            for mode in [OverlapMode::Strict, OverlapMode::General] {
                let (got, _) = run_semi(xs.clone(), ys.clone(), mode);
                prop_assert_eq!(got, canon(semi_oracle(&xs, &ys, mode)));
            }
        }
    }
}
