//! Monotonic live-progress counters, readable *while an operator runs*.
//!
//! [`crate::metrics::OpMetrics`] and [`crate::report::OpReport`] describe a
//! finished run: callers snapshot them after the stream is exhausted. A live
//! subscription (crate `tdb-live`) needs the opposite — a handle it can poll
//! mid-run to answer "how many tuples has this standing operator admitted,
//! garbage-collected, and emitted so far, and how far behind the watermark
//! is it?" without waiting for an end-of-stream that may never come.
//!
//! [`Progress`] is that handle: a cheaply clonable bundle of atomic
//! counters. Operators publish into it with [`Progress::publish`] (a
//! monotonic `fetch_max`, since the operator's internal metrics are already
//! running totals); ingestion drivers accumulate into it with the `add_*`
//! methods. Readers take a [`ProgressSnapshot`] at any time.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared monotonic progress counters for one live operator or relation.
///
/// Clones share the same cells, so a driver can hand one handle to an
/// operator and keep the other to poll.
#[derive(Clone, Debug, Default)]
pub struct Progress {
    inner: Arc<Cells>,
}

#[derive(Debug, Default)]
struct Cells {
    admitted: AtomicU64,
    gc_discarded: AtomicU64,
    emitted: AtomicU64,
    watermark_lag: AtomicU64,
}

impl Progress {
    /// A fresh handle with all counters at zero.
    pub fn new() -> Progress {
        Progress::default()
    }

    /// Publish absolute running totals (monotonic: each cell only moves
    /// forward via `fetch_max`). Operators call this with their internal
    /// metrics, which are themselves running totals.
    pub fn publish(&self, admitted: u64, gc_discarded: u64, emitted: u64) {
        self.inner.admitted.fetch_max(admitted, Ordering::Relaxed);
        self.inner
            .gc_discarded
            .fetch_max(gc_discarded, Ordering::Relaxed);
        self.inner.emitted.fetch_max(emitted, Ordering::Relaxed);
    }

    /// Add `n` admitted tuples (for drivers that count increments rather
    /// than totals, e.g. the live ingest path).
    pub fn add_admitted(&self, n: u64) {
        self.inner.admitted.fetch_add(n, Ordering::Relaxed);
    }

    /// Add `n` garbage-collected tuples.
    pub fn add_gc_discarded(&self, n: u64) {
        self.inner.gc_discarded.fetch_add(n, Ordering::Relaxed);
    }

    /// Add `n` emitted tuples.
    pub fn add_emitted(&self, n: u64) {
        self.inner.emitted.fetch_add(n, Ordering::Relaxed);
    }

    /// Set the current watermark lag (a gauge, not a counter: the number of
    /// arrived-but-not-yet-final tuples, or ticks between the newest
    /// arrival and the watermark — the publisher picks the unit).
    pub fn set_watermark_lag(&self, lag: u64) {
        self.inner.watermark_lag.store(lag, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time view of the counters.
    pub fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            admitted: self.inner.admitted.load(Ordering::Relaxed),
            gc_discarded: self.inner.gc_discarded.load(Ordering::Relaxed),
            emitted: self.inner.emitted.load(Ordering::Relaxed),
            watermark_lag: self.inner.watermark_lag.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time reading of a [`Progress`] handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProgressSnapshot {
    /// Tuples the operator has read (admitted) from its inputs so far.
    pub admitted: u64,
    /// Tuples discarded by workspace garbage collection so far.
    pub gc_discarded: u64,
    /// Tuples (or pairs) emitted so far.
    pub emitted: u64,
    /// Current watermark lag (publisher-defined unit; see
    /// [`Progress::set_watermark_lag`]).
    pub watermark_lag: u64,
}

impl fmt::Display for ProgressSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} admitted, {} gc'd, {} emitted, watermark lag {}",
            self.admitted, self.gc_discarded, self.emitted, self.watermark_lag
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_is_monotonic() {
        let p = Progress::new();
        p.publish(10, 2, 5);
        p.publish(7, 1, 3); // stale totals must not move counters backwards
        let s = p.snapshot();
        assert_eq!(s.admitted, 10);
        assert_eq!(s.gc_discarded, 2);
        assert_eq!(s.emitted, 5);
    }

    #[test]
    fn clones_share_cells() {
        let p = Progress::new();
        let q = p.clone();
        q.add_admitted(4);
        q.add_emitted(1);
        q.add_gc_discarded(2);
        q.set_watermark_lag(9);
        let s = p.snapshot();
        assert_eq!(s.admitted, 4);
        assert_eq!(s.emitted, 1);
        assert_eq!(s.gc_discarded, 2);
        assert_eq!(s.watermark_lag, 9);
    }

    #[test]
    fn lag_is_a_gauge() {
        let p = Progress::new();
        p.set_watermark_lag(50);
        p.set_watermark_lag(3); // may decrease
        assert_eq!(p.snapshot().watermark_lag, 3);
        assert!(p.snapshot().to_string().contains("watermark lag 3"));
    }
}
