//! Per-operator execution metrics.

use std::fmt;

/// Counters every stream operator maintains while running.
///
/// Together with [`crate::workspace::WorkspaceStats`] these quantify the
/// paper's §4.1 tradeoff: workspace size vs. sort order vs. passes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpMetrics {
    /// Tuples pulled from the left (X) input.
    pub read_left: usize,
    /// Tuples pulled from the right (Y) input.
    pub read_right: usize,
    /// Predicate evaluations / tuple comparisons performed.
    pub comparisons: usize,
    /// Tuples emitted.
    pub emitted: usize,
    /// Complete passes over stored inputs (1 for single-pass stream
    /// operators; `n` for the inner relation of a nested-loop join).
    pub passes: usize,
}

impl OpMetrics {
    /// Total tuples read from both inputs.
    pub fn read_total(&self) -> usize {
        self.read_left + self.read_right
    }
}

impl fmt::Display for OpMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "read {}+{}, {} comparisons, {} emitted, {} passes",
            self.read_left, self.read_right, self.comparisons, self.emitted, self.passes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_display() {
        let m = OpMetrics {
            read_left: 10,
            read_right: 5,
            comparisons: 40,
            emitted: 3,
            passes: 1,
        };
        assert_eq!(m.read_total(), 15);
        let s = m.to_string();
        assert!(s.contains("read 10+5"));
        assert!(s.contains("3 emitted"));
    }
}
