//! Batched push-mode sweep kernels over columnar [`RowBatch`]es.
//!
//! Each kernel here is the vectorized twin of a row-at-a-time operator:
//!
//! | kernel | row operator | workspace |
//! |---|---|---|
//! | [`BatchContainJoinTsTe`] | [`crate::ContainJoinTsTe`] | gapless X state |
//! | [`BatchOverlapJoin`] | [`crate::OverlapJoin`] | gapless X+Y states |
//! | [`BatchOverlapSemijoin`] | [`crate::OverlapSemijoin`] | none / gapless |
//! | [`BatchContainSemijoinStab`] | [`crate::ContainSemijoinStab`] | buffers only |
//! | [`BatchContainedSemijoinStab`] | [`crate::ContainedSemijoinStab`] | buffers only |
//!
//! The kernels are **push**-driven: the caller feeds batches via
//! [`BatchOp::process_batch_left`] / `_right` when [`BatchOp::wants`] asks
//! for that side, and collects output with [`BatchOp::drain`]; [`drive`]
//! runs that loop over two [`BatchStream`]s. The demand signal makes the
//! kernels consume input exactly as lazily as the pull operators do, which
//! is what keeps their [`OpReport`]s — reads, comparisons, emits, and
//! workspace statistics — **identical** to the row operators' for every
//! batch size. The hot loops, however, run over the dense endpoint columns
//! of [`RowBatch`] and [`GaplessWorkspace`]: branch-light integer
//! comparisons the compiler can unroll and vectorize, with payloads
//! touched only on a match. `tests/batch_equivalence.rs` pins the
//! equivalence; E19 measures the speed difference.

use crate::batch::{BatchStream, RowBatch};
use crate::gapless::GaplessWorkspace;
use crate::metrics::OpMetrics;
use crate::overlap_join::OverlapMode;
use crate::read_policy::{Advance, PolicyState, ReadPolicy};
use crate::report::OpReport;
use crate::workspace::WorkspaceStats;
use std::collections::VecDeque;
use tdb_core::{TdbResult, Temporal, TimePoint};

/// Which input of a two-input kernel a batch belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The X (left) input.
    Left,
    /// The Y (right) input.
    Right,
}

/// What a kernel needs next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wants {
    /// A batch (or end-of-stream notice) for the left input.
    Left,
    /// A batch (or end-of-stream notice) for the right input.
    Right,
    /// Nothing — the kernel has produced all output.
    Done,
}

/// A push-mode batched operator.
///
/// Protocol: while [`BatchOp::wants`] is not [`Wants::Done`], feed the
/// requested side one batch via `process_batch_*` or declare it finished
/// via [`BatchOp::finish`]; collect output with [`BatchOp::drain`] at any
/// point. [`drive`] implements this loop.
pub trait BatchOp {
    /// Left input row type.
    type LeftItem: Temporal + Clone;
    /// Right input row type.
    type RightItem: Temporal + Clone;
    /// Output row type.
    type Out;

    /// Which input the kernel is blocked on.
    fn wants(&self) -> Wants;

    /// Feed a batch of left-input rows.
    fn process_batch_left(&mut self, batch: RowBatch<Self::LeftItem>) -> TdbResult<()>;

    /// Feed a batch of right-input rows.
    fn process_batch_right(&mut self, batch: RowBatch<Self::RightItem>) -> TdbResult<()>;

    /// Declare one input exhausted.
    fn finish(&mut self, side: Side) -> TdbResult<()>;

    /// Take the output produced so far.
    fn drain(&mut self) -> Vec<Self::Out>;

    /// Metrics and workspace statistics — same accounting as the row twin.
    fn report(&self) -> OpReport;
}

/// Run a [`BatchOp`] to completion over two [`BatchStream`]s, honouring its
/// demand signal, and return the full output.
pub fn drive<K, L, R>(op: &mut K, left: &mut L, right: &mut R) -> TdbResult<Vec<K::Out>>
where
    K: BatchOp,
    L: BatchStream<Item = K::LeftItem>,
    R: BatchStream<Item = K::RightItem>,
{
    let mut out = Vec::new();
    drive_each(op, left, right, &mut |chunk| {
        out.extend(chunk);
        Ok(true)
    })?;
    Ok(out)
}

/// Run a [`BatchOp`] like [`drive`], but hand each drained output chunk to
/// `emit` instead of accumulating one result vector. `emit` returning
/// `false` stops the run early (the sink has seen enough); the function
/// then returns `false` too, so callers can distinguish a completed run
/// from a truncated one.
pub fn drive_each<K, L, R>(
    op: &mut K,
    left: &mut L,
    right: &mut R,
    emit: &mut dyn FnMut(Vec<K::Out>) -> TdbResult<bool>,
) -> TdbResult<bool>
where
    K: BatchOp,
    L: BatchStream<Item = K::LeftItem>,
    R: BatchStream<Item = K::RightItem>,
{
    loop {
        let chunk = op.drain();
        if !chunk.is_empty() && !emit(chunk)? {
            return Ok(false);
        }
        match op.wants() {
            Wants::Done => break,
            Wants::Left => match left.next_batch()? {
                Some(b) => op.process_batch_left(b)?,
                None => op.finish(Side::Left)?,
            },
            Wants::Right => match right.next_batch()? {
                Some(b) => op.process_batch_right(b)?,
                None => op.finish(Side::Right)?,
            },
        }
    }
    let chunk = op.drain();
    if !chunk.is_empty() && !emit(chunk)? {
        return Ok(false);
    }
    Ok(true)
}

/// Where a cursor's head stands.
enum Head {
    /// A row is buffered; its `(ts, te)` ticks.
    Row(i64, i64),
    /// The input is exhausted.
    Exhausted,
    /// The queue is empty but the input is not known to be exhausted — the
    /// kernel must suspend and ask the driver for more.
    Starved,
}

/// A read cursor over queued input batches.
///
/// Mirrors the row operators' one-tuple input buffer: `reads` counts a row
/// the first time it becomes the visible head, exactly when the pull
/// operators count their `refill` — so read metrics are batch-size
/// invariant and row-identical, as long as the kernel resolves heads only
/// when the row twin would have refilled.
struct Cursor<T> {
    queue: VecDeque<RowBatch<T>>,
    idx: usize,
    reads: usize,
    counted: bool,
    done: bool,
}

impl<T: Clone> Cursor<T> {
    fn new() -> Cursor<T> {
        Cursor {
            queue: VecDeque::new(),
            idx: 0,
            reads: 0,
            counted: false,
            done: false,
        }
    }

    fn push(&mut self, batch: RowBatch<T>) {
        if !batch.is_empty() {
            self.queue.push_back(batch);
        }
    }

    fn finish(&mut self) {
        self.done = true;
    }

    /// Resolve the head, counting a newly visible row as a read.
    #[inline]
    fn head(&mut self) -> Head {
        loop {
            match self.queue.front() {
                Some(b) if self.idx < b.len() => {
                    if !self.counted {
                        self.reads += 1;
                        self.counted = true;
                    }
                    let (ts, te) = b.endpoints(self.idx);
                    return Head::Row(ts, te);
                }
                Some(_) => {
                    self.queue.pop_front();
                    self.idx = 0;
                }
                None => {
                    return if self.done {
                        Head::Exhausted
                    } else {
                        Head::Starved
                    }
                }
            }
        }
    }

    /// Clone the head payload (head must be resolved to a row).
    fn clone_head(&self) -> T {
        self.queue
            .front()
            // Callers resolve the head before reading it. lint:allow(no-unwrap)
            .expect("resolved head")
            .row(self.idx)
            .clone()
    }

    /// Borrow the head payload (head must be resolved to a row).
    fn head_payload(&self) -> &T {
        // Callers resolve the head before reading it. lint:allow(no-unwrap)
        self.queue.front().expect("resolved head").row(self.idx)
    }

    /// Consume the head row.
    #[inline]
    fn advance(&mut self) {
        self.idx += 1;
        self.counted = false;
    }
}

fn metrics(read_left: usize, read_right: usize, comparisons: usize, emitted: usize) -> OpMetrics {
    OpMetrics {
        read_left,
        read_right,
        comparisons,
        emitted,
        passes: 1,
    }
}

// ---------------------------------------------------------------------------
// Contain-join, (ValidFrom ↑, ValidTo ↑) — batched ContainJoinTsTe.
// ---------------------------------------------------------------------------

/// Batched Contain-join over X sorted `ValidFrom ↑`, Y sorted `ValidTo ↑`
/// (Table 1 state (b)) — the vectorized twin of
/// [`crate::ContainJoinTsTe`]. Y-driven: per y row it GCs the gapless X
/// state on the `x.TE ≥ y.TE` cutoff, admits X rows up to `y.TS` through
/// the same condition, then probes the state with one branch-light pass
/// over the endpoint columns.
pub struct BatchContainJoinTsTe<X: Temporal + Clone, Y: Temporal + Clone> {
    cx: Cursor<X>,
    cy: Cursor<Y>,
    state: GaplessWorkspace<X>,
    cur_y: Option<(i64, i64, Y)>,
    out: Vec<(X, Y)>,
    hits: Vec<u32>,
    comparisons: usize,
    emitted: usize,
    count_only: bool,
    started: bool,
    want: Wants,
}

impl<X: Temporal + Clone, Y: Temporal + Clone> BatchContainJoinTsTe<X, Y> {
    /// An empty kernel awaiting input.
    pub fn new() -> Self {
        BatchContainJoinTsTe {
            cx: Cursor::new(),
            cy: Cursor::new(),
            state: GaplessWorkspace::new(),
            cur_y: None,
            out: Vec::new(),
            hits: Vec::new(),
            comparisons: 0,
            emitted: 0,
            count_only: false,
            started: false,
            want: Wants::Left, // establish the X head first, like refill_x
        }
    }

    /// Count matches instead of materializing pairs: the probe pass sums
    /// hits over the endpoint columns and never touches payloads, so
    /// `report().metrics` stays identical while [`BatchOp::drain`] stays
    /// empty. The compact consumer for count-only sinks.
    pub fn count_only(mut self) -> Self {
        self.count_only = true;
        self
    }

    fn run(&mut self) {
        // The row twin buffers its first X tuple before reading any Y.
        if !self.started {
            if matches!(self.cx.head(), Head::Starved) {
                self.want = Wants::Left;
                return;
            }
            self.started = true;
        }
        loop {
            if self.cur_y.is_none() {
                match self.cy.head() {
                    Head::Starved => {
                        self.want = Wants::Right;
                        return;
                    }
                    Head::Exhausted => {
                        self.want = Wants::Done;
                        return;
                    }
                    Head::Row(yts, yte) => {
                        let y = self.cy.clone_head();
                        self.cy.advance();
                        // GC phase: x.TE < y.TE can contain no current or
                        // future y (paper-corrected rule).
                        self.state.gc_te_ge(yte);
                        self.cur_y = Some((yts, yte, y));
                    }
                }
            }
            let (yts, yte) = {
                // Set by the resolve loop just above. lint:allow(no-unwrap)
                let c = self.cur_y.as_ref().expect("current y");
                (c.0, c.1)
            };
            // Read/admit phase: pull X rows with x.TS < y.TS; the GC
            // condition doubles as the admission filter.
            loop {
                match self.cx.head() {
                    Head::Starved => {
                        self.want = Wants::Left;
                        return;
                    }
                    Head::Exhausted => break,
                    Head::Row(xts, xte) => {
                        self.comparisons += 1;
                        if xts < yts {
                            if xte >= yte {
                                let x = self.cx.clone_head();
                                self.state.insert_raw(xts, xte, x);
                            }
                            self.cx.advance();
                        } else {
                            break;
                        }
                    }
                }
            }
            // Join phase: one pass over the endpoint columns. `cur_y` is
            // still occupied — only this take clears it. lint:allow(no-unwrap)
            let (yts, yte, y) = self.cur_y.take().expect("current y");
            let ts = self.state.ts_col();
            let te = self.state.te_col();
            self.comparisons += ts.len();
            if self.count_only {
                let mut n = 0usize;
                for i in 0..ts.len() {
                    n += usize::from((ts[i] < yts) & (yte < te[i]));
                }
                self.emitted += n;
                let _ = y;
                continue;
            }
            self.hits.clear();
            for i in 0..ts.len() {
                if (ts[i] < yts) & (yte < te[i]) {
                    self.hits.push(i as u32);
                }
            }
            for &i in &self.hits {
                self.out
                    .push((self.state.payload(i as usize).clone(), y.clone()));
                self.emitted += 1;
            }
        }
    }
}

impl<X: Temporal + Clone, Y: Temporal + Clone> Default for BatchContainJoinTsTe<X, Y> {
    fn default() -> Self {
        Self::new()
    }
}

impl<X: Temporal + Clone, Y: Temporal + Clone> BatchOp for BatchContainJoinTsTe<X, Y> {
    type LeftItem = X;
    type RightItem = Y;
    type Out = (X, Y);

    fn wants(&self) -> Wants {
        self.want
    }

    fn process_batch_left(&mut self, batch: RowBatch<X>) -> TdbResult<()> {
        self.cx.push(batch);
        self.run();
        Ok(())
    }

    fn process_batch_right(&mut self, batch: RowBatch<Y>) -> TdbResult<()> {
        self.cy.push(batch);
        self.run();
        Ok(())
    }

    fn finish(&mut self, side: Side) -> TdbResult<()> {
        match side {
            Side::Left => self.cx.finish(),
            Side::Right => self.cy.finish(),
        }
        self.run();
        Ok(())
    }

    fn drain(&mut self) -> Vec<(X, Y)> {
        std::mem::take(&mut self.out)
    }

    fn report(&self) -> OpReport {
        OpReport::new(
            metrics(self.cx.reads, self.cy.reads, self.comparisons, self.emitted),
            self.state.stats(),
        )
    }
}

// ---------------------------------------------------------------------------
// Overlap join — batched OverlapJoin.
// ---------------------------------------------------------------------------

/// Batched Overlap join over two `ValidFrom ↑` inputs (Table 2 state (a))
/// — the vectorized twin of [`crate::OverlapJoin`]. Both state sets live
/// in gapless columns; probes and GC cutoffs are single passes over them.
pub struct BatchOverlapJoin<X: Temporal + Clone, Y: Temporal + Clone> {
    cx: Cursor<X>,
    cy: Cursor<Y>,
    sx: GaplessWorkspace<X>,
    sy: GaplessWorkspace<Y>,
    mode: OverlapMode,
    policy: ReadPolicy,
    policy_state: PolicyState,
    out: Vec<(X, Y)>,
    hits: Vec<u32>,
    comparisons: usize,
    emitted: usize,
    count_only: bool,
    gc_pending: bool,
    want: Wants,
}

impl<X: Temporal + Clone, Y: Temporal + Clone> BatchOverlapJoin<X, Y> {
    /// An empty kernel with the given overlap mode and read policy.
    pub fn new(mode: OverlapMode, policy: ReadPolicy) -> Self {
        BatchOverlapJoin {
            cx: Cursor::new(),
            cy: Cursor::new(),
            sx: GaplessWorkspace::new(),
            sy: GaplessWorkspace::new(),
            mode,
            policy,
            policy_state: PolicyState::default(),
            out: Vec::new(),
            hits: Vec::new(),
            comparisons: 0,
            emitted: 0,
            count_only: false,
            gc_pending: false,
            want: Wants::Left,
        }
    }

    /// Count matches instead of materializing pairs — see
    /// [`BatchContainJoinTsTe::count_only`].
    pub fn count_only(mut self) -> Self {
        self.count_only = true;
        self
    }

    /// GC keyed off the resolved heads — the row twin's `gc_phase`, with
    /// the cutoffs applied as single passes over the endpoint columns.
    fn gc(&mut self, hx: Option<(i64, i64)>, hy: Option<(i64, i64)>) {
        match hy {
            Some((yts, _)) => self.sx.gc_te_gt(yts),
            None => self.sx.clear_discard(),
        }
        match hx {
            Some((xts, _)) => match self.mode {
                OverlapMode::General => self.sy.gc_te_gt(xts),
                OverlapMode::Strict => self.sy.gc_ts_gt(xts),
            },
            None => self.sy.clear_discard(),
        }
    }

    fn process_x(&mut self, xts: i64, xte: i64) {
        let x = self.cx.clone_head();
        self.cx.advance();
        let (ts, te) = (self.sy.ts_col(), self.sy.te_col());
        self.comparisons += ts.len();
        if self.count_only {
            let mut n = 0usize;
            match self.mode {
                OverlapMode::General => {
                    for i in 0..ts.len() {
                        n += usize::from((xts < te[i]) & (ts[i] < xte));
                    }
                }
                OverlapMode::Strict => {
                    for i in 0..ts.len() {
                        n += usize::from((xts < ts[i]) & (xte > ts[i]) & (xte < te[i]));
                    }
                }
            }
            self.emitted += n;
            self.sx.insert_raw(xts, xte, x);
            return;
        }
        self.hits.clear();
        match self.mode {
            OverlapMode::General => {
                for i in 0..ts.len() {
                    if (xts < te[i]) & (ts[i] < xte) {
                        self.hits.push(i as u32);
                    }
                }
            }
            OverlapMode::Strict => {
                for i in 0..ts.len() {
                    if (xts < ts[i]) & (xte > ts[i]) & (xte < te[i]) {
                        self.hits.push(i as u32);
                    }
                }
            }
        }
        for &i in &self.hits {
            self.out
                .push((x.clone(), self.sy.payload(i as usize).clone()));
            self.emitted += 1;
        }
        self.sx.insert_raw(xts, xte, x);
    }

    fn process_y(&mut self, yts: i64, yte: i64) {
        let y = self.cy.clone_head();
        self.cy.advance();
        let (ts, te) = (self.sx.ts_col(), self.sx.te_col());
        self.comparisons += ts.len();
        if self.count_only {
            let mut n = 0usize;
            match self.mode {
                OverlapMode::General => {
                    for i in 0..ts.len() {
                        n += usize::from((ts[i] < yte) & (yts < te[i]));
                    }
                }
                OverlapMode::Strict => {
                    for i in 0..ts.len() {
                        n += usize::from((ts[i] < yts) & (te[i] > yts) & (te[i] < yte));
                    }
                }
            }
            self.emitted += n;
            self.sy.insert_raw(yts, yte, y);
            return;
        }
        self.hits.clear();
        match self.mode {
            OverlapMode::General => {
                for i in 0..ts.len() {
                    if (ts[i] < yte) & (yts < te[i]) {
                        self.hits.push(i as u32);
                    }
                }
            }
            OverlapMode::Strict => {
                for i in 0..ts.len() {
                    if (ts[i] < yts) & (te[i] > yts) & (te[i] < yte) {
                        self.hits.push(i as u32);
                    }
                }
            }
        }
        for &i in &self.hits {
            self.out
                .push((self.sx.payload(i as usize).clone(), y.clone()));
            self.emitted += 1;
        }
        self.sy.insert_raw(yts, yte, y);
    }

    fn run(&mut self) {
        loop {
            let hx = match self.cx.head() {
                Head::Starved => {
                    self.want = Wants::Left;
                    return;
                }
                Head::Exhausted => None,
                Head::Row(a, b) => Some((a, b)),
            };
            let hy = match self.cy.head() {
                Head::Starved => {
                    self.want = Wants::Right;
                    return;
                }
                Head::Exhausted => None,
                Head::Row(a, b) => Some((a, b)),
            };
            // The row twin GCs right after refilling inside process_*; with
            // heads now resolved to the same tuples, running it here is
            // observationally identical.
            if self.gc_pending {
                self.gc(hx, hy);
                self.gc_pending = false;
            }
            match (hx, hy) {
                (None, None) => {
                    self.want = Wants::Done;
                    return;
                }
                (Some((xts, xte)), None) => {
                    if self.sy.is_empty() {
                        self.want = Wants::Done;
                        return;
                    }
                    self.process_x(xts, xte);
                }
                (None, Some((yts, yte))) => {
                    if self.sx.is_empty() {
                        self.want = Wants::Done;
                        return;
                    }
                    self.process_y(yts, yte);
                }
                (Some((xts, xte)), Some((yts, yte))) => {
                    let d = self.policy.decide(
                        &mut self.policy_state,
                        self.cx.head_payload(),
                        self.cy.head_payload(),
                        TimePoint::new(xts),
                        TimePoint::new(yts),
                        self.sx.len(),
                        self.sy.len(),
                    );
                    match d {
                        Advance::Left => self.process_x(xts, xte),
                        Advance::Right => self.process_y(yts, yte),
                    }
                }
            }
            self.gc_pending = true;
        }
    }
}

impl<X: Temporal + Clone, Y: Temporal + Clone> BatchOp for BatchOverlapJoin<X, Y> {
    type LeftItem = X;
    type RightItem = Y;
    type Out = (X, Y);

    fn wants(&self) -> Wants {
        self.want
    }

    fn process_batch_left(&mut self, batch: RowBatch<X>) -> TdbResult<()> {
        self.cx.push(batch);
        self.run();
        Ok(())
    }

    fn process_batch_right(&mut self, batch: RowBatch<Y>) -> TdbResult<()> {
        self.cy.push(batch);
        self.run();
        Ok(())
    }

    fn finish(&mut self, side: Side) -> TdbResult<()> {
        match side {
            Side::Left => self.cx.finish(),
            Side::Right => self.cy.finish(),
        }
        self.run();
        Ok(())
    }

    fn drain(&mut self) -> Vec<(X, Y)> {
        std::mem::take(&mut self.out)
    }

    fn report(&self) -> OpReport {
        OpReport::new(
            metrics(self.cx.reads, self.cy.reads, self.comparisons, self.emitted),
            self.sx.stats().combine_stacked(self.sy.stats()),
        )
    }
}

// ---------------------------------------------------------------------------
// Overlap semijoin — batched OverlapSemijoin.
// ---------------------------------------------------------------------------

// One kernel exists per operator instance and is never stored in a
// collection, so the General/Strict size gap costs nothing; boxing the
// Strict state would put an indirection on the hot sweep path instead.
#[allow(clippy::large_enum_variant)]
enum SemiKernel<X: Temporal + Clone, Y: Temporal + Clone> {
    General,
    Strict {
        sx: GaplessWorkspace<X>,
        sy: GaplessWorkspace<Y>,
        policy: ReadPolicy,
        policy_state: PolicyState,
        gc_pending: bool,
    },
}

/// Batched Overlap **semijoin** — the vectorized twin of
/// [`crate::OverlapSemijoin`]. General mode is the two-buffer merge of
/// Table 2 state (b) (zero workspace); strict Allen mode sweeps with
/// gapless state and emit-once extraction.
pub struct BatchOverlapSemijoin<X: Temporal + Clone, Y: Temporal + Clone> {
    cx: Cursor<X>,
    cy: Cursor<Y>,
    kernel: SemiKernel<X, Y>,
    out: Vec<X>,
    comparisons: usize,
    emitted: usize,
    started: bool,
    want: Wants,
}

impl<X: Temporal + Clone, Y: Temporal + Clone> BatchOverlapSemijoin<X, Y> {
    /// An empty kernel with the given overlap mode and read policy.
    pub fn new(mode: OverlapMode, policy: ReadPolicy) -> Self {
        let kernel = match mode {
            OverlapMode::General => SemiKernel::General,
            OverlapMode::Strict => SemiKernel::Strict {
                sx: GaplessWorkspace::new(),
                sy: GaplessWorkspace::new(),
                policy,
                policy_state: PolicyState::default(),
                gc_pending: false,
            },
        };
        BatchOverlapSemijoin {
            cx: Cursor::new(),
            cy: Cursor::new(),
            kernel,
            out: Vec::new(),
            comparisons: 0,
            emitted: 0,
            started: false,
            want: Wants::Left,
        }
    }

    fn run(&mut self) {
        if !self.started {
            // The row twin buffers one tuple from each input up front.
            if matches!(self.cx.head(), Head::Starved) {
                self.want = Wants::Left;
                return;
            }
            if matches!(self.cy.head(), Head::Starved) {
                self.want = Wants::Right;
                return;
            }
            self.started = true;
        }
        match &mut self.kernel {
            SemiKernel::General => loop {
                let hx = match self.cx.head() {
                    Head::Starved => {
                        self.want = Wants::Left;
                        return;
                    }
                    Head::Exhausted => None,
                    Head::Row(a, b) => Some((a, b)),
                };
                let hy = match self.cy.head() {
                    Head::Starved => {
                        self.want = Wants::Right;
                        return;
                    }
                    Head::Exhausted => None,
                    Head::Row(a, b) => Some((a, b)),
                };
                let (Some((xts, xte)), Some((yts, yte))) = (hx, hy) else {
                    self.want = Wants::Done;
                    return;
                };
                self.comparisons += 1;
                if (xts < yte) & (yts < xte) {
                    self.out.push(self.cx.clone_head());
                    self.emitted += 1;
                    self.cx.advance();
                } else if xte <= yts {
                    // x ends before y starts; future y start even later.
                    self.cx.advance();
                } else {
                    // y cannot witness this or any future x.
                    self.cy.advance();
                }
            },
            SemiKernel::Strict {
                sx,
                sy,
                policy,
                policy_state,
                gc_pending,
            } => loop {
                let hx = match self.cx.head() {
                    Head::Starved => {
                        self.want = Wants::Left;
                        return;
                    }
                    Head::Exhausted => None,
                    Head::Row(a, b) => Some((a, b)),
                };
                let hy = match self.cy.head() {
                    Head::Starved => {
                        self.want = Wants::Right;
                        return;
                    }
                    Head::Exhausted => None,
                    Head::Row(a, b) => Some((a, b)),
                };
                if *gc_pending {
                    match hy {
                        Some((yts, _)) => sx.gc_te_gt(yts),
                        None => sx.clear_discard(),
                    }
                    match hx {
                        Some((xts, _)) => sy.gc_ts_gt(xts),
                        None => sy.clear_discard(),
                    }
                    *gc_pending = false;
                }
                let advance = match (hx, hy) {
                    (None, None) => {
                        self.want = Wants::Done;
                        return;
                    }
                    (Some(_), None) => {
                        if sy.is_empty() {
                            self.want = Wants::Done;
                            return;
                        }
                        Advance::Left
                    }
                    (None, Some(_)) => {
                        if sx.is_empty() {
                            self.want = Wants::Done;
                            return;
                        }
                        Advance::Right
                    }
                    (Some((xts, _)), Some((yts, _))) => policy.decide(
                        policy_state,
                        self.cx.head_payload(),
                        self.cy.head_payload(),
                        TimePoint::new(xts),
                        TimePoint::new(yts),
                        sx.len(),
                        sy.len(),
                    ),
                };
                match advance {
                    Advance::Left => {
                        // The decide table only yields Left when hx is
                        // Some. lint:allow(no-unwrap)
                        let (xts, xte) = hx.expect("left head");
                        let x = self.cx.clone_head();
                        self.cx.advance();
                        self.comparisons += sy.len();
                        let (ts, te) = (sy.ts_col(), sy.te_col());
                        let witnessed =
                            (0..ts.len()).any(|i| (xts < ts[i]) & (xte > ts[i]) & (xte < te[i]));
                        if witnessed {
                            self.out.push(x);
                            self.emitted += 1;
                        } else {
                            sx.insert_raw(xts, xte, x);
                        }
                    }
                    Advance::Right => {
                        // The decide table only yields Right when hy is
                        // Some. lint:allow(no-unwrap)
                        let (yts, yte) = hy.expect("right head");
                        let y = self.cy.clone_head();
                        self.cy.advance();
                        self.comparisons += sx.len();
                        let witnessed = sx.extract(|ts, te| (ts < yts) & (te > yts) & (te < yte));
                        self.emitted += witnessed.len();
                        self.out.extend(witnessed);
                        sy.insert_raw(yts, yte, y);
                    }
                }
                *gc_pending = true;
            },
        }
    }
}

impl<X: Temporal + Clone, Y: Temporal + Clone> BatchOp for BatchOverlapSemijoin<X, Y> {
    type LeftItem = X;
    type RightItem = Y;
    type Out = X;

    fn wants(&self) -> Wants {
        self.want
    }

    fn process_batch_left(&mut self, batch: RowBatch<X>) -> TdbResult<()> {
        self.cx.push(batch);
        self.run();
        Ok(())
    }

    fn process_batch_right(&mut self, batch: RowBatch<Y>) -> TdbResult<()> {
        self.cy.push(batch);
        self.run();
        Ok(())
    }

    fn finish(&mut self, side: Side) -> TdbResult<()> {
        match side {
            Side::Left => self.cx.finish(),
            Side::Right => self.cy.finish(),
        }
        self.run();
        Ok(())
    }

    fn drain(&mut self) -> Vec<X> {
        std::mem::take(&mut self.out)
    }

    fn report(&self) -> OpReport {
        let workspace = match &self.kernel {
            SemiKernel::General => WorkspaceStats::default(),
            SemiKernel::Strict { sx, sy, .. } => sx.stats().combine_stacked(sy.stats()),
        };
        OpReport::new(
            metrics(self.cx.reads, self.cy.reads, self.comparisons, self.emitted),
            workspace,
        )
    }
}

// ---------------------------------------------------------------------------
// Stab semijoins — batched ContainSemijoinStab / ContainedSemijoinStab.
// ---------------------------------------------------------------------------

/// Which side of the containment a batched stab scan emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StabEmit {
    Container,
    Containee,
}

/// The shared batched two-buffer stab scan (§4.2.2 / Figure 6): containers
/// on the left (`ValidFrom ↑`), containees on the right (`ValidTo ↑`),
/// zero workspace beyond the two cursor heads.
pub struct BatchStabScan<C: Temporal + Clone, E: Temporal + Clone> {
    cc: Cursor<C>,
    ce: Cursor<E>,
    emit: StabEmit,
    out_c: Vec<C>,
    out_e: Vec<E>,
    comparisons: usize,
    emitted: usize,
    started: bool,
    want: Wants,
}

impl<C: Temporal + Clone, E: Temporal + Clone> BatchStabScan<C, E> {
    fn with_emit(emit: StabEmit) -> Self {
        BatchStabScan {
            cc: Cursor::new(),
            ce: Cursor::new(),
            emit,
            out_c: Vec::new(),
            out_e: Vec::new(),
            comparisons: 0,
            emitted: 0,
            started: false,
            want: Wants::Left,
        }
    }

    fn run(&mut self) {
        if !self.started {
            if matches!(self.cc.head(), Head::Starved) {
                self.want = Wants::Left;
                return;
            }
            if matches!(self.ce.head(), Head::Starved) {
                self.want = Wants::Right;
                return;
            }
            self.started = true;
        }
        loop {
            let hc = match self.cc.head() {
                Head::Starved => {
                    self.want = Wants::Left;
                    return;
                }
                Head::Exhausted => None,
                Head::Row(a, b) => Some((a, b)),
            };
            let he = match self.ce.head() {
                Head::Starved => {
                    self.want = Wants::Right;
                    return;
                }
                Head::Exhausted => None,
                Head::Row(a, b) => Some((a, b)),
            };
            let (Some((cts, cte)), Some((ets, ete))) = (hc, he) else {
                self.want = Wants::Done;
                return;
            };
            self.comparisons += 1;
            if ets <= cts {
                // Dead containee: no current or future container starts
                // before it.
                self.ce.advance();
            } else if ete < cte {
                // Match: c.TS < e.TS ∧ e.TE < c.TE — emit once per
                // container or containee depending on configuration.
                match self.emit {
                    StabEmit::Container => {
                        self.out_c.push(self.cc.clone_head());
                        self.emitted += 1;
                        self.cc.advance();
                    }
                    StabEmit::Containee => {
                        self.out_e.push(self.ce.clone_head());
                        self.emitted += 1;
                        self.ce.advance();
                    }
                }
            } else {
                // This container can contain no current or future containee.
                self.cc.advance();
            }
        }
    }

    fn push_left(&mut self, batch: RowBatch<C>) {
        self.cc.push(batch);
        self.run();
    }

    fn push_right(&mut self, batch: RowBatch<E>) {
        self.ce.push(batch);
        self.run();
    }

    fn finish_side(&mut self, side: Side) {
        match side {
            Side::Left => self.cc.finish(),
            Side::Right => self.ce.finish(),
        }
        self.run();
    }

    fn report(&self) -> OpReport {
        // Table 1 state (d): the workspace is the two cursor heads.
        OpReport::new(
            metrics(self.cc.reads, self.ce.reads, self.comparisons, self.emitted),
            WorkspaceStats::default(),
        )
    }
}

/// Batched `Contain-semijoin(X, Y)` (X: `ValidFrom ↑` containers on the
/// left, Y: `ValidTo ↑` containees on the right) — the vectorized twin of
/// [`crate::ContainSemijoinStab`]. Emits containers.
pub struct BatchContainSemijoinStab<X: Temporal + Clone, Y: Temporal + Clone> {
    scan: BatchStabScan<X, Y>,
}

impl<X: Temporal + Clone, Y: Temporal + Clone> BatchContainSemijoinStab<X, Y> {
    /// An empty kernel awaiting input.
    pub fn new() -> Self {
        BatchContainSemijoinStab {
            scan: BatchStabScan::with_emit(StabEmit::Container),
        }
    }
}

impl<X: Temporal + Clone, Y: Temporal + Clone> Default for BatchContainSemijoinStab<X, Y> {
    fn default() -> Self {
        Self::new()
    }
}

impl<X: Temporal + Clone, Y: Temporal + Clone> BatchOp for BatchContainSemijoinStab<X, Y> {
    type LeftItem = X;
    type RightItem = Y;
    type Out = X;

    fn wants(&self) -> Wants {
        self.scan.want
    }

    fn process_batch_left(&mut self, batch: RowBatch<X>) -> TdbResult<()> {
        self.scan.push_left(batch);
        Ok(())
    }

    fn process_batch_right(&mut self, batch: RowBatch<Y>) -> TdbResult<()> {
        self.scan.push_right(batch);
        Ok(())
    }

    fn finish(&mut self, side: Side) -> TdbResult<()> {
        self.scan.finish_side(side);
        Ok(())
    }

    fn drain(&mut self) -> Vec<X> {
        std::mem::take(&mut self.scan.out_c)
    }

    fn report(&self) -> OpReport {
        self.scan.report()
    }
}

/// Batched `Contained-semijoin(X, Y)` — the vectorized twin of
/// [`crate::ContainedSemijoinStab`]: Y are the containers (left input,
/// `ValidFrom ↑`), X the containees (right input, `ValidTo ↑`); emits the
/// contained X tuples. Note the left/right swap mirrors the row twin,
/// whose `read_left` counts the container (Y) side.
pub struct BatchContainedSemijoinStab<X: Temporal + Clone, Y: Temporal + Clone> {
    scan: BatchStabScan<Y, X>,
}

impl<X: Temporal + Clone, Y: Temporal + Clone> BatchContainedSemijoinStab<X, Y> {
    /// An empty kernel awaiting input.
    pub fn new() -> Self {
        BatchContainedSemijoinStab {
            scan: BatchStabScan::with_emit(StabEmit::Containee),
        }
    }
}

impl<X: Temporal + Clone, Y: Temporal + Clone> Default for BatchContainedSemijoinStab<X, Y> {
    fn default() -> Self {
        Self::new()
    }
}

impl<X: Temporal + Clone, Y: Temporal + Clone> BatchOp for BatchContainedSemijoinStab<X, Y> {
    type LeftItem = Y;
    type RightItem = X;
    type Out = X;

    fn wants(&self) -> Wants {
        self.scan.want
    }

    fn process_batch_left(&mut self, batch: RowBatch<Y>) -> TdbResult<()> {
        self.scan.push_left(batch);
        Ok(())
    }

    fn process_batch_right(&mut self, batch: RowBatch<X>) -> TdbResult<()> {
        self.scan.push_right(batch);
        Ok(())
    }

    fn finish(&mut self, side: Side) -> TdbResult<()> {
        self.scan.finish_side(side);
        Ok(())
    }

    fn drain(&mut self) -> Vec<X> {
        std::mem::take(&mut self.scan.out_e)
    }

    fn report(&self) -> OpReport {
        self.scan.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::VecBatchStream;
    use crate::report::{Instrumented, OpConfig};
    use crate::stream::{from_sorted_vec, TupleStream};
    use tdb_core::{StreamOrder, TsTuple};

    fn iv(s: i64, e: i64) -> TsTuple {
        TsTuple::interval(s, e).unwrap()
    }

    fn sorted(mut v: Vec<TsTuple>, o: StreamOrder) -> Vec<TsTuple> {
        o.sort(&mut v);
        v
    }

    fn batched(items: Vec<TsTuple>, order: StreamOrder, rows: usize) -> VecBatchStream<TsTuple> {
        VecBatchStream::from_sorted_vec(items, order, rows).unwrap()
    }

    fn workload(n: i64) -> (Vec<TsTuple>, Vec<TsTuple>) {
        let xs: Vec<_> = (0..n)
            .map(|i| iv(i * 3 % 97, i * 3 % 97 + 5 + (i % 7) * 11))
            .collect();
        let ys: Vec<_> = (0..n)
            .map(|i| iv(i * 5 % 89, i * 5 % 89 + 1 + (i % 5) * 9))
            .collect();
        (xs, ys)
    }

    /// Batched ContainJoinTsTe matches the row operator exactly — output
    /// sequence and full report — for every batch size.
    #[test]
    fn contain_ts_te_equals_row_operator() {
        let (xs, ys) = workload(120);
        let xs = sorted(xs, StreamOrder::TS_ASC);
        let ys = sorted(ys, StreamOrder::TE_ASC);

        let mut row = OpConfig::new()
            .contain_join_ts_te(
                from_sorted_vec(xs.clone(), StreamOrder::TS_ASC).unwrap(),
                from_sorted_vec(ys.clone(), StreamOrder::TE_ASC).unwrap(),
            )
            .unwrap();
        let row_out = row.collect_vec().unwrap();

        for rows in [1usize, 7, 64, 1024] {
            let mut op = BatchContainJoinTsTe::new();
            let got = drive(
                &mut op,
                &mut batched(xs.clone(), StreamOrder::TS_ASC, rows),
                &mut batched(ys.clone(), StreamOrder::TE_ASC, rows),
            )
            .unwrap();
            assert_eq!(got, row_out, "batch size {rows}");
            assert_eq!(op.report(), row.report(), "batch size {rows}");
        }
    }

    /// Batched OverlapJoin matches the row operator for both modes and
    /// several policies.
    #[test]
    fn overlap_join_equals_row_operator() {
        let (xs, ys) = workload(100);
        let xs = sorted(xs, StreamOrder::TS_ASC);
        let ys = sorted(ys, StreamOrder::TS_ASC);
        for mode in [OverlapMode::General, OverlapMode::Strict] {
            for policy in [ReadPolicy::MinKey, ReadPolicy::Alternate] {
                let cfg = OpConfig::new().with_mode(mode).with_policy(policy);
                let mut row = cfg
                    .overlap_join(
                        from_sorted_vec(xs.clone(), StreamOrder::TS_ASC).unwrap(),
                        from_sorted_vec(ys.clone(), StreamOrder::TS_ASC).unwrap(),
                    )
                    .unwrap();
                let row_out = row.collect_vec().unwrap();
                for rows in [1usize, 13, 256] {
                    let mut op = BatchOverlapJoin::new(mode, policy);
                    let got = drive(
                        &mut op,
                        &mut batched(xs.clone(), StreamOrder::TS_ASC, rows),
                        &mut batched(ys.clone(), StreamOrder::TS_ASC, rows),
                    )
                    .unwrap();
                    assert_eq!(got, row_out, "mode {mode:?} policy {policy:?} rows {rows}");
                    assert_eq!(op.report(), row.report(), "mode {mode:?} rows {rows}");
                }
            }
        }
    }

    #[test]
    fn overlap_semijoin_equals_row_operator() {
        let (xs, ys) = workload(90);
        let xs = sorted(xs, StreamOrder::TS_ASC);
        let ys = sorted(ys, StreamOrder::TS_ASC);
        for mode in [OverlapMode::General, OverlapMode::Strict] {
            let cfg = OpConfig::new().with_mode(mode);
            let mut row = cfg
                .overlap_semijoin(
                    from_sorted_vec(xs.clone(), StreamOrder::TS_ASC).unwrap(),
                    from_sorted_vec(ys.clone(), StreamOrder::TS_ASC).unwrap(),
                )
                .unwrap();
            let row_out = row.collect_vec().unwrap();
            for rows in [1usize, 32, 512] {
                let mut op = BatchOverlapSemijoin::new(mode, ReadPolicy::MinKey);
                let got = drive(
                    &mut op,
                    &mut batched(xs.clone(), StreamOrder::TS_ASC, rows),
                    &mut batched(ys.clone(), StreamOrder::TS_ASC, rows),
                )
                .unwrap();
                assert_eq!(got, row_out, "mode {mode:?} rows {rows}");
                assert_eq!(op.report(), row.report(), "mode {mode:?} rows {rows}");
            }
        }
    }

    #[test]
    fn stab_semijoins_equal_row_operators() {
        let (xs, ys) = workload(110);
        // Contain: X containers TS↑, Y containees TE↑.
        let cx = sorted(xs.clone(), StreamOrder::TS_ASC);
        let ey = sorted(ys.clone(), StreamOrder::TE_ASC);
        let mut row = OpConfig::new()
            .contain_semijoin_stab(
                from_sorted_vec(cx.clone(), StreamOrder::TS_ASC).unwrap(),
                from_sorted_vec(ey.clone(), StreamOrder::TE_ASC).unwrap(),
            )
            .unwrap();
        let row_out = row.collect_vec().unwrap();
        for rows in [1usize, 16, 128] {
            let mut op = BatchContainSemijoinStab::new();
            let got = drive(
                &mut op,
                &mut batched(cx.clone(), StreamOrder::TS_ASC, rows),
                &mut batched(ey.clone(), StreamOrder::TE_ASC, rows),
            )
            .unwrap();
            assert_eq!(got, row_out, "rows {rows}");
            assert_eq!(op.report(), row.report(), "rows {rows}");
        }
        // Contained: X containees TE↑ (right input), Y containers TS↑ (left).
        let ex = sorted(xs, StreamOrder::TE_ASC);
        let cyy = sorted(ys, StreamOrder::TS_ASC);
        let mut row = OpConfig::new()
            .contained_semijoin_stab(
                from_sorted_vec(ex.clone(), StreamOrder::TE_ASC).unwrap(),
                from_sorted_vec(cyy.clone(), StreamOrder::TS_ASC).unwrap(),
            )
            .unwrap();
        let row_out = row.collect_vec().unwrap();
        for rows in [1usize, 16, 128] {
            let mut op = BatchContainedSemijoinStab::new();
            let got = drive(
                &mut op,
                &mut batched(cyy.clone(), StreamOrder::TS_ASC, rows),
                &mut batched(ex.clone(), StreamOrder::TE_ASC, rows),
            )
            .unwrap();
            assert_eq!(got, row_out, "rows {rows}");
            assert_eq!(op.report(), row.report(), "rows {rows}");
        }
    }

    /// Edge cases: empty inputs on either side.
    #[test]
    fn empty_inputs_match_row_reports() {
        let xs = vec![iv(0, 5), iv(1, 9)];
        // Empty Y: the row twin still buffers (reads) the first X tuple.
        let mut row = OpConfig::new()
            .contain_join_ts_te(
                from_sorted_vec(xs.clone(), StreamOrder::TS_ASC).unwrap(),
                from_sorted_vec(Vec::<TsTuple>::new(), StreamOrder::TE_ASC).unwrap(),
            )
            .unwrap();
        assert!(row.collect_vec().unwrap().is_empty());
        let mut op = BatchContainJoinTsTe::<TsTuple, TsTuple>::new();
        let got = drive(
            &mut op,
            &mut batched(xs, StreamOrder::TS_ASC, 4),
            &mut batched(vec![], StreamOrder::TE_ASC, 4),
        )
        .unwrap();
        assert!(got.is_empty());
        assert_eq!(op.report(), row.report());
        assert_eq!(op.report().metrics.read_left, 1);
    }
}
