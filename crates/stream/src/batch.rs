//! Columnar row batches — the unit of work of the vectorized execution
//! path.
//!
//! Piatov et al. (PAPERS.md, cache-efficient sweeping) observe that
//! row-at-a-time pull loops leave sweep operators memory-bound: every
//! `next()` call touches a whole tuple (payload included) just to read two
//! timestamps, and the per-call dispatch dominates once the comparison
//! itself is a single integer compare. A [`RowBatch`] fixes both problems
//! structurally: the `ValidFrom`/`ValidTo` endpoint columns are stored as
//! dense `i64` arrays that stay cache-resident while the sweep runs, and
//! payloads are only touched when a tuple actually matches.
//!
//! [`BatchStream`] is the pull surface (batches instead of rows);
//! [`Batcher`] adapts any row [`TupleStream`]. The push surface —
//! `process_batch` — lives in [`crate::batch_ops`].

use crate::stream::TupleStream;
use tdb_core::{StreamOrder, TdbError, TdbResult, Temporal, TimePoint};

/// Default number of rows per columnar batch. 1024 rows × two `i64`
/// endpoint columns = 16 KiB of sweep keys — half a typical L1d cache,
/// leaving room for the gapless workspace columns.
pub const DEFAULT_BATCH_ROWS: usize = 1024;

/// Upper bound accepted for a configured batch size (engine `\set batch`).
pub const MAX_BATCH_ROWS: usize = 1 << 20;

/// A columnar batch of temporal rows: the `ValidFrom` (TS) and `ValidTo`
/// (TE) endpoints of every row as dense `i64` columns, plus the row
/// payloads in matching positions.
///
/// The endpoint columns are *the* data the sweep loops of
/// [`crate::batch_ops`] iterate; payloads are cloned only on a match.
#[derive(Debug, Clone, Default)]
pub struct RowBatch<T> {
    ts: Vec<i64>,
    te: Vec<i64>,
    payload: Vec<T>,
}

impl<T> RowBatch<T> {
    /// An empty batch with room for `rows` rows.
    pub fn with_capacity(rows: usize) -> RowBatch<T> {
        RowBatch {
            ts: Vec::with_capacity(rows),
            te: Vec::with_capacity(rows),
            payload: Vec::with_capacity(rows),
        }
    }

    /// Number of rows in the batch.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// The `ValidFrom` column, in ticks.
    pub fn ts_ticks(&self) -> &[i64] {
        &self.ts
    }

    /// The `ValidTo` column, in ticks.
    pub fn te_ticks(&self) -> &[i64] {
        &self.te
    }

    /// The payload column.
    pub fn payload(&self) -> &[T] {
        &self.payload
    }

    /// Endpoints of row `i` as `(ts, te)` ticks.
    #[inline]
    pub fn endpoints(&self, i: usize) -> (i64, i64) {
        (self.ts[i], self.te[i])
    }

    /// Payload of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &T {
        &self.payload[i]
    }
}

impl<T: Temporal> RowBatch<T> {
    /// Append a row, splitting its endpoints into the columns.
    pub fn push(&mut self, item: T) {
        self.ts.push(item.ts().ticks());
        self.te.push(item.te().ticks());
        self.payload.push(item);
    }

    /// Build a single batch holding all of `items`.
    pub fn from_rows(items: Vec<T>) -> RowBatch<T> {
        let mut b = RowBatch::with_capacity(items.len());
        for item in items {
            b.push(item);
        }
        b
    }
}

/// A fallible, ordered stream of columnar batches — the batch counterpart
/// of [`TupleStream`].
pub trait BatchStream {
    /// Row payload type.
    type Item;

    /// Pull the next batch, `Ok(None)` at end of stream. Batches are
    /// non-empty.
    fn next_batch(&mut self) -> TdbResult<Option<RowBatch<Self::Item>>>;

    /// The ordering the concatenated rows satisfy, if any.
    fn order(&self) -> Option<StreamOrder>;
}

/// Adapt a row [`TupleStream`] into a [`BatchStream`] of `rows`-row
/// batches.
pub struct Batcher<S: TupleStream> {
    inner: S,
    rows: usize,
}

impl<S: TupleStream> Batcher<S> {
    /// Wrap `inner`, emitting batches of up to `rows` rows (`rows == 0` is
    /// treated as 1).
    pub fn new(inner: S, rows: usize) -> Batcher<S> {
        Batcher {
            inner,
            rows: rows.max(1),
        }
    }
}

impl<S: TupleStream> BatchStream for Batcher<S>
where
    S::Item: Temporal,
{
    type Item = S::Item;

    fn next_batch(&mut self) -> TdbResult<Option<RowBatch<S::Item>>> {
        let mut batch = RowBatch::with_capacity(self.rows);
        while batch.len() < self.rows {
            match self.inner.next()? {
                Some(item) => batch.push(item),
                None => break,
            }
        }
        Ok(if batch.is_empty() { None } else { Some(batch) })
    }

    fn order(&self) -> Option<StreamOrder> {
        self.inner.order()
    }
}

/// A [`BatchStream`] over an owned, already-sorted vector, slicing it into
/// `rows`-row batches without per-row indirection.
pub struct VecBatchStream<T> {
    items: std::vec::IntoIter<T>,
    rows: usize,
    order: Option<StreamOrder>,
}

impl<T: Temporal> VecBatchStream<T> {
    /// Wrap `items`, verifying the claimed `order` up front (like
    /// [`crate::stream::from_sorted_vec`]).
    pub fn from_sorted_vec(
        items: Vec<T>,
        order: StreamOrder,
        rows: usize,
    ) -> TdbResult<VecBatchStream<T>> {
        if let Some(i) = order.first_violation(&items) {
            return Err(TdbError::OrderViolation {
                context: "VecBatchStream",
                detail: format!("claimed {order} violated at index {i}"),
            });
        }
        Ok(VecBatchStream {
            items: items.into_iter(),
            rows: rows.max(1),
            order: Some(order),
        })
    }
}

impl<T: Temporal> BatchStream for VecBatchStream<T> {
    type Item = T;

    fn next_batch(&mut self) -> TdbResult<Option<RowBatch<T>>> {
        let mut batch = RowBatch::with_capacity(self.rows);
        while batch.len() < self.rows {
            match self.items.next() {
                Some(item) => batch.push(item),
                None => break,
            }
        }
        Ok(if batch.is_empty() { None } else { Some(batch) })
    }

    fn order(&self) -> Option<StreamOrder> {
        self.order
    }
}

/// The epoch tick value used when an item's endpoints are needed as plain
/// integers (mirrors [`TimePoint::ticks`], kept here so batch kernels can
/// name it without importing `tdb_core::TimePoint`).
#[inline]
pub fn ticks(p: TimePoint) -> i64 {
    p.ticks()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::from_sorted_vec;
    use tdb_core::TsTuple;

    fn iv(s: i64, e: i64) -> TsTuple {
        TsTuple::interval(s, e).unwrap()
    }

    #[test]
    fn batch_splits_columns() {
        let b = RowBatch::from_rows(vec![iv(0, 5), iv(2, 9)]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.ts_ticks(), &[0, 2]);
        assert_eq!(b.te_ticks(), &[5, 9]);
        assert_eq!(b.endpoints(1), (2, 9));
        assert_eq!(b.row(0), &iv(0, 5));
    }

    #[test]
    fn batcher_chunks_a_row_stream() {
        let rows: Vec<TsTuple> = (0..10).map(|i| iv(i, i + 1)).collect();
        let s = from_sorted_vec(rows, tdb_core::StreamOrder::TS_ASC).unwrap();
        let mut b = Batcher::new(s, 4);
        assert_eq!(b.order(), Some(tdb_core::StreamOrder::TS_ASC));
        let sizes: Vec<usize> =
            std::iter::from_fn(|| b.next_batch().unwrap().map(|x| x.len())).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn vec_batch_stream_validates_order() {
        let bad = VecBatchStream::from_sorted_vec(
            vec![iv(5, 9), iv(0, 1)],
            tdb_core::StreamOrder::TS_ASC,
            8,
        );
        assert!(matches!(bad, Err(TdbError::OrderViolation { .. })));
        let mut ok = VecBatchStream::from_sorted_vec(
            vec![iv(0, 1), iv(5, 9)],
            tdb_core::StreamOrder::TS_ASC,
            1,
        )
        .unwrap();
        let mut n = 0;
        while let Some(batch) = ok.next_batch().unwrap() {
            n += batch.len();
            assert_eq!(batch.len(), 1);
        }
        assert_eq!(n, 2);
    }

    #[test]
    fn zero_rows_is_clamped() {
        let s = from_sorted_vec(vec![iv(0, 1)], tdb_core::StreamOrder::TS_ASC).unwrap();
        let mut b = Batcher::new(s, 0);
        assert_eq!(b.next_batch().unwrap().unwrap().len(), 1);
    }
}
