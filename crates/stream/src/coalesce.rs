//! Coalescing: merging value-equivalent periods (paper §6 extension).
//!
//! The paper's §6 plans "a complete temporal data model" in which query
//! results remain well-formed Time Sequences. The missing primitive is
//! *coalescing*: when consecutive tuples of the same surrogate carry the
//! same value and their lifespans meet or overlap, they denote one fact and
//! should be one tuple. Coalescing is a textbook stream processor: over
//! input grouped by `(surrogate, value)` with periods sorted `ValidFrom ↑`
//! within each group, it needs exactly **one** state tuple — the pending
//! merged period.

use crate::metrics::OpMetrics;
use crate::stream::TupleStream;
use tdb_core::{Period, StreamOrder, TdbError, TdbResult, TsTuple, Value};

/// Coalesce a stream of [`TsTuple`]s.
///
/// Requires input *grouped* by `(surrogate, value)` (all equal pairs
/// adjacent) and sorted on `ValidFrom ↑` within each group; both are
/// verified at runtime. Tuples whose periods meet (`TE = next.TS`) or
/// overlap are merged; the output is one maximal tuple per run.
///
/// ```
/// use tdb_stream::coalesce_relation;
/// use tdb_core::TsTuple;
///
/// let spells = vec![
///     TsTuple::new("Smith", "employed", 0, 5)?,
///     TsTuple::new("Smith", "employed", 5, 9)?,  // meets: same spell
/// ];
/// let merged = coalesce_relation(spells)?;
/// assert_eq!(merged.len(), 1);
/// assert_eq!(merged[0].period, tdb_core::Period::new(0, 9)?);
/// # Ok::<(), tdb_core::TdbError>(())
/// ```
pub struct Coalesce<S: TupleStream<Item = TsTuple>> {
    input: S,
    /// The pending merged tuple — the operator's entire state.
    pending: Option<TsTuple>,
    /// Groups already closed (to detect ungrouped input).
    closed: std::collections::HashSet<(Value, Value)>,
    metrics: OpMetrics,
    done: bool,
}

impl<S: TupleStream<Item = TsTuple>> Coalesce<S> {
    /// Build the operator.
    pub fn new(input: S) -> Coalesce<S> {
        Coalesce {
            input,
            pending: None,
            closed: std::collections::HashSet::new(),
            metrics: OpMetrics {
                passes: 1,
                ..OpMetrics::default()
            },
            done: false,
        }
    }

    /// Execution metrics.
    pub fn metrics(&self) -> OpMetrics {
        self.metrics
    }

    /// Maximum state beyond the input buffer: one pending tuple.
    pub fn max_workspace(&self) -> usize {
        1
    }

    fn close_group(&mut self, finished: TsTuple) -> TdbResult<TsTuple> {
        let key = (finished.surrogate.clone(), finished.value.clone());
        if !self.closed.insert(key) {
            return Err(TdbError::OrderViolation {
                context: "Coalesce",
                detail: format!(
                    "input is not grouped: ({}, {}) reappeared",
                    finished.surrogate, finished.value
                ),
            });
        }
        self.metrics.emitted += 1;
        Ok(finished)
    }
}

impl<S: TupleStream<Item = TsTuple>> TupleStream for Coalesce<S> {
    type Item = TsTuple;

    fn next(&mut self) -> TdbResult<Option<TsTuple>> {
        if self.done {
            return Ok(None);
        }
        loop {
            match self.input.next()? {
                Some(t) => {
                    self.metrics.read_left += 1;
                    match &mut self.pending {
                        Some(p) if p.surrogate == t.surrogate && p.value == t.value => {
                            self.metrics.comparisons += 1;
                            // Same group: verify intra-group TS order.
                            if t.period.start() < p.period.start() {
                                return Err(TdbError::OrderViolation {
                                    context: "Coalesce",
                                    detail: format!(
                                        "group ({}, {}) not sorted on ValidFrom",
                                        t.surrogate, t.value
                                    ),
                                });
                            }
                            if t.period.start() <= p.period.end() {
                                // Meets or overlaps: extend the pending run.
                                let merged = Period::new_unchecked(
                                    p.period.start(),
                                    p.period.end().max_of(t.period.end()),
                                );
                                p.period = merged;
                            } else {
                                // Gap within the group: emit, start anew.
                                let out = std::mem::replace(p, t);
                                self.metrics.emitted += 1;
                                return Ok(Some(out));
                            }
                        }
                        Some(_) => {
                            // Group boundary: the `Some(_)` arm matched on
                            // `pending`.
                            let finished =
                                // lint:allow(no-unwrap)
                                std::mem::replace(self.pending.as_mut().expect("some"), t);
                            let out = self.close_group(finished)?;
                            return Ok(Some(out));
                        }
                        None => self.pending = Some(t),
                    }
                }
                None => {
                    self.done = true;
                    return match self.pending.take() {
                        Some(finished) => Ok(Some(self.close_group(finished)?)),
                        None => Ok(None),
                    };
                }
            }
        }
    }

    fn order(&self) -> Option<StreamOrder> {
        None // grouped, not globally time-ordered
    }
}

/// Convenience: coalesce an in-memory relation, sorting it into the
/// required grouping first. Returns tuples grouped by `(surrogate, value)`
/// in deterministic order.
pub fn coalesce_relation(mut tuples: Vec<TsTuple>) -> TdbResult<Vec<TsTuple>> {
    tuples.sort_by(|a, b| {
        (&a.surrogate, &a.value, a.period.start()).cmp(&(&b.surrogate, &b.value, b.period.start()))
    });
    let mut op = Coalesce::new(crate::stream::from_vec(tuples));
    op.collect_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::from_vec;
    use proptest::prelude::*;
    use tdb_core::Temporal;

    fn t(s: &str, v: &str, from: i64, to: i64) -> TsTuple {
        TsTuple::new(s, v, from, to).unwrap()
    }

    #[test]
    fn merges_meeting_and_overlapping_periods() {
        let input = vec![
            t("Smith", "Associate", 0, 5),
            t("Smith", "Associate", 5, 9),  // meets
            t("Smith", "Associate", 8, 12), // overlaps
        ];
        let mut op = Coalesce::new(from_vec(input));
        let out = op.collect_vec().unwrap();
        assert_eq!(out, vec![t("Smith", "Associate", 0, 12)]);
        assert_eq!(op.max_workspace(), 1);
    }

    #[test]
    fn preserves_gaps_within_a_group() {
        let input = vec![t("S", "A", 0, 3), t("S", "A", 5, 8)];
        let mut op = Coalesce::new(from_vec(input.clone()));
        assert_eq!(op.collect_vec().unwrap(), input);
    }

    #[test]
    fn distinct_values_never_merge() {
        let input = vec![t("S", "Assistant", 0, 5), t("S", "Associate", 5, 9)];
        let mut op = Coalesce::new(from_vec(input.clone()));
        assert_eq!(op.collect_vec().unwrap(), input);
    }

    #[test]
    fn contained_periods_absorb() {
        let input = vec![t("S", "A", 0, 10), t("S", "A", 2, 5)];
        let mut op = Coalesce::new(from_vec(input));
        assert_eq!(op.collect_vec().unwrap(), vec![t("S", "A", 0, 10)]);
    }

    #[test]
    fn detects_ungrouped_and_unsorted_input() {
        let ungrouped = vec![t("S", "A", 0, 3), t("S", "B", 3, 5), t("S", "A", 6, 9)];
        let mut op = Coalesce::new(from_vec(ungrouped));
        let mut saw_err = false;
        loop {
            match op.next() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(TdbError::OrderViolation { .. }) => {
                    saw_err = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(saw_err);

        let unsorted = vec![t("S", "A", 5, 9), t("S", "A", 0, 3)];
        let mut op = Coalesce::new(from_vec(unsorted));
        assert!(matches!(op.next(), Err(TdbError::OrderViolation { .. })));
    }

    #[test]
    fn coalesce_relation_sorts_first() {
        let input = vec![
            t("B", "A", 10, 12),
            t("A", "A", 5, 9),
            t("A", "A", 0, 5),
            t("B", "A", 12, 20),
        ];
        let out = coalesce_relation(input).unwrap();
        assert_eq!(out, vec![t("A", "A", 0, 9), t("B", "A", 10, 20)]);
    }

    proptest! {
        /// Coalescing is semantically lossless: a point is covered by some
        /// input tuple of a (surrogate, value) group iff it is covered by
        /// an output tuple of that group — and output periods of one group
        /// are disjoint and non-adjacent.
        #[test]
        fn coalescing_preserves_coverage(
            periods in proptest::collection::vec((0i64..40, 1i64..10), 1..30)
        ) {
            let input: Vec<TsTuple> = periods
                .iter()
                .map(|(s, d)| t("S", "A", *s, s + d))
                .collect();
            let out = coalesce_relation(input.clone()).unwrap();
            for p in 0..60i64 {
                let covered_in = input.iter().any(|x| x.period.spans(tdb_core::TimePoint(p)));
                let covered_out = out.iter().any(|x| x.period.spans(tdb_core::TimePoint(p)));
                prop_assert_eq!(covered_in, covered_out, "point {}", p);
            }
            // Output is maximal: no two output periods meet or overlap.
            for w in out.windows(2) {
                prop_assert!(w[0].te() < w[1].ts());
            }
        }
    }
}
