//! Time-range partitioned parallel execution with *fringe replication*.
//!
//! The paper's stream operators are single-pass sweeps over sorted inputs.
//! Such a sweep parallelizes along the time axis: split the data span into
//! `K` disjoint, contiguous ranges ([`PartitionSpec`]), run an independent
//! instance of the serial operator over each range, and recombine. Because
//! a tuple's lifespan may cross range boundaries, each tuple is replicated
//! into **every** partition its period intersects — the *fringe* — so each
//! partition locally sees every tuple that could participate in a match
//! inside its range, and per-partition results are exact.
//!
//! Replication creates duplicates, removed deterministically:
//!
//! * **joins** — a matching pair `(x, y)` is emitted only by the *owner*
//!   partition of the intersection start `max(x.TS, y.TS)`. Both periods
//!   span that point, so both tuples are present in the owner partition,
//!   and no other partition emits the pair;
//! * **semijoins** — the left input is tagged with its ordinal in the
//!   sorted input ([`Tagged`]); partitions report witnessed ordinals, and
//!   the K sorted result lists are recombined by an order-preserving K-way
//!   merge with boundary dedup ([`merge_tagged`]), re-emitting the
//!   operator's declared output order.
//!
//! How much work does replication add? By Little's law (paper §6), the
//! expected number of lifespans spanning any time point is `λ·E[D]`, so
//! each of the `K−1` interior boundaries replicates ≈`λ·E[D]` tuples:
//! total extra work is `(K−1)·λ·E[D]` tuples — independent of `n`, and
//! negligible exactly when the paper's workspaces are small.
//!
//! The predicates that partition this way are the *intersection-witnessed*
//! ones: containment and both overlap flavors. `Before`/`After` relate
//! tuples at arbitrary temporal distance (a match shares no time point), so
//! no time-range decomposition localizes them; the planner keeps those
//! serial.

use crate::batch::DEFAULT_BATCH_ROWS;
use crate::dispatch::{run_join_kind, run_semijoin_kind};
use crate::overlap_join::OverlapMode;
use crate::report::{OpConfig, OpReport};
use crate::required::StreamOpKind;
use crate::stream::TupleStream;
use tdb_core::{Period, StreamOrder, TdbError, TdbResult, Temporal, TimePoint};

/// `K` disjoint, contiguous time ranges covering the data span.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSpec {
    ranges: Vec<Period>,
}

impl PartitionSpec {
    /// Split `span` into (at most) `k` contiguous ranges.
    pub fn for_span(span: Period, k: usize) -> PartitionSpec {
        PartitionSpec {
            ranges: span.split_into(k),
        }
    }

    /// A spec covering the hull of every lifespan in `xs` and `ys`;
    /// `None` when both are empty.
    pub fn covering<A: Temporal, B: Temporal>(
        xs: &[A],
        ys: &[B],
        k: usize,
    ) -> Option<PartitionSpec> {
        let hull = xs
            .iter()
            .map(|t| t.period())
            .chain(ys.iter().map(|t| t.period()))
            .reduce(|a, b| a.hull(&b))?;
        Some(PartitionSpec::for_span(hull, k))
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Is the spec empty? (Never true for constructed specs.)
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The `i`-th time range.
    pub fn range(&self, i: usize) -> Period {
        self.ranges[i]
    }

    /// The partition whose range contains `t` (clamped to the first/last
    /// partition for points outside the covered span).
    pub fn owner_of(&self, t: TimePoint) -> usize {
        self.ranges
            .partition_point(|r| r.end() <= t)
            .min(self.ranges.len() - 1)
    }

    /// The contiguous run of partitions whose ranges intersect `p` — the
    /// partitions a tuple with lifespan `p` is replicated into.
    pub fn partitions_for(&self, p: &Period) -> std::ops::Range<usize> {
        let first = self.owner_of(p.start());
        // `end` is exclusive; the last covered point is `end − 1`.
        let last = self.owner_of(TimePoint(p.end().ticks() - 1));
        first..last + 1
    }
}

/// Distribute sorted `items` into per-partition vectors, replicating each
/// tuple into every partition its lifespan intersects. Relative order is
/// preserved, so sorted input yields sorted partitions.
pub fn partition_with_fringe<T: Temporal + Clone>(
    items: &[T],
    spec: &PartitionSpec,
) -> Vec<Vec<T>> {
    let mut parts: Vec<Vec<T>> = (0..spec.len()).map(|_| Vec::new()).collect();
    for item in items {
        for i in spec.partitions_for(&item.period()) {
            parts[i].push(item.clone());
        }
    }
    parts
}

/// A tuple tagged with its ordinal in the (sorted) input relation, used to
/// deduplicate fringe-replicated semijoin outputs across partitions.
#[derive(Debug, Clone, PartialEq)]
pub struct Tagged<T> {
    /// Position in the sorted input.
    pub ordinal: usize,
    /// The underlying tuple.
    pub item: T,
}

impl<T: Temporal> Temporal for Tagged<T> {
    #[inline]
    fn period(&self) -> Period {
        self.item.period()
    }
}

/// Tag each item with its position.
pub fn tag<T>(items: Vec<T>) -> Vec<Tagged<T>> {
    items
        .into_iter()
        .enumerate()
        .map(|(ordinal, item)| Tagged { ordinal, item })
        .collect()
}

/// Order-preserving K-way merge of per-partition semijoin outputs with
/// boundary dedup: each list is merged by ordinal and tuples witnessed in
/// several partitions (fringe tuples) are emitted once. Because ordinals
/// are positions in the sorted input and semijoin outputs are subsequences
/// of their input, the merged output re-emits the declared input order.
pub fn merge_tagged<T: Clone>(parts: Vec<Vec<Tagged<T>>>) -> Vec<T> {
    let mut out = Vec::new();
    let all = merge_tagged_each(parts, usize::MAX, &mut |mut chunk| {
        out.append(&mut chunk);
        Ok(true)
    });
    debug_assert!(matches!(all, Ok((true, _))));
    out
}

/// Push-mode variant of [`merge_tagged`]: the merged, deduplicated output
/// is handed to `emit` in chunks of at most `chunk_rows` rows instead of
/// being collected. Returns `(completed, emitted)` — `completed` is
/// `false` when `emit` asked the merge to stop early, `emitted` counts the
/// rows actually handed over.
pub fn merge_tagged_each<T: Clone>(
    mut parts: Vec<Vec<Tagged<T>>>,
    chunk_rows: usize,
    emit: &mut dyn FnMut(Vec<T>) -> TdbResult<bool>,
) -> TdbResult<(bool, usize)> {
    let chunk_rows = chunk_rows.max(1);
    // The strict overlap semijoin can reorder around its pending queue, so
    // normalize each list before the merge.
    for part in &mut parts {
        part.sort_by_key(|t| t.ordinal);
    }
    let mut cursors = vec![0usize; parts.len()];
    let mut chunk = Vec::new();
    let mut emitted = 0usize;
    let mut last: Option<usize> = None;
    loop {
        let mut best: Option<(usize, usize)> = None; // (ordinal, partition)
        for (i, part) in parts.iter().enumerate() {
            // Skip duplicates of the ordinal just emitted.
            while cursors[i] < part.len() && Some(part[cursors[i]].ordinal) == last {
                cursors[i] += 1;
            }
            if let Some(t) = part.get(cursors[i]) {
                if best.is_none_or(|(o, _)| t.ordinal < o) {
                    best = Some((t.ordinal, i));
                }
            }
        }
        let Some((ordinal, i)) = best else {
            if !chunk.is_empty() {
                emitted += chunk.len();
                if !emit(chunk)? {
                    return Ok((false, emitted));
                }
            }
            return Ok((true, emitted));
        };
        chunk.push(parts[i][cursors[i]].item.clone());
        cursors[i] += 1;
        last = Some(ordinal);
        if chunk.len() >= chunk_rows {
            emitted += chunk.len();
            if !emit(std::mem::take(&mut chunk))? {
                return Ok((false, emitted));
            }
        }
    }
}

/// An order-preserving K-way merge of streams that all satisfy `order`:
/// the output is the sorted interleaving, declared with that order. Ties
/// break toward the lower-indexed input, making the merge deterministic.
pub struct KWayMerge<S: TupleStream>
where
    S::Item: Temporal + Clone,
{
    inputs: Vec<S>,
    bufs: Vec<Option<S::Item>>,
    order: StreamOrder,
    started: bool,
}

impl<S: TupleStream> KWayMerge<S>
where
    S::Item: Temporal + Clone,
{
    /// Build the merge; every input must declare an order satisfying
    /// `order`.
    pub fn new(inputs: Vec<S>, order: StreamOrder) -> TdbResult<Self> {
        for (i, input) in inputs.iter().enumerate() {
            match input.order() {
                Some(o) if o.satisfies(&order) => {}
                other => {
                    return Err(TdbError::UnsupportedOrdering {
                        operator: "KWayMerge",
                        detail: format!(
                            "input {i} declares {:?}, merge requires {order}",
                            other.map(|o| o.to_string())
                        ),
                    })
                }
            }
        }
        let bufs = (0..inputs.len()).map(|_| None).collect();
        Ok(KWayMerge {
            inputs,
            bufs,
            order,
            started: false,
        })
    }
}

impl<S: TupleStream> TupleStream for KWayMerge<S>
where
    S::Item: Temporal + Clone,
{
    type Item = S::Item;

    fn next(&mut self) -> TdbResult<Option<S::Item>> {
        if !self.started {
            self.started = true;
            for i in 0..self.inputs.len() {
                self.bufs[i] = self.inputs[i].next()?;
            }
        }
        let mut best: Option<usize> = None;
        for (i, buf) in self.bufs.iter().enumerate() {
            let Some(item) = buf else { continue };
            // Ties break toward the lower-indexed input: replace the
            // leader only on a strictly greater key.
            let better = match best.and_then(|b| self.bufs[b].as_ref()) {
                Some(leader) => self.order.compare(leader, item) == std::cmp::Ordering::Greater,
                None => true,
            };
            if better {
                best = Some(i);
            }
        }
        let Some(i) = best else {
            return Ok(None);
        };
        let out = self.bufs[i].take();
        self.bufs[i] = self.inputs[i].next()?;
        Ok(out)
    }

    fn order(&self) -> Option<StreamOrder> {
        Some(self.order)
    }
}

/// A temporal relationship a partitioned-parallel run can evaluate: the
/// intersection-witnessed predicates. `Before`/`After` are excluded by
/// construction (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelPattern {
    /// `x` strictly contains `y`.
    Contains,
    /// `x` strictly contained in `y`.
    During,
    /// TQuel's symmetric overlap.
    GeneralOverlap,
    /// Allen's strict *overlaps*.
    AllenOverlaps,
}

impl ParallelPattern {
    /// Evaluate the predicate (for oracles and tests).
    pub fn matches(self, x: &Period, y: &Period) -> bool {
        match self {
            ParallelPattern::Contains => x.contains(y),
            ParallelPattern::During => y.contains(x),
            ParallelPattern::GeneralOverlap => x.overlaps(y),
            ParallelPattern::AllenOverlaps => x.allen_overlaps(y),
        }
    }

    /// The serial join operator each partition worker instantiates.
    /// `During` reuses the `Contains` worker with swapped sides.
    pub fn join_kind(self) -> StreamOpKind {
        match self {
            ParallelPattern::Contains | ParallelPattern::During => StreamOpKind::ContainJoinTsTe,
            ParallelPattern::GeneralOverlap | ParallelPattern::AllenOverlaps => {
                StreamOpKind::OverlapJoin
            }
        }
    }

    /// The serial semijoin operator each partition worker instantiates.
    pub fn semijoin_kind(self) -> StreamOpKind {
        match self {
            ParallelPattern::Contains => StreamOpKind::ContainSemijoinStab,
            ParallelPattern::During => StreamOpKind::ContainedSemijoinStab,
            ParallelPattern::GeneralOverlap | ParallelPattern::AllenOverlaps => {
                StreamOpKind::OverlapSemijoin
            }
        }
    }

    /// The [`OpConfig`] a partition worker runs with: `cfg` with the
    /// overlap mode this pattern implies (containment patterns pass `cfg`
    /// through, batch size and read policy included).
    pub fn worker_config(self, cfg: OpConfig) -> OpConfig {
        match self {
            ParallelPattern::GeneralOverlap => cfg.with_mode(OverlapMode::General),
            ParallelPattern::AllenOverlaps => cfg.with_mode(OverlapMode::Strict),
            ParallelPattern::Contains | ParallelPattern::During => cfg,
        }
    }

    /// The orders the partitioned driver sorts its (left, right) inputs
    /// into before dispatch — read off the worker operator's registry
    /// entry, with `During` joins accounting for their side swap.
    pub fn worker_orders(self, join: bool) -> (StreamOrder, StreamOrder) {
        let kind = if join {
            self.join_kind()
        } else {
            self.semijoin_kind()
        };
        let req = kind.requirement();
        let l = req.left().unwrap_or(StreamOrder::TS_ASC);
        let r = req.right().unwrap_or(StreamOrder::TS_ASC);
        if join && self == ParallelPattern::During {
            (r, l)
        } else {
            (l, r)
        }
    }
}

/// The result of a partitioned-parallel operator run.
#[derive(Debug, Clone)]
pub struct ParallelRun<T> {
    /// Deduplicated output (joins: pairs in owner-partition order;
    /// semijoins: kept tuples in the sorted input order).
    pub items: Vec<T>,
    /// Aggregate report: reads/comparisons/emits summed across workers,
    /// workspace peak is the max over workers.
    pub report: OpReport,
    /// Per-worker reports, indexed by partition.
    pub per_partition: Vec<OpReport>,
    /// Total tuples dispatched to workers; the excess over `|X| + |Y|` is
    /// the fringe-replication overhead.
    pub dispatched: usize,
}

impl<T> ParallelRun<T> {
    fn empty(k: usize) -> ParallelRun<T> {
        ParallelRun {
            items: Vec::new(),
            report: OpReport::default(),
            per_partition: vec![OpReport::default(); k.max(1)],
            dispatched: 0,
        }
    }
}

/// Outcome of a push-mode parallel run ([`parallel_join_each`] /
/// [`parallel_semijoin_each`]): the output went to the caller's emit
/// closure, so only the run's accounting is returned.
#[derive(Debug, Clone)]
pub struct ParallelPush {
    /// `false` when the emit closure stopped the run early (sink full).
    pub completed: bool,
    /// Aggregate report (see [`ParallelRun::report`]).
    pub report: OpReport,
    /// Per-worker reports, indexed by partition.
    pub per_partition: Vec<OpReport>,
    /// Total tuples dispatched to workers; the excess over `|X| + |Y|` is
    /// the fringe-replication overhead.
    pub dispatched: usize,
}

impl ParallelPush {
    fn empty(k: usize) -> ParallelPush {
        ParallelPush {
            completed: true,
            report: OpReport::default(),
            per_partition: vec![OpReport::default(); k.max(1)],
            dispatched: 0,
        }
    }
}

/// A drained worker's output: emitted items plus the operator's report.
type WorkerOutput<T> = TdbResult<(Vec<T>, OpReport)>;

fn join_results<T>(
    results: Vec<WorkerOutput<T>>,
) -> TdbResult<(Vec<Vec<T>>, Vec<OpReport>, OpReport)> {
    let mut items = Vec::with_capacity(results.len());
    let mut reports = Vec::with_capacity(results.len());
    let mut total = OpReport::default();
    for r in results {
        let (part, report) = r?;
        total = total.combine_parallel(report);
        items.push(part);
        reports.push(report);
    }
    Ok((items, reports, total))
}

/// Run a temporal join partitioned over `k` time ranges.
///
/// Inputs need not be pre-sorted; each is sorted once into the order its
/// serial operator requires, partitioned with fringe replication, and the
/// per-partition outputs are owner-deduplicated. The result is exactly the
/// serial operator's (and the nested-loop oracle's) match set.
pub fn parallel_join<T>(
    pattern: ParallelPattern,
    xs: Vec<T>,
    ys: Vec<T>,
    k: usize,
    cfg: OpConfig,
) -> TdbResult<ParallelRun<(T, T)>>
where
    T: Temporal + Clone + Send,
{
    if pattern == ParallelPattern::During {
        // y contains x: reuse the Contains machinery with sides swapped.
        let run = parallel_join(ParallelPattern::Contains, ys, xs, k, cfg)?;
        return Ok(ParallelRun {
            items: run.items.into_iter().map(|(y, x)| (x, y)).collect(),
            report: run.report,
            per_partition: run.per_partition,
            dispatched: run.dispatched,
        });
    }
    let Some((parts, per_partition, report, dispatched)) =
        join_partitioned(pattern, xs, ys, k, cfg)?
    else {
        return Ok(ParallelRun::empty(k));
    };
    Ok(ParallelRun {
        items: parts.into_iter().flatten().collect(),
        report,
        per_partition,
        dispatched,
    })
}

/// Push-mode [`parallel_join`]: instead of concatenating the K
/// owner-deduplicated partition outputs into one vector, hand each
/// partition's pairs (in partition order) to `emit`. A `false` return from
/// `emit` stops the run; remaining partitions' outputs are dropped.
pub fn parallel_join_each<T>(
    pattern: ParallelPattern,
    xs: Vec<T>,
    ys: Vec<T>,
    k: usize,
    cfg: OpConfig,
    emit: &mut dyn FnMut(Vec<(T, T)>) -> TdbResult<bool>,
) -> TdbResult<ParallelPush>
where
    T: Temporal + Clone + Send,
{
    // `During` means y contains x: run Contains with sides swapped and
    // un-swap each emitted pair.
    let swap = pattern == ParallelPattern::During;
    let (pattern, xs, ys) = if swap {
        (ParallelPattern::Contains, ys, xs)
    } else {
        (pattern, xs, ys)
    };
    let Some((parts, per_partition, report, dispatched)) =
        join_partitioned(pattern, xs, ys, k, cfg)?
    else {
        return Ok(ParallelPush::empty(k));
    };
    let mut completed = true;
    for part in parts {
        if part.is_empty() {
            continue;
        }
        let part = if swap {
            part.into_iter().map(|(y, x)| (x, y)).collect()
        } else {
            part
        };
        if !emit(part)? {
            completed = false;
            break;
        }
    }
    Ok(ParallelPush {
        completed,
        report,
        per_partition,
        dispatched,
    })
}

/// The shared worker phase of the parallel joins: sort, fringe-partition,
/// run K serial workers, owner-dedup. Returns the per-partition outputs
/// (not yet concatenated) or `None` for empty inputs. `pattern` must not
/// be `During` — callers normalize via side swap.
#[allow(clippy::type_complexity)]
fn join_partitioned<T>(
    pattern: ParallelPattern,
    xs: Vec<T>,
    ys: Vec<T>,
    k: usize,
    cfg: OpConfig,
) -> TdbResult<Option<(Vec<Vec<(T, T)>>, Vec<OpReport>, OpReport, usize)>>
where
    T: Temporal + Clone + Send,
{
    debug_assert!(pattern != ParallelPattern::During);
    let Some(spec) = PartitionSpec::covering(&xs, &ys, k) else {
        return Ok(None);
    };
    let (x_order, y_order) = pattern.worker_orders(true);
    let mut xs = xs;
    let mut ys = ys;
    x_order.sort(&mut xs);
    y_order.sort(&mut ys);
    let xparts = partition_with_fringe(&xs, &spec);
    let yparts = partition_with_fringe(&ys, &spec);
    drop((xs, ys));
    let dispatched: usize = xparts.iter().chain(yparts.iter()).map(Vec::len).sum();

    let spec = &spec;
    let results: Vec<WorkerOutput<(T, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = xparts
            .into_iter()
            .zip(yparts)
            .enumerate()
            .map(|(i, (xp, yp))| {
                scope.spawn(move || -> WorkerOutput<(T, T)> {
                    // Each worker runs the serial operator through the
                    // unified dispatch — row or batched per `cfg`.
                    let (pairs, report) = run_join_kind(
                        pattern.join_kind(),
                        pattern.worker_config(cfg),
                        xp,
                        x_order,
                        yp,
                        y_order,
                    )?;
                    // Owner dedup: emit a pair only from the partition that
                    // owns the intersection start.
                    let owned = pairs
                        .into_iter()
                        .filter(|(x, y)| spec.owner_of(x.ts().max_of(y.ts())) == i)
                        .collect();
                    Ok((owned, report))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(TdbError::Eval("parallel join worker panicked".into())))
            })
            .collect()
    });
    let (items, per_partition, report) = join_results(results)?;
    Ok(Some((items, per_partition, report, dispatched)))
}

/// Run a temporal semijoin (left side kept) partitioned over `k` time
/// ranges. Output preserves the left input's sorted order and contains each
/// kept tuple exactly once.
pub fn parallel_semijoin<T>(
    pattern: ParallelPattern,
    xs: Vec<T>,
    ys: Vec<T>,
    k: usize,
    cfg: OpConfig,
) -> TdbResult<ParallelRun<T>>
where
    T: Temporal + Clone + Send,
{
    let Some((parts, per_partition, mut report, dispatched)) =
        semijoin_partitioned(pattern, xs, ys, k, cfg)?
    else {
        return Ok(ParallelRun::empty(k));
    };
    let items = merge_tagged(parts);
    // Fringe tuples witnessed in several partitions were emitted more than
    // once by the workers; after dedup, report what actually came out.
    report.metrics.emitted = items.len();
    Ok(ParallelRun {
        items,
        report,
        per_partition,
        dispatched,
    })
}

/// Push-mode [`parallel_semijoin`]: the K-way ordinal merge streams its
/// deduplicated output to `emit` in chunks of the configured batch size
/// instead of building one vector. A `false` return from `emit` stops the
/// merge.
pub fn parallel_semijoin_each<T>(
    pattern: ParallelPattern,
    xs: Vec<T>,
    ys: Vec<T>,
    k: usize,
    cfg: OpConfig,
    emit: &mut dyn FnMut(Vec<T>) -> TdbResult<bool>,
) -> TdbResult<ParallelPush>
where
    T: Temporal + Clone + Send,
{
    let Some((parts, per_partition, mut report, dispatched)) =
        semijoin_partitioned(pattern, xs, ys, k, cfg)?
    else {
        return Ok(ParallelPush::empty(k));
    };
    let chunk_rows = if cfg.batch_rows > 0 {
        cfg.batch_rows
    } else {
        DEFAULT_BATCH_ROWS
    };
    let (completed, emitted) = merge_tagged_each(parts, chunk_rows, emit)?;
    // On an early stop `emitted` is what actually reached the sink — a
    // lower bound on the full result.
    report.metrics.emitted = emitted;
    Ok(ParallelPush {
        completed,
        report,
        per_partition,
        dispatched,
    })
}

/// The shared worker phase of the parallel semijoins: sort, tag the kept
/// side, fringe-partition, run K serial workers. Returns the per-partition
/// tagged outputs (not yet merged) or `None` for empty inputs.
#[allow(clippy::type_complexity)]
fn semijoin_partitioned<T>(
    pattern: ParallelPattern,
    xs: Vec<T>,
    ys: Vec<T>,
    k: usize,
    cfg: OpConfig,
) -> TdbResult<Option<(Vec<Vec<Tagged<T>>>, Vec<OpReport>, OpReport, usize)>>
where
    T: Temporal + Clone + Send,
{
    let Some(spec) = PartitionSpec::covering(&xs, &ys, k) else {
        return Ok(None);
    };
    let (x_order, y_order) = pattern.worker_orders(false);
    let mut xs = xs;
    let mut ys = ys;
    x_order.sort(&mut xs);
    y_order.sort(&mut ys);
    let xparts = partition_with_fringe(&tag(xs), &spec);
    let yparts = partition_with_fringe(&ys, &spec);
    drop(ys);
    let dispatched: usize =
        xparts.iter().map(Vec::len).sum::<usize>() + yparts.iter().map(Vec::len).sum::<usize>();

    let results: Vec<WorkerOutput<Tagged<T>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = xparts
            .into_iter()
            .zip(yparts)
            .map(|(xp, yp)| {
                scope.spawn(move || -> WorkerOutput<Tagged<T>> {
                    run_semijoin_kind(
                        pattern.semijoin_kind(),
                        pattern.worker_config(cfg),
                        xp,
                        x_order,
                        yp,
                        y_order,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(TdbError::Eval("parallel semijoin worker panicked".into()))
                })
            })
            .collect()
    });
    let (parts, per_partition, report) = join_results(results)?;
    Ok(Some((parts, per_partition, report, dispatched)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::from_sorted_vec;
    use std::collections::BTreeSet;
    use tdb_core::TsTuple;

    fn iv(s: i64, e: i64) -> TsTuple {
        TsTuple::interval(s, e).unwrap()
    }

    fn canon_pairs(mut v: Vec<(TsTuple, TsTuple)>) -> Vec<(TsTuple, TsTuple)> {
        v.sort_by_key(|(x, y)| {
            (
                x.ts().ticks(),
                x.te().ticks(),
                y.ts().ticks(),
                y.te().ticks(),
            )
        });
        v
    }

    fn canon(mut v: Vec<TsTuple>) -> Vec<TsTuple> {
        v.sort_by_key(|t| (t.ts().ticks(), t.te().ticks()));
        v
    }

    fn join_oracle(
        xs: &[TsTuple],
        ys: &[TsTuple],
        pattern: ParallelPattern,
    ) -> Vec<(TsTuple, TsTuple)> {
        let mut out = Vec::new();
        for x in xs {
            for y in ys {
                if pattern.matches(&x.period, &y.period) {
                    out.push((x.clone(), y.clone()));
                }
            }
        }
        canon_pairs(out)
    }

    fn semi_oracle(xs: &[TsTuple], ys: &[TsTuple], pattern: ParallelPattern) -> Vec<TsTuple> {
        canon(
            xs.iter()
                .filter(|x| ys.iter().any(|y| pattern.matches(&x.period, &y.period)))
                .cloned()
                .collect(),
        )
    }

    #[test]
    fn spec_owner_and_replication_ranges() {
        let spec = PartitionSpec::for_span(Period::new(0, 100).unwrap(), 4);
        assert_eq!(spec.len(), 4);
        assert_eq!(spec.owner_of(TimePoint(0)), 0);
        assert_eq!(spec.owner_of(TimePoint(25)), 1);
        assert_eq!(spec.owner_of(TimePoint(99)), 3);
        // Clamping outside the span.
        assert_eq!(spec.owner_of(TimePoint(-5)), 0);
        assert_eq!(spec.owner_of(TimePoint(400)), 3);
        // A boundary-spanning tuple goes to every intersected partition.
        assert_eq!(spec.partitions_for(&Period::new(20, 60).unwrap()), 0..3);
        assert_eq!(spec.partitions_for(&Period::new(25, 50).unwrap()), 1..2);
        // `end` is exclusive: [25, 50) does not reach partition 2.
        assert_eq!(spec.partitions_for(&Period::new(49, 50).unwrap()), 1..2);
    }

    #[test]
    fn fringe_replication_covers_every_intersected_partition() {
        let spec = PartitionSpec::for_span(Period::new(0, 40).unwrap(), 4);
        let items = vec![iv(0, 40), iv(5, 6), iv(9, 11), iv(35, 40)];
        let parts = partition_with_fringe(&items, &spec);
        assert_eq!(parts[0], vec![iv(0, 40), iv(5, 6), iv(9, 11)]);
        assert_eq!(parts[1], vec![iv(0, 40), iv(9, 11)]);
        assert_eq!(parts[2], vec![iv(0, 40)]);
        assert_eq!(parts[3], vec![iv(0, 40), iv(35, 40)]);
    }

    #[test]
    fn kway_merge_restores_global_order() {
        let a = from_sorted_vec(vec![iv(0, 5), iv(6, 9)], StreamOrder::TS_ASC).unwrap();
        let b = from_sorted_vec(vec![iv(1, 2), iv(6, 7)], StreamOrder::TS_ASC).unwrap();
        let mut m = KWayMerge::new(vec![a, b], StreamOrder::TS_ASC).unwrap();
        assert_eq!(m.order(), Some(StreamOrder::TS_ASC));
        let out = m.collect_vec().unwrap();
        assert_eq!(out, vec![iv(0, 5), iv(1, 2), iv(6, 9), iv(6, 7)]);
        // Unordered inputs are rejected.
        let c = crate::stream::from_vec(vec![iv(0, 1)]);
        assert!(KWayMerge::new(vec![c], StreamOrder::TS_ASC).is_err());
    }

    #[test]
    fn merge_tagged_dedups_fringe_duplicates() {
        let t = |ordinal, s, e| Tagged {
            ordinal,
            item: iv(s, e),
        };
        let merged = merge_tagged(vec![
            vec![t(0, 0, 9), t(2, 3, 4)],
            vec![t(0, 0, 9), t(5, 8, 9)],
        ]);
        assert_eq!(merged, vec![iv(0, 9), iv(3, 4), iv(8, 9)]);
        assert!(merge_tagged::<TsTuple>(vec![vec![], vec![]]).is_empty());
    }

    #[test]
    fn parallel_contain_join_handles_boundary_spanning_tuples() {
        // A giant container crossing every boundary plus containees in
        // each partition — the adversarial fringe case.
        let xs = vec![iv(0, 100), iv(10, 30), iv(60, 90)];
        let ys = vec![iv(5, 6), iv(24, 26), iv(25, 75), iv(70, 80), iv(99, 100)];
        for k in 1..=8 {
            let run = parallel_join(
                ParallelPattern::Contains,
                xs.clone(),
                ys.clone(),
                k,
                OpConfig::new(),
            )
            .unwrap();
            assert_eq!(
                canon_pairs(run.items),
                join_oracle(&xs, &ys, ParallelPattern::Contains),
                "k={k}"
            );
            assert_eq!(run.per_partition.len(), k.min(100));
        }
    }

    #[test]
    fn parallel_run_aggregates_reports() {
        let xs: Vec<_> = (0..50).map(|i| iv(i * 2, i * 2 + 5)).collect();
        let ys: Vec<_> = (0..50).map(|i| iv(i * 2 + 1, i * 2 + 2)).collect();
        let run = parallel_join(
            ParallelPattern::Contains,
            xs.clone(),
            ys.clone(),
            4,
            OpConfig::new(),
        )
        .unwrap();
        let serial = parallel_join(ParallelPattern::Contains, xs, ys, 1, OpConfig::new()).unwrap();
        assert_eq!(canon_pairs(run.items), canon_pairs(serial.items));
        // Fringe replication dispatches at least the raw inputs.
        assert!(run.dispatched >= 100, "dispatched {}", run.dispatched);
        // Partitioned workspaces are no larger than the serial peak.
        assert!(run.report.max_workspace() <= serial.report.max_workspace() + 1);
        let summed: usize = run
            .per_partition
            .iter()
            .map(|r| r.metrics.read_total())
            .sum();
        assert_eq!(summed, run.report.metrics.read_total());
    }

    #[test]
    fn parallel_semijoin_keeps_sorted_order_without_duplicates() {
        let xs = vec![iv(0, 100), iv(3, 4), iv(20, 22), iv(50, 80), iv(97, 99)];
        let ys = vec![iv(1, 2), iv(21, 60), iv(98, 99)];
        for pattern in [
            ParallelPattern::Contains,
            ParallelPattern::During,
            ParallelPattern::GeneralOverlap,
            ParallelPattern::AllenOverlaps,
        ] {
            for k in 1..=6 {
                let run =
                    parallel_semijoin(pattern, xs.clone(), ys.clone(), k, OpConfig::new()).unwrap();
                assert_eq!(
                    canon(run.items.clone()),
                    semi_oracle(&xs, &ys, pattern),
                    "{pattern:?} k={k}"
                );
                // Exactly-once: no fringe duplicates survive the merge.
                let mut seen = BTreeSet::new();
                for t in &run.items {
                    assert!(seen.insert((t.ts().ticks(), t.te().ticks(), t.value.clone())));
                }
                assert_eq!(run.report.metrics.emitted, run.items.len());
            }
        }
    }

    #[test]
    fn push_mode_parallel_runs_match_collected_runs() {
        let xs = vec![iv(0, 100), iv(3, 4), iv(10, 30), iv(50, 80), iv(97, 99)];
        let ys = vec![iv(1, 2), iv(21, 60), iv(24, 26), iv(70, 80), iv(98, 99)];
        for pattern in [
            ParallelPattern::Contains,
            ParallelPattern::During,
            ParallelPattern::GeneralOverlap,
            ParallelPattern::AllenOverlaps,
        ] {
            for k in [1usize, 4] {
                let run =
                    parallel_join(pattern, xs.clone(), ys.clone(), k, OpConfig::new()).unwrap();
                let mut pushed = Vec::new();
                let push = parallel_join_each(
                    pattern,
                    xs.clone(),
                    ys.clone(),
                    k,
                    OpConfig::new(),
                    &mut |chunk| {
                        pushed.extend(chunk);
                        Ok(true)
                    },
                )
                .unwrap();
                assert!(push.completed);
                assert_eq!(
                    canon_pairs(pushed),
                    canon_pairs(run.items),
                    "{pattern:?} k={k}"
                );
                assert_eq!(push.dispatched, run.dispatched);
                assert_eq!(push.per_partition.len(), run.per_partition.len());

                let run =
                    parallel_semijoin(pattern, xs.clone(), ys.clone(), k, OpConfig::new()).unwrap();
                let mut pushed = Vec::new();
                let push = parallel_semijoin_each(
                    pattern,
                    xs.clone(),
                    ys.clone(),
                    k,
                    OpConfig::new(),
                    &mut |chunk| {
                        pushed.extend(chunk);
                        Ok(true)
                    },
                )
                .unwrap();
                assert!(push.completed);
                assert_eq!(pushed, run.items, "{pattern:?} k={k}");
                assert_eq!(push.report.metrics.emitted, run.report.metrics.emitted);
            }
        }
    }

    #[test]
    fn push_mode_parallel_join_stops_early() {
        let xs: Vec<_> = (0..200).map(|i| iv(i, i + 10)).collect();
        let ys: Vec<_> = (0..200).map(|i| iv(i + 1, i + 2)).collect();
        let full = parallel_join(
            ParallelPattern::Contains,
            xs.clone(),
            ys.clone(),
            4,
            OpConfig::new(),
        )
        .unwrap();
        let mut seen = 0usize;
        let push = parallel_join_each(
            ParallelPattern::Contains,
            xs,
            ys,
            4,
            OpConfig::new(),
            &mut |chunk| {
                seen += chunk.len();
                Ok(false)
            },
        )
        .unwrap();
        assert!(!push.completed);
        assert!(seen < full.items.len(), "stopped after {seen}");
    }

    #[test]
    fn empty_inputs_yield_empty_runs() {
        let run = parallel_join::<TsTuple>(
            ParallelPattern::GeneralOverlap,
            vec![],
            vec![],
            4,
            OpConfig::new(),
        )
        .unwrap();
        assert!(run.items.is_empty());
        assert_eq!(run.dispatched, 0);
        let run = parallel_semijoin::<TsTuple>(
            ParallelPattern::During,
            vec![],
            vec![],
            4,
            OpConfig::new(),
        )
        .unwrap();
        assert!(run.items.is_empty());
    }
}
