//! # tdb-stream — stream-processing temporal operators
//!
//! This crate implements Section 4 of Leung & Muntz: temporal joins and
//! semijoins as *stream processors* — single-pass operators over properly
//! sorted inputs that keep a small, garbage-collected local workspace.
//!
//! | Paper artifact | Module |
//! |---|---|
//! | §4.1 stream paradigm, Figure 4 sum processor | [`stream`], [`aggregate`] |
//! | §4.2.1 Contain-join, Figure 5, Table 1 (a)/(b) | [`contain_join`] |
//! | §4.2.2 Contain-/Contained-semijoin, Figure 6, Table 1 (c)/(d) | [`stab_semijoin`], [`sweep_semijoin`] |
//! | §4.2.3 self semijoins, Figure 7, Table 3 | [`self_semijoin`] |
//! | §4.2.4 Overlap operators, Table 2 | [`overlap_join`] |
//! | §4.2.4 Before operators | [`before`] |
//! | footnote 8: equality-temporal operators via merge join | [`event_join`], [`merge_join`] |
//! | conventional baseline (§3) | [`nested_loop`], [`buffered_join`] |
//! | unified construction & instrumentation surface | [`report`] |
//! | time-partitioned parallel execution, fringe replication | [`partition`] |
//!
//! Every operator is generic over items implementing
//! [`tdb_core::Temporal`] + [`Clone`], carries an instrumented
//! [`workspace::Workspace`] whose high-water mark validates the paper's
//! Tables 1–3, and reports a unified [`report::OpReport`] (throughput
//! counters plus workspace statistics) through the [`report::Instrumented`]
//! trait. Operators are constructed through the [`report::OpConfig`]
//! builder, and [`partition`] runs any intersection-witnessed operator
//! across `K` disjoint time ranges in parallel.

pub mod aggregate;
pub mod allen_dispatch;
pub mod batch;
pub mod batch_ops;
pub mod before;
pub mod buffered_join;
pub mod coalesce;
pub mod contain_join;
pub mod dispatch;
pub mod event_join;
pub mod gapless;
pub mod merge_join;
pub mod metrics;
pub mod nested_loop;
pub mod overlap_join;
pub mod partition;
pub mod progress;
pub mod read_policy;
pub mod report;
pub mod required;
pub mod self_semijoin;
pub mod sink;
pub mod stab_semijoin;
pub mod stream;
pub mod sweep_semijoin;
pub mod timeslice;
pub mod watermark;
pub mod workspace;

pub use aggregate::{GroupedSum, HashSum};
pub use allen_dispatch::{plan_allen_join, AllenJoinPlan};
pub use batch::{
    BatchStream, Batcher, RowBatch, VecBatchStream, DEFAULT_BATCH_ROWS, MAX_BATCH_ROWS,
};
pub use batch_ops::{
    drive, drive_each, BatchContainJoinTsTe, BatchContainSemijoinStab, BatchContainedSemijoinStab,
    BatchOp, BatchOverlapJoin, BatchOverlapSemijoin, Side, Wants,
};
pub use before::{BeforeJoin, BeforeSemijoin};
pub use buffered_join::BufferedJoin;
pub use coalesce::{coalesce_relation, Coalesce};
pub use contain_join::{ContainJoinTsTe, ContainJoinTsTs};
pub use dispatch::{
    run_join_kind, run_join_kind_count, run_join_kind_each, run_semijoin_kind,
    run_semijoin_kind_each,
};
pub use event_join::EventMergeJoin;
pub use gapless::GaplessWorkspace;
pub use merge_join::MergeEquiJoin;
pub use metrics::OpMetrics;
pub use nested_loop::NestedLoopJoin;
pub use overlap_join::{OverlapJoin, OverlapMode, OverlapSemijoin};
pub use partition::{
    merge_tagged, merge_tagged_each, parallel_join, parallel_join_each, parallel_semijoin,
    parallel_semijoin_each, partition_with_fringe, KWayMerge, ParallelPattern, ParallelPush,
    ParallelRun, PartitionSpec, Tagged,
};
pub use progress::{Progress, ProgressSnapshot};
pub use read_policy::ReadPolicy;
pub use report::{timeslice, Instrumented, OpConfig, OpReport};
pub use required::{check_stream_order, OrderRequirement, RequiredOrder, StreamOpKind};
pub use self_semijoin::{ContainSelfSemijoin, ContainSelfSemijoinDesc, ContainedSelfSemijoin};
pub use sink::{row_bytes, CollectSink, CountSink, LimitSink, RowSink, SinkStats};
pub use stab_semijoin::{ContainSemijoinStab, ContainedSemijoinStab};
pub use stream::{from_sorted_vec, from_vec, OrderChecked, TupleStream, VecStream};
pub use sweep_semijoin::SweepSemijoin;
pub use timeslice::{concurrency_profile, ProfileStep, Timeslice};
pub use watermark::Watermark;
pub use workspace::{Workspace, WorkspaceStats, OCCUPANCY_BOUNDS, OCCUPANCY_CELLS};
