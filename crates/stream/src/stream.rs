//! The stream abstraction.
//!
//! Paper §4.1: "a stream can be defined as an ordered sequence of data
//! objects ... a computation on a stream has access only to one element at a
//! time and only in the specified ordering of the stream."
//!
//! [`TupleStream`] is a fallible pull iterator with a *declared order*.
//! Operators state the orders they require; [`OrderChecked`] enforces a
//! declared order at runtime, turning a mis-sorted input into a
//! [`TdbError::OrderViolation`] instead of silently wrong answers.

use tdb_core::{StreamOrder, TdbError, TdbResult, Temporal};

/// A fallible, ordered stream of tuples.
pub trait TupleStream {
    /// The item type flowing through the stream.
    type Item;

    /// Pull the next tuple, `Ok(None)` at end of stream.
    fn next(&mut self) -> TdbResult<Option<Self::Item>>;

    /// The ordering this stream claims its items satisfy, if any.
    fn order(&self) -> Option<StreamOrder>;

    /// Drain the stream into a vector.
    fn collect_vec(&mut self) -> TdbResult<Vec<Self::Item>> {
        let mut out = Vec::new();
        while let Some(item) = self.next()? {
            out.push(item);
        }
        Ok(out)
    }
}

impl<S: TupleStream + ?Sized> TupleStream for Box<S> {
    type Item = S::Item;

    fn next(&mut self) -> TdbResult<Option<Self::Item>> {
        (**self).next()
    }

    fn order(&self) -> Option<StreamOrder> {
        (**self).order()
    }
}

/// A stream over an in-memory vector.
pub struct VecStream<T> {
    items: std::vec::IntoIter<T>,
    order: Option<StreamOrder>,
}

impl<T> VecStream<T> {
    /// Wrap a vector, claiming no particular order.
    pub fn unordered(items: Vec<T>) -> VecStream<T> {
        VecStream {
            items: items.into_iter(),
            order: None,
        }
    }
}

impl<T> TupleStream for VecStream<T> {
    type Item = T;

    fn next(&mut self) -> TdbResult<Option<T>> {
        Ok(self.items.next())
    }

    fn order(&self) -> Option<StreamOrder> {
        self.order
    }
}

/// Wrap an unordered vector as a stream.
pub fn from_vec<T>(items: Vec<T>) -> VecStream<T> {
    VecStream::unordered(items)
}

/// Wrap a vector as a stream declaring `order`, verifying the claim up
/// front (`O(n)` comparisons, zero allocations).
pub fn from_sorted_vec<T: Temporal>(items: Vec<T>, order: StreamOrder) -> TdbResult<VecStream<T>> {
    if let Some(i) = order.first_violation(&items) {
        return Err(TdbError::OrderViolation {
            context: "from_sorted_vec",
            detail: format!("claimed {order} violated at index {i}"),
        });
    }
    Ok(VecStream {
        items: items.into_iter(),
        order: Some(order),
    })
}

/// Sort a vector and wrap it as a stream declaring that order.
pub fn sort_into_stream<T: Temporal>(mut items: Vec<T>, order: StreamOrder) -> VecStream<T> {
    order.sort(&mut items);
    VecStream {
        items: items.into_iter(),
        order: Some(order),
    }
}

/// An adapter that verifies a declared order as items flow through.
///
/// Each item is compared against its predecessor under `order`; a violation
/// poisons the stream with [`TdbError::OrderViolation`].
pub struct OrderChecked<S: TupleStream>
where
    S::Item: Temporal + Clone,
{
    inner: S,
    order: StreamOrder,
    prev: Option<S::Item>,
    count: usize,
}

impl<S: TupleStream> OrderChecked<S>
where
    S::Item: Temporal + Clone,
{
    /// Wrap `inner`, asserting it delivers items in `order`.
    pub fn new(inner: S, order: StreamOrder) -> OrderChecked<S> {
        OrderChecked {
            inner,
            order,
            prev: None,
            count: 0,
        }
    }
}

impl<S: TupleStream> TupleStream for OrderChecked<S>
where
    S::Item: Temporal + Clone,
{
    type Item = S::Item;

    fn next(&mut self) -> TdbResult<Option<S::Item>> {
        let Some(item) = self.inner.next()? else {
            return Ok(None);
        };
        if let Some(prev) = &self.prev {
            if self.order.compare(prev, &item) == std::cmp::Ordering::Greater {
                return Err(TdbError::OrderViolation {
                    context: "OrderChecked",
                    detail: format!(
                        "item {} arrived out of {} (period {})",
                        self.count,
                        self.order,
                        item.period()
                    ),
                });
            }
        }
        self.prev = Some(item.clone());
        self.count += 1;
        Ok(Some(item))
    }

    fn order(&self) -> Option<StreamOrder> {
        Some(self.order)
    }
}

/// A stream that yields an error after `n` good items — failure injection
/// for pipeline tests.
pub struct FailingStream<T> {
    items: std::vec::IntoIter<T>,
    remaining: usize,
    error: fn() -> TdbError,
}

impl<T> FailingStream<T> {
    /// Yield the first `good` items of `items`, then fail with `error`.
    pub fn new(items: Vec<T>, good: usize, error: fn() -> TdbError) -> FailingStream<T> {
        FailingStream {
            items: items.into_iter(),
            remaining: good,
            error,
        }
    }
}

impl<T> TupleStream for FailingStream<T> {
    type Item = T;

    fn next(&mut self) -> TdbResult<Option<T>> {
        if self.remaining == 0 {
            return Err((self.error)());
        }
        self.remaining -= 1;
        Ok(self.items.next())
    }

    fn order(&self) -> Option<StreamOrder> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_core::TsTuple;

    fn iv(s: i64, e: i64) -> TsTuple {
        TsTuple::interval(s, e).unwrap()
    }

    #[test]
    fn vec_stream_yields_all() {
        let mut s = from_vec(vec![iv(0, 1), iv(5, 9)]);
        assert_eq!(s.next().unwrap().unwrap(), iv(0, 1));
        assert_eq!(s.next().unwrap().unwrap(), iv(5, 9));
        assert!(s.next().unwrap().is_none());
        assert!(s.order().is_none());
    }

    #[test]
    fn from_sorted_vec_validates() {
        assert!(from_sorted_vec(vec![iv(0, 1), iv(5, 9)], StreamOrder::TS_ASC).is_ok());
        assert!(matches!(
            from_sorted_vec(vec![iv(5, 9), iv(0, 1)], StreamOrder::TS_ASC),
            Err(TdbError::OrderViolation { .. })
        ));
    }

    #[test]
    fn sort_into_stream_sorts() {
        let mut s = sort_into_stream(vec![iv(5, 9), iv(0, 1)], StreamOrder::TS_ASC);
        assert_eq!(s.order(), Some(StreamOrder::TS_ASC));
        let v = s.collect_vec().unwrap();
        assert_eq!(v[0], iv(0, 1));
    }

    #[test]
    fn order_checked_passes_good_streams() {
        let inner = from_vec(vec![iv(0, 9), iv(0, 3), iv(2, 4)]);
        let mut checked = OrderChecked::new(inner, StreamOrder::TS_ASC);
        assert_eq!(checked.collect_vec().unwrap().len(), 3);
    }

    #[test]
    fn order_checked_catches_violations_mid_stream() {
        let inner = from_vec(vec![iv(0, 9), iv(5, 7), iv(2, 4)]);
        let mut checked = OrderChecked::new(inner, StreamOrder::TS_ASC);
        assert!(checked.next().unwrap().is_some());
        assert!(checked.next().unwrap().is_some());
        assert!(matches!(
            checked.next(),
            Err(TdbError::OrderViolation { .. })
        ));
    }

    #[test]
    fn order_checked_respects_secondary_key() {
        let inner = from_vec(vec![iv(0, 9), iv(0, 3)]);
        let mut checked = OrderChecked::new(inner, StreamOrder::TS_ASC_TE_ASC);
        checked.next().unwrap();
        assert!(checked.next().is_err());
    }

    #[test]
    fn failing_stream_fails_on_schedule() {
        let mut s = FailingStream::new(vec![iv(0, 1), iv(1, 2), iv(2, 3)], 2, || {
            TdbError::Eval("injected".into())
        });
        assert!(s.next().unwrap().is_some());
        assert!(s.next().unwrap().is_some());
        assert!(s.next().is_err());
    }

    #[test]
    fn boxed_streams_work() {
        let mut s: Box<dyn TupleStream<Item = TsTuple>> = Box::new(from_vec(vec![iv(0, 1)]));
        assert!(s.next().unwrap().is_some());
        assert!(s.next().unwrap().is_none());
    }
}
