//! Declared input-ordering requirements — the single registry behind both
//! the operator constructors and the static plan verifier.
//!
//! Tables 1–3 of the paper index each stream operator by the input sort
//! orderings under which it is correct and bounded. Before this module
//! existed those preconditions lived as per-file `require_order` helpers and
//! scattered constants; the executor and the partition layer each kept their
//! own copies of the same table. Everything now reads from
//! [`StreamOpKind::requirement`]:
//!
//! * operator constructors call [`check_stream_order`] against their entry,
//! * the algebra executor derives its sort decisions from the same entry,
//! * `tdb-analyze` proves plans against it before a single tuple flows.
//!
//! Constructors accept only the *direct* orderings — the mirrored lower
//! halves of Tables 1/2 ("the mirror image of the upper half") are served by
//! time reversal in the algebra layer, so mirror acceptance is the
//! analyzer's job ([`StreamOrder::mirror`]), not the operator's.

use crate::stream::TupleStream;
use std::fmt;
use tdb_core::{SortSpec, StreamOrder, TdbError, TdbResult};

/// The input-ordering contract of one stream operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderRequirement {
    /// Operator name as reported in diagnostics.
    pub operator: &'static str,
    /// Required ordering per input, in operand order. One entry for unary
    /// (self-semijoin) operators, two for binary ones. `None` means the
    /// operator is correct under any input order (Before-join — at the cost
    /// of unbounded state, which the workspace analyzer accounts for
    /// separately).
    pub inputs: &'static [Option<StreamOrder>],
    /// The Table 1/2/3 entry (or section) this precondition comes from.
    pub table_entry: &'static str,
    /// Whether the operator's predicate is intersection-witnessed and may
    /// therefore run under `PhysicalPlan::Parallel` with fringe replication
    /// (Before/After are not: a match carries no shared time point, so no
    /// partition owns it).
    pub partition_safe: bool,
}

impl OrderRequirement {
    /// Requirement on the left (first) input.
    pub fn left(&self) -> Option<StreamOrder> {
        self.inputs.first().copied().flatten()
    }

    /// Requirement on the right (second) input, if the operator is binary.
    pub fn right(&self) -> Option<StreamOrder> {
        self.inputs.get(1).copied().flatten()
    }

    /// Number of inputs the operator consumes.
    pub fn arity(&self) -> usize {
        self.inputs.len()
    }
}

/// `ValidFrom ↓` then `ValidTo ↓` — [`ContainSelfSemijoinDesc`]'s order
/// (Table 3 row 2, the mirror image of the ascending self-semijoin order).
///
/// [`ContainSelfSemijoinDesc`]: crate::self_semijoin::ContainSelfSemijoinDesc
pub const TS_DESC_TE_DESC: StreamOrder = StreamOrder::by_then(SortSpec::TS_DESC, SortSpec::TE_DESC);

/// Every stream-temporal operator kind known to the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamOpKind {
    /// Contain-join, both inputs `ValidFrom ↑` (Figure 5, Table 1 (a)).
    ContainJoinTsTs,
    /// Contain-join, X `ValidFrom ↑` / Y `ValidTo ↑` (Table 1 (b)).
    ContainJoinTsTe,
    /// Contain-/Contained-semijoin sweep under `(ValidFrom ↑, ValidFrom ↑)`
    /// (Table 1 (c)).
    SweepSemijoin,
    /// Contain-semijoin two-buffer stab, X `ValidFrom ↑` / Y `ValidTo ↑`
    /// (Figure 6, Table 1 (d)).
    ContainSemijoinStab,
    /// Contained-semijoin two-buffer stab, X `ValidTo ↑` / Y `ValidFrom ↑`
    /// (Figure 6, Table 1 (d)).
    ContainedSemijoinStab,
    /// Contained-semijoin(X,X), single scan, one state tuple (Figure 7,
    /// Table 3 (a)).
    ContainedSelfSemijoin,
    /// Contain-semijoin(X,X) under ascending order (Table 3 (b) state).
    ContainSelfSemijoin,
    /// Contain-semijoin(X,X) under descending order (Table 3 row 2 mirror).
    ContainSelfSemijoinDesc,
    /// Overlap join under `(ValidFrom ↑, ValidFrom ↑)` (Table 2 (a)).
    OverlapJoin,
    /// Overlap semijoin under `(ValidFrom ↑, ValidFrom ↑)` (Table 2 (b)).
    OverlapSemijoin,
    /// Before-join — correct under any order, workspace Θ(|Y|) (§4.2.4).
    BeforeJoin,
    /// Before-semijoin — one scan of each input, any order (§4.2.4).
    BeforeSemijoin,
}

impl StreamOpKind {
    /// All kinds, for exhaustive sweeps in tests and the analyzer.
    pub const ALL: [StreamOpKind; 12] = [
        StreamOpKind::ContainJoinTsTs,
        StreamOpKind::ContainJoinTsTe,
        StreamOpKind::SweepSemijoin,
        StreamOpKind::ContainSemijoinStab,
        StreamOpKind::ContainedSemijoinStab,
        StreamOpKind::ContainedSelfSemijoin,
        StreamOpKind::ContainSelfSemijoin,
        StreamOpKind::ContainSelfSemijoinDesc,
        StreamOpKind::OverlapJoin,
        StreamOpKind::OverlapSemijoin,
        StreamOpKind::BeforeJoin,
        StreamOpKind::BeforeSemijoin,
    ];

    /// The registry entry for this kind.
    pub const fn requirement(self) -> &'static OrderRequirement {
        const TS: Option<StreamOrder> = Some(StreamOrder::TS_ASC);
        const TE: Option<StreamOrder> = Some(StreamOrder::TE_ASC);
        const TS_TE: Option<StreamOrder> = Some(StreamOrder::TS_ASC_TE_ASC);
        const TS_TE_DESC: Option<StreamOrder> = Some(TS_DESC_TE_DESC);
        const NONE: Option<StreamOrder> = None;
        match self {
            StreamOpKind::ContainJoinTsTs => &OrderRequirement {
                operator: "ContainJoinTsTs",
                inputs: &[TS, TS],
                table_entry: "Table 1 (a): Contain-join under (ValidFrom ↑, ValidFrom ↑)",
                partition_safe: true,
            },
            StreamOpKind::ContainJoinTsTe => &OrderRequirement {
                operator: "ContainJoinTsTe",
                inputs: &[TS, TE],
                table_entry: "Table 1 (b): Contain-join under (ValidFrom ↑, ValidTo ↑)",
                partition_safe: true,
            },
            StreamOpKind::SweepSemijoin => &OrderRequirement {
                operator: "SweepSemijoin",
                inputs: &[TS, TS],
                table_entry: "Table 1 (c): Contain-semijoin under (ValidFrom ↑, ValidFrom ↑)",
                partition_safe: true,
            },
            StreamOpKind::ContainSemijoinStab => &OrderRequirement {
                operator: "ContainSemijoinStab",
                inputs: &[TS, TE],
                table_entry: "Table 1 (d): Contain-semijoin under (ValidFrom ↑, ValidTo ↑)",
                partition_safe: true,
            },
            StreamOpKind::ContainedSemijoinStab => &OrderRequirement {
                operator: "ContainedSemijoinStab",
                inputs: &[TE, TS],
                table_entry: "Table 1 (d): Contained-semijoin under (ValidTo ↑, ValidFrom ↑)",
                partition_safe: true,
            },
            StreamOpKind::ContainedSelfSemijoin => &OrderRequirement {
                operator: "ContainedSelfSemijoin",
                inputs: &[TS_TE],
                table_entry:
                    "Table 3 (a): Contained-semijoin(X,X) under ValidFrom ↑ then ValidTo ↑",
                partition_safe: true,
            },
            StreamOpKind::ContainSelfSemijoin => &OrderRequirement {
                operator: "ContainSelfSemijoin",
                inputs: &[TS_TE],
                table_entry: "Table 3 (b): Contain-semijoin(X,X) under ValidFrom ↑ then ValidTo ↑",
                partition_safe: true,
            },
            StreamOpKind::ContainSelfSemijoinDesc => &OrderRequirement {
                operator: "ContainSelfSemijoinDesc",
                inputs: &[TS_TE_DESC],
                table_entry:
                    "Table 3 row 2: Contain-semijoin(X,X) under ValidFrom ↓ then ValidTo ↓",
                partition_safe: true,
            },
            StreamOpKind::OverlapJoin => &OrderRequirement {
                operator: "OverlapJoin",
                inputs: &[TS, TS],
                table_entry: "Table 2 (a): Overlap-join under (ValidFrom ↑, ValidFrom ↑)",
                partition_safe: true,
            },
            StreamOpKind::OverlapSemijoin => &OrderRequirement {
                operator: "OverlapSemijoin",
                inputs: &[TS, TS],
                table_entry: "Table 2 (b): Overlap-semijoin under (ValidFrom ↑, ValidFrom ↑)",
                partition_safe: true,
            },
            StreamOpKind::BeforeJoin => &OrderRequirement {
                operator: "BeforeJoin",
                inputs: &[NONE, NONE],
                table_entry: "§4.2.4: Before-join — no sort ordering bounds its state",
                partition_safe: false,
            },
            StreamOpKind::BeforeSemijoin => &OrderRequirement {
                operator: "BeforeSemijoin",
                inputs: &[NONE, NONE],
                table_entry: "§4.2.4: Before-semijoin — order-independent single scan",
                partition_safe: false,
            },
        }
    }
}

impl fmt::Display for StreamOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.requirement().operator)
    }
}

/// Operators declare which registry entry governs them. The static analyzer
/// and the executor consult `Self::KIND.requirement()` instead of
/// re-deriving orderings per call site.
pub trait RequiredOrder {
    /// The registry kind of this operator.
    const KIND: StreamOpKind;

    /// The declared requirement (delegates to the registry).
    fn required() -> &'static OrderRequirement {
        Self::KIND.requirement()
    }
}

/// Verify that stream `s` declares an order satisfying `required`.
///
/// The shared constructor-time gate: `required = None` always passes;
/// otherwise the stream must declare an order that [`StreamOrder::satisfies`]
/// the requirement. Mirrored orderings are *not* accepted here — operators
/// implement the direct algorithms and the algebra layer reduces mirrors to
/// them by time reversal.
pub fn check_stream_order<S: TupleStream>(
    s: &S,
    required: Option<StreamOrder>,
    operator: &'static str,
    side: &str,
) -> TdbResult<()> {
    let Some(required) = required else {
        return Ok(());
    };
    match s.order() {
        Some(o) if o.satisfies(&required) => Ok(()),
        Some(o) => Err(TdbError::UnsupportedOrdering {
            operator,
            detail: format!("{side} input is sorted {o}, operator requires {required}"),
        }),
        None => Err(TdbError::UnsupportedOrdering {
            operator,
            detail: format!("{side} input declares no sort order; {required} required"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{from_sorted_vec, from_vec};
    use tdb_core::TsTuple;

    #[test]
    fn registry_is_consistent() {
        for kind in StreamOpKind::ALL {
            let req = kind.requirement();
            assert!(!req.operator.is_empty());
            assert!(req.table_entry.contains("Table") || req.table_entry.contains("§"));
            assert!(req.arity() == 1 || req.arity() == 2);
        }
    }

    #[test]
    fn before_ops_are_not_partition_safe() {
        assert!(!StreamOpKind::BeforeJoin.requirement().partition_safe);
        assert!(!StreamOpKind::BeforeSemijoin.requirement().partition_safe);
        assert!(StreamOpKind::OverlapJoin.requirement().partition_safe);
    }

    #[test]
    fn check_stream_order_gate() {
        let sorted =
            from_sorted_vec(vec![TsTuple::interval(0, 2).unwrap()], StreamOrder::TS_ASC).unwrap();
        assert!(check_stream_order(&sorted, Some(StreamOrder::TS_ASC), "T", "X").is_ok());
        assert!(check_stream_order(&sorted, None, "T", "X").is_ok());
        assert!(check_stream_order(&sorted, Some(StreamOrder::TE_ASC), "T", "X").is_err());
        let unsorted = from_vec(vec![TsTuple::interval(0, 2).unwrap()]);
        assert!(check_stream_order(&unsorted, Some(StreamOrder::TS_ASC), "T", "X").is_err());
    }
}
