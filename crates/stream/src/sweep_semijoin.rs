//! Sweep-based containment semijoins for the `(ValidFrom ↑, ValidFrom ↑)`
//! configuration — Table 1 state (c).
//!
//! When both inputs are sorted on `ValidFrom ↑` (instead of the stab
//! algorithm's mixed TS/TE orders), a containment semijoin still runs in a
//! single pass, but it must keep a state *set*: Table 1 characterizes it as
//! a subset of the Contain-join state (a), because a semijoin may discard a
//! tuple as soon as it is witnessed ("a stream processor can output a tuple
//! as soon as it finds the first matching tuple").
//!
//! [`SweepSemijoin`] handles both directions:
//! * [`SweepSemijoin::contain`] — emit `x ∈ X` containing some `y ∈ Y`;
//! * [`SweepSemijoin::contained`] — emit `x ∈ X` contained in some `y ∈ Y`.

use crate::metrics::OpMetrics;
use crate::progress::Progress;
use crate::read_policy::{Advance, PolicyState, ReadPolicy};
use crate::required::{check_stream_order, RequiredOrder, StreamOpKind};
use crate::stream::TupleStream;
use crate::workspace::{Workspace, WorkspaceStats};
use std::collections::VecDeque;
use tdb_core::{Period, StreamOrder, TdbError, TdbResult, Temporal};

/// Direction of the containment test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Emit X tuples that contain a Y tuple.
    XContainsY,
    /// Emit X tuples contained in a Y tuple.
    YContainsX,
}

impl Mode {
    /// Does the (x, y) pair match under this mode?
    fn matches(self, x: &Period, y: &Period) -> bool {
        match self {
            Mode::XContainsY => x.contains(y),
            Mode::YContainsX => y.contains(x),
        }
    }
}

/// Containment semijoin over two `ValidFrom ↑` streams, emitting the X side.
pub struct SweepSemijoin<X: TupleStream, Y: TupleStream>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    x: X,
    y: Y,
    mode: Mode,
    x_buf: Option<X::Item>,
    y_buf: Option<Y::Item>,
    /// X tuples awaiting a witness.
    state_x: Workspace<X::Item>,
    /// Y tuples that may still witness (or contain) a future X tuple.
    state_y: Workspace<Y::Item>,
    pending: VecDeque<X::Item>,
    policy: ReadPolicy,
    policy_state: PolicyState,
    metrics: OpMetrics,
    progress: Option<Progress>,
    started: bool,
}

impl<X: TupleStream, Y: TupleStream> RequiredOrder for SweepSemijoin<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    const KIND: StreamOpKind = StreamOpKind::SweepSemijoin;
}

impl<X: TupleStream, Y: TupleStream> SweepSemijoin<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    /// `Contain-semijoin(X,Y)` under `(ValidFrom ↑, ValidFrom ↑)`.
    pub fn contain(x: X, y: Y, policy: ReadPolicy) -> TdbResult<Self> {
        Self::new(x, y, Mode::XContainsY, policy)
    }

    /// `Contained-semijoin(X,Y)` under `(ValidFrom ↑, ValidFrom ↑)`.
    pub fn contained(x: X, y: Y, policy: ReadPolicy) -> TdbResult<Self> {
        Self::new(x, y, Mode::YContainsX, policy)
    }

    fn new(x: X, y: Y, mode: Mode, policy: ReadPolicy) -> TdbResult<Self> {
        let req = Self::KIND.requirement();
        check_stream_order(&x, req.left(), req.operator, "X")?;
        check_stream_order(&y, req.right(), req.operator, "Y")?;
        Ok(SweepSemijoin {
            x,
            y,
            mode,
            x_buf: None,
            y_buf: None,
            state_x: Workspace::new(),
            state_y: Workspace::new(),
            pending: VecDeque::new(),
            policy,
            policy_state: PolicyState::default(),
            metrics: OpMetrics {
                passes: 1,
                ..OpMetrics::default()
            },
            progress: None,
            started: false,
        })
    }

    /// Attach a shared [`Progress`] handle: the operator publishes its
    /// monotonic admitted/GC'd/emitted totals into it on every `next()`
    /// call, so a live subscriber can observe progress mid-run.
    pub fn with_progress(mut self, progress: &Progress) -> Self {
        self.progress = Some(progress.clone());
        self
    }

    fn publish_progress(&self) {
        if let Some(p) = &self.progress {
            let gc = self.state_x.stats().discarded + self.state_y.stats().discarded;
            p.publish(
                self.metrics.read_total() as u64,
                gc as u64,
                self.metrics.emitted as u64,
            );
        }
    }

    /// Execution metrics.
    pub fn metrics(&self) -> OpMetrics {
        self.metrics
    }

    /// Workspace statistics for the (X, Y) state sets.
    pub fn workspace(&self) -> (WorkspaceStats, WorkspaceStats) {
        (self.state_x.stats(), self.state_y.stats())
    }

    /// Combined maximum resident state tuples.
    pub fn max_workspace(&self) -> usize {
        self.state_x.stats().max_resident + self.state_y.stats().max_resident
    }

    fn refill_x(&mut self) -> TdbResult<()> {
        self.x_buf = self.x.next()?;
        if self.x_buf.is_some() {
            self.metrics.read_left += 1;
        }
        Ok(())
    }

    fn refill_y(&mut self) -> TdbResult<()> {
        self.y_buf = self.y.next()?;
        if self.y_buf.is_some() {
            self.metrics.read_right += 1;
        }
        Ok(())
    }

    /// GC keyed off the buffered tuples. For either containment direction a
    /// resident tuple is dead once no current-or-future partner can satisfy
    /// the strict inequalities — the cutoffs below are exactly the
    /// Contain-join rules with the roles fixed per mode.
    fn gc_phase(&mut self) {
        match self.mode {
            Mode::XContainsY => {
                // x must contain a future y (y.TS ≥ y_buf.TS): dead if
                // x.TE < y_buf.TS. y must be contained in a future x
                // (x.TS ≥ x_buf.TS): dead if y.TS < x_buf.TS.
                if let Some(yb) = &self.y_buf {
                    let cutoff = yb.ts();
                    self.state_x.gc(|x| x.te() >= cutoff);
                } else if self.started {
                    self.state_x.gc(|_| false);
                }
                if let Some(xb) = &self.x_buf {
                    let cutoff = xb.ts();
                    self.state_y.gc(|y| y.ts() >= cutoff);
                } else if self.started {
                    self.state_y.gc(|_| false);
                }
            }
            Mode::YContainsX => {
                // Mirror roles: x is the containee, y the container.
                if let Some(yb) = &self.y_buf {
                    let cutoff = yb.ts();
                    self.state_x.gc(|x| x.ts() >= cutoff);
                } else if self.started {
                    self.state_x.gc(|_| false);
                }
                if let Some(xb) = &self.x_buf {
                    let cutoff = xb.ts();
                    self.state_y.gc(|y| y.te() >= cutoff);
                } else if self.started {
                    self.state_y.gc(|_| false);
                }
            }
        }
    }

    fn process_x(&mut self) -> TdbResult<()> {
        let Some(x) = self.x_buf.take() else {
            return Err(TdbError::Eval(
                "sweep-semijoin advanced an empty X buffer".into(),
            ));
        };
        let xp = x.period();
        self.metrics.comparisons += self.state_y.len();
        let witnessed = self
            .state_y
            .iter()
            .any(|y| self.mode.matches(&xp, &y.period()));
        if witnessed {
            // Semijoin: emit immediately, never store.
            self.pending.push_back(x);
        } else {
            self.state_x.insert(x);
        }
        self.refill_x()?;
        self.gc_phase();
        Ok(())
    }

    fn process_y(&mut self) -> TdbResult<()> {
        let Some(y) = self.y_buf.take() else {
            return Err(TdbError::Eval(
                "sweep-semijoin advanced an empty Y buffer".into(),
            ));
        };
        let yp = y.period();
        self.metrics.comparisons += self.state_x.len();
        let mode = self.mode;
        let witnessed = self.state_x.extract(|x| mode.matches(&x.period(), &yp));
        self.pending.extend(witnessed);
        self.state_y.insert(y);
        self.refill_y()?;
        self.gc_phase();
        Ok(())
    }
}

impl<X: TupleStream, Y: TupleStream> TupleStream for SweepSemijoin<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    type Item = X::Item;

    fn next(&mut self) -> TdbResult<Option<X::Item>> {
        let out = self.next_inner();
        self.publish_progress();
        out
    }

    fn order(&self) -> Option<StreamOrder> {
        None // emission order mixes arrival and witness order
    }
}

impl<X: TupleStream, Y: TupleStream> SweepSemijoin<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    fn next_inner(&mut self) -> TdbResult<Option<X::Item>> {
        loop {
            if let Some(out) = self.pending.pop_front() {
                self.metrics.emitted += 1;
                return Ok(Some(out));
            }
            if !self.started {
                self.started = true;
                self.refill_x()?;
                self.refill_y()?;
            }
            match (&self.x_buf, &self.y_buf) {
                (None, None) => return Ok(None),
                (Some(_), None) => {
                    if self.state_y.is_empty() {
                        return Ok(None);
                    }
                    self.process_x()?;
                }
                (None, Some(_)) => {
                    if self.state_x.is_empty() {
                        return Ok(None);
                    }
                    self.process_y()?;
                }
                (Some(x), Some(y)) => {
                    let d = self.policy.decide(
                        &mut self.policy_state,
                        x,
                        y,
                        x.ts(),
                        y.ts(),
                        self.state_x.len(),
                        self.state_y.len(),
                    );
                    match d {
                        Advance::Left => self.process_x()?,
                        Advance::Right => self.process_y()?,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::from_sorted_vec;
    use proptest::prelude::*;
    use tdb_core::TsTuple;

    fn iv(s: i64, e: i64) -> TsTuple {
        TsTuple::interval(s, e).unwrap()
    }

    fn canon(mut v: Vec<TsTuple>) -> Vec<TsTuple> {
        v.sort_by_key(|t| (t.ts().ticks(), t.te().ticks(), t.value.clone()));
        v
    }

    fn run(
        mut xs: Vec<TsTuple>,
        mut ys: Vec<TsTuple>,
        contain: bool,
        policy: ReadPolicy,
    ) -> (Vec<TsTuple>, usize) {
        StreamOrder::TS_ASC.sort(&mut xs);
        StreamOrder::TS_ASC.sort(&mut ys);
        let x = from_sorted_vec(xs, StreamOrder::TS_ASC).unwrap();
        let y = from_sorted_vec(ys, StreamOrder::TS_ASC).unwrap();
        let mut op = if contain {
            SweepSemijoin::contain(x, y, policy).unwrap()
        } else {
            SweepSemijoin::contained(x, y, policy).unwrap()
        };
        let out = op.collect_vec().unwrap();
        (canon(out), op.max_workspace())
    }

    fn contain_oracle(xs: &[TsTuple], ys: &[TsTuple]) -> Vec<TsTuple> {
        xs.iter()
            .filter(|x| ys.iter().any(|y| x.period.contains(&y.period)))
            .cloned()
            .collect()
    }

    fn contained_oracle(xs: &[TsTuple], ys: &[TsTuple]) -> Vec<TsTuple> {
        xs.iter()
            .filter(|x| ys.iter().any(|y| y.period.contains(&x.period)))
            .cloned()
            .collect()
    }

    #[test]
    fn basic_contain_and_contained() {
        let xs = vec![iv(0, 10), iv(2, 6), iv(12, 14)];
        let ys = vec![iv(1, 5), iv(11, 20)];
        let (got, _) = run(xs.clone(), ys.clone(), true, ReadPolicy::MinKey);
        assert_eq!(got, canon(contain_oracle(&xs, &ys))); // [0,10) ⊃ [1,5)
        assert_eq!(got.len(), 1);
        let (got, _) = run(xs.clone(), ys.clone(), false, ReadPolicy::MinKey);
        assert_eq!(got, canon(contained_oracle(&xs, &ys))); // [12,14) ⊂ [11,20)
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn emits_each_x_once() {
        let xs = vec![iv(0, 100)];
        let ys: Vec<_> = (1..20).map(|i| iv(i, i + 2)).collect();
        let (got, _) = run(xs, ys, true, ReadPolicy::MinKey);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn rejects_unsorted_inputs() {
        let x = crate::stream::from_vec(vec![iv(0, 5)]);
        let y = from_sorted_vec(vec![iv(0, 5)], StreamOrder::TS_ASC).unwrap();
        assert!(SweepSemijoin::contain(x, y, ReadPolicy::MinKey).is_err());
    }

    #[test]
    fn semijoin_state_is_subset_of_join_state() {
        // Table 1: state (c) ⊆ state (a). Compare against the contain-join
        // on identical data under the same policy.
        let xs: Vec<_> = (0..200).map(|i| iv(i, i + 30)).collect();
        let ys: Vec<_> = (0..200).map(|i| iv(i + 1, i + 5)).collect();
        let (_, semi_ws) = run(xs.clone(), ys.clone(), true, ReadPolicy::MinKey);

        let x = from_sorted_vec(xs, StreamOrder::TS_ASC).unwrap();
        let y = from_sorted_vec(ys, StreamOrder::TS_ASC).unwrap();
        let mut join = crate::contain_join::ContainJoinTsTs::new(x, y, ReadPolicy::MinKey).unwrap();
        let _ = join.collect_vec().unwrap();
        assert!(
            semi_ws <= join.max_workspace() + 1,
            "semijoin workspace {semi_ws} should not exceed join workspace {}",
            join.max_workspace()
        );
    }

    fn arb_intervals(n: usize) -> impl Strategy<Value = Vec<TsTuple>> {
        proptest::collection::vec((-60i64..60, 1i64..40), 0..n)
            .prop_map(|v| v.into_iter().map(|(s, d)| iv(s, s + d)).collect())
    }

    proptest! {
        #[test]
        fn matches_oracles(xs in arb_intervals(40), ys in arb_intervals(40)) {
            for policy in [ReadPolicy::MinKey, ReadPolicy::Alternate] {
                let (got, _) = run(xs.clone(), ys.clone(), true, policy);
                prop_assert_eq!(got, canon(contain_oracle(&xs, &ys)));
                let (got, _) = run(xs.clone(), ys.clone(), false, policy);
                prop_assert_eq!(got, canon(contained_oracle(&xs, &ys)));
            }
        }
    }
}
