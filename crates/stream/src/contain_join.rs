//! Contain-join stream processors (paper §4.2.1, Figure 5, Table 1).
//!
//! `Contain-join(X, Y)` outputs the concatenation of tuples `x ∈ X`, `y ∈ Y`
//! whenever the lifespan of `x` strictly contains that of `y`:
//! `x.TS < y.TS ∧ y.TE < x.TE` (the *during* relationship of Figure 2 with
//! roles swapped). Note `Contain-join(X,Y)` and `Contain-join(Y,X)` are not
//! equivalent.
//!
//! Two sorted configurations admit single-pass evaluation with bounded
//! state:
//!
//! * [`ContainJoinTsTs`] — both inputs sorted `ValidFrom ↑` (Figure 5).
//!   State (a) of Table 1: `{X tuples whose lifespan span y_b.TS} ∪
//!   {Y tuples whose TS lies in x_b's lifespan}`.
//! * [`ContainJoinTsTe`] — X sorted `ValidFrom ↑`, Y sorted `ValidTo ↑`.
//!   State (b) of Table 1: `{X tuples whose lifespan span y_b.TE}` (our
//!   pull-driven variant never stores Y tuples at all, so it realizes the
//!   X component of state (b) only).
//!
//! Mirrored orderings (`ValidTo ↓` / `ValidTo ↓`, etc.) are served by the
//! same operators after time reversal (Table 1's lower half "is the mirror
//! image of the upper half"); the algebra layer performs that reduction.
//!
//! ### Correctness of emit-on-arrival (proof sketch, any read policy)
//!
//! Each output pair is emitted exactly once: when the *later-processed*
//! partner arrives, it is joined against the opposite state, which still
//! holds the earlier partner because the GC rules only discard tuples that
//! can match no future arrival:
//!
//! * discarding `y` when `y.TS < x_b.TS` is safe — every future `x` has
//!   `x.TS ≥ x_b.TS > y.TS`, violating `x.TS < y.TS`;
//! * discarding `x` when `x.TE < y_b.TS` is safe — every future `y` has
//!   `y.TE > y.TS ≥ y_b.TS > x.TE`, violating `y.TE < x.TE`.
//!
//! ### Paper erratum (TS↑/TE↑ case)
//!
//! The paper's garbage-collection phase for the `(ValidFrom ↑, ValidTo ↑)`
//! configuration reads "dispose of X tuples if X.ValidTo **>** y_b.ValidTo",
//! which would discard exactly the tuples that still can contain future Y
//! tuples, contradicting the state characterization (b) "X tuples whose
//! lifespan *span* y_b.ValidTo". We implement the evidently intended
//! condition `X.ValidTo < y_b.ValidTo` (every future `y` has
//! `y.TE ≥ y_b.TE > x.TE`, so such `x` is dead). A regression test pins
//! this down.

use crate::metrics::OpMetrics;
use crate::progress::Progress;
use crate::read_policy::{Advance, PolicyState, ReadPolicy};
use crate::required::{check_stream_order, RequiredOrder, StreamOpKind};
use crate::stream::TupleStream;
use crate::workspace::{Workspace, WorkspaceStats};
use std::collections::VecDeque;
use tdb_core::{StreamOrder, TdbError, TdbResult, Temporal};

/// Contain-join with both inputs sorted `ValidFrom ↑` (Figure 5).
///
/// ```
/// use tdb_stream::{from_sorted_vec, ContainJoinTsTs, ReadPolicy, TupleStream};
/// use tdb_core::{StreamOrder, TsTuple};
///
/// let contracts = vec![TsTuple::interval(0, 10)?, TsTuple::interval(4, 6)?];
/// let tasks = vec![TsTuple::interval(1, 3)?, TsTuple::interval(5, 20)?];
/// let mut join = ContainJoinTsTs::new(
///     from_sorted_vec(contracts, StreamOrder::TS_ASC)?,
///     from_sorted_vec(tasks, StreamOrder::TS_ASC)?,
///     ReadPolicy::MinKey,
/// )?;
/// let pairs = join.collect_vec()?;
/// assert_eq!(pairs.len(), 1); // [0,10) contains [1,3)
/// assert!(join.max_workspace() <= 3);
/// # Ok::<(), tdb_core::TdbError>(())
/// ```
pub struct ContainJoinTsTs<X: TupleStream, Y: TupleStream>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    x: X,
    y: Y,
    x_buf: Option<X::Item>,
    y_buf: Option<Y::Item>,
    state_x: Workspace<X::Item>,
    state_y: Workspace<Y::Item>,
    pending: VecDeque<(X::Item, Y::Item)>,
    policy: ReadPolicy,
    policy_state: PolicyState,
    metrics: OpMetrics,
    progress: Option<Progress>,
    started: bool,
}

impl<X: TupleStream, Y: TupleStream> RequiredOrder for ContainJoinTsTs<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    const KIND: StreamOpKind = StreamOpKind::ContainJoinTsTs;
}

impl<X: TupleStream, Y: TupleStream> ContainJoinTsTs<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    /// Required ordering for both inputs.
    pub const REQUIRED: StreamOrder = StreamOrder::TS_ASC;

    /// Build the operator, verifying both inputs declare `ValidFrom ↑`.
    pub fn new(x: X, y: Y, policy: ReadPolicy) -> TdbResult<Self> {
        let req = Self::KIND.requirement();
        check_stream_order(&x, req.left(), req.operator, "X")?;
        check_stream_order(&y, req.right(), req.operator, "Y")?;
        Ok(ContainJoinTsTs {
            x,
            y,
            x_buf: None,
            y_buf: None,
            state_x: Workspace::new(),
            state_y: Workspace::new(),
            pending: VecDeque::new(),
            policy,
            policy_state: PolicyState::default(),
            metrics: OpMetrics {
                passes: 1,
                ..OpMetrics::default()
            },
            progress: None,
            started: false,
        })
    }

    /// Attach a shared [`Progress`] handle: the operator publishes its
    /// monotonic admitted/GC'd/emitted totals into it on every `next()`
    /// call, so a live subscriber can observe progress mid-run.
    pub fn with_progress(mut self, progress: &Progress) -> Self {
        self.progress = Some(progress.clone());
        self
    }

    fn publish_progress(&self) {
        if let Some(p) = &self.progress {
            let gc = self.state_x.stats().discarded + self.state_y.stats().discarded;
            p.publish(
                self.metrics.read_total() as u64,
                gc as u64,
                self.metrics.emitted as u64,
            );
        }
    }

    /// Execution metrics.
    pub fn metrics(&self) -> OpMetrics {
        self.metrics
    }

    /// Workspace statistics of the X and Y state sets.
    pub fn workspace(&self) -> (WorkspaceStats, WorkspaceStats) {
        (self.state_x.stats(), self.state_y.stats())
    }

    /// Combined maximum resident state tuples (both sides plus the two
    /// input buffers are the paper's "local workspace").
    pub fn max_workspace(&self) -> usize {
        self.state_x.stats().max_resident + self.state_y.stats().max_resident
    }

    fn refill_x(&mut self) -> TdbResult<()> {
        self.x_buf = self.x.next()?;
        if self.x_buf.is_some() {
            self.metrics.read_left += 1;
        }
        Ok(())
    }

    fn refill_y(&mut self) -> TdbResult<()> {
        self.y_buf = self.y.next()?;
        if self.y_buf.is_some() {
            self.metrics.read_right += 1;
        }
        Ok(())
    }

    /// Garbage-collection phase (paper step 3), keyed off the *buffered*
    /// tuples `x_b` / `y_b`:
    ///
    /// * discard resident `x` with `x.TE < y_b.TS` — no current or future
    ///   `y` can end inside it;
    /// * discard resident `y` with `y.TS < x_b.TS` — no current or future
    ///   `x` can start before it.
    ///
    /// When an input is exhausted its opposite state is useless and cleared.
    fn gc_phase(&mut self) {
        match &self.y_buf {
            Some(yb) => {
                let cutoff = yb.ts();
                self.state_x.gc(|x| x.te() >= cutoff);
            }
            None if self.started => self.state_x.gc(|_| false),
            None => {}
        }
        match &self.x_buf {
            Some(xb) => {
                let cutoff = xb.ts();
                self.state_y.gc(|y| y.ts() >= cutoff);
            }
            None if self.started => self.state_y.gc(|_| false),
            None => {}
        }
    }

    /// Process the buffered X tuple: join it against the Y state, retain it
    /// as X state, then run the GC phase against the refreshed buffers.
    fn process_x(&mut self) -> TdbResult<()> {
        let Some(x) = self.x_buf.take() else {
            return Err(TdbError::Eval(
                "contain-join advanced an empty X buffer".into(),
            ));
        };
        let xp = x.period();
        for y in &self.state_y {
            self.metrics.comparisons += 1;
            if xp.contains(&y.period()) {
                self.pending.push_back((x.clone(), y.clone()));
            }
        }
        self.state_x.insert(x);
        self.refill_x()?;
        self.gc_phase();
        Ok(())
    }

    fn process_y(&mut self) -> TdbResult<()> {
        let Some(y) = self.y_buf.take() else {
            return Err(TdbError::Eval(
                "contain-join advanced an empty Y buffer".into(),
            ));
        };
        let yp = y.period();
        for x in &self.state_x {
            self.metrics.comparisons += 1;
            if x.period().contains(&yp) {
                self.pending.push_back((x.clone(), y.clone()));
            }
        }
        self.state_y.insert(y);
        self.refill_y()?;
        self.gc_phase();
        Ok(())
    }
}

impl<X: TupleStream, Y: TupleStream> TupleStream for ContainJoinTsTs<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    type Item = (X::Item, Y::Item);

    fn next(&mut self) -> TdbResult<Option<Self::Item>> {
        let out = self.next_inner();
        self.publish_progress();
        out
    }

    fn order(&self) -> Option<StreamOrder> {
        None // pair output carries no single-period ordering
    }
}

impl<X: TupleStream, Y: TupleStream> ContainJoinTsTs<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    fn next_inner(&mut self) -> TdbResult<Option<(X::Item, Y::Item)>> {
        loop {
            if let Some(pair) = self.pending.pop_front() {
                self.metrics.emitted += 1;
                return Ok(Some(pair));
            }
            if !self.started {
                self.started = true;
                self.refill_x()?;
                self.refill_y()?;
            }
            match (&self.x_buf, &self.y_buf) {
                (None, None) => return Ok(None),
                (Some(_), None) => {
                    // No more Y arrivals: new X tuples can only match
                    // resident Y state.
                    if self.state_y.is_empty() {
                        return Ok(None);
                    }
                    self.process_x()?;
                }
                (None, Some(_)) => {
                    if self.state_x.is_empty() {
                        return Ok(None);
                    }
                    self.process_y()?;
                }
                (Some(x), Some(y)) => {
                    let decision = self.policy.decide(
                        &mut self.policy_state,
                        x,
                        y,
                        x.ts(),
                        y.ts(),
                        self.state_x.len(),
                        self.state_y.len(),
                    );
                    match decision {
                        Advance::Left => self.process_x()?,
                        Advance::Right => self.process_y()?,
                    }
                }
            }
        }
    }
}

/// Contain-join with X sorted `ValidFrom ↑` and Y sorted `ValidTo ↑`.
///
/// Driven by the Y stream: before each `y` is processed, every `x` with
/// `x.TS < y.TS` has been read into state. Y tuples are matched on arrival
/// and never stored, so the workspace is exactly Table 1's state (b) X
/// component: `{x : x.TE ≥ y_b.TE}` among the read prefix.
pub struct ContainJoinTsTe<X: TupleStream, Y: TupleStream>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    x: X,
    y: Y,
    x_buf: Option<X::Item>,
    state_x: Workspace<X::Item>,
    pending: VecDeque<(X::Item, Y::Item)>,
    metrics: OpMetrics,
    progress: Option<Progress>,
    started: bool,
}

impl<X: TupleStream, Y: TupleStream> RequiredOrder for ContainJoinTsTe<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    const KIND: StreamOpKind = StreamOpKind::ContainJoinTsTe;
}

impl<X: TupleStream, Y: TupleStream> ContainJoinTsTe<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    /// Required ordering of the X input.
    pub const REQUIRED_X: StreamOrder = StreamOrder::TS_ASC;
    /// Required ordering of the Y input.
    pub const REQUIRED_Y: StreamOrder = StreamOrder::TE_ASC;

    /// Build the operator, verifying the input orders.
    pub fn new(x: X, y: Y) -> TdbResult<Self> {
        let req = Self::KIND.requirement();
        check_stream_order(&x, req.left(), req.operator, "X")?;
        check_stream_order(&y, req.right(), req.operator, "Y")?;
        Ok(ContainJoinTsTe {
            x,
            y,
            x_buf: None,
            state_x: Workspace::new(),
            pending: VecDeque::new(),
            metrics: OpMetrics {
                passes: 1,
                ..OpMetrics::default()
            },
            progress: None,
            started: false,
        })
    }

    /// Attach a shared [`Progress`] handle: the operator publishes its
    /// monotonic admitted/GC'd/emitted totals into it on every `next()`
    /// call, so a live subscriber can observe progress mid-run.
    pub fn with_progress(mut self, progress: &Progress) -> Self {
        self.progress = Some(progress.clone());
        self
    }

    fn publish_progress(&self) {
        if let Some(p) = &self.progress {
            p.publish(
                self.metrics.read_total() as u64,
                self.state_x.stats().discarded as u64,
                self.metrics.emitted as u64,
            );
        }
    }

    /// Execution metrics.
    pub fn metrics(&self) -> OpMetrics {
        self.metrics
    }

    /// Workspace statistics of the X state (the operator keeps no Y state).
    pub fn workspace(&self) -> WorkspaceStats {
        self.state_x.stats()
    }

    /// Maximum resident state tuples.
    pub fn max_workspace(&self) -> usize {
        self.state_x.stats().max_resident
    }

    fn refill_x(&mut self) -> TdbResult<()> {
        self.x_buf = self.x.next()?;
        if self.x_buf.is_some() {
            self.metrics.read_left += 1;
        }
        Ok(())
    }
}

impl<X: TupleStream, Y: TupleStream> TupleStream for ContainJoinTsTe<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    type Item = (X::Item, Y::Item);

    fn next(&mut self) -> TdbResult<Option<Self::Item>> {
        let out = self.next_inner();
        self.publish_progress();
        out
    }

    fn order(&self) -> Option<StreamOrder> {
        None
    }
}

impl<X: TupleStream, Y: TupleStream> ContainJoinTsTe<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    fn next_inner(&mut self) -> TdbResult<Option<(X::Item, Y::Item)>> {
        loop {
            if let Some(pair) = self.pending.pop_front() {
                self.metrics.emitted += 1;
                return Ok(Some(pair));
            }
            if !self.started {
                self.started = true;
                self.refill_x()?;
            }
            let Some(y) = self.y.next()? else {
                return Ok(None);
            };
            self.metrics.read_right += 1;
            let yp = y.period();

            // GC phase (paper-corrected condition, see module docs): x with
            // x.TE < y_b.TE can contain neither this y nor any later one.
            self.state_x.gc(|x| x.te() >= yp.end());

            // Read phase: pull every x that could contain this or a later y
            // (all x with x.TS < y.TS; later y has TE ≥ y.TE but TS is
            // unconstrained, so the read frontier is per-y). The GC
            // condition doubles as an admission filter: a dead-on-arrival
            // x (x.TE < y_b.TE) never enters the state, so every resident
            // x spans the sweep point y_b.TE and the workspace never
            // transiently exceeds Table 1's state (b).
            while let Some(xb) = self.x_buf.take() {
                self.metrics.comparisons += 1;
                if xb.ts() < yp.start() {
                    if xb.te() >= yp.end() {
                        self.state_x.insert(xb);
                    }
                    self.refill_x()?;
                } else {
                    self.x_buf = Some(xb);
                    break;
                }
            }

            // Join phase: y against the surviving X state.
            for x in &self.state_x {
                self.metrics.comparisons += 1;
                if x.period().contains(&yp) {
                    self.pending.push_back((x.clone(), y.clone()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::from_sorted_vec;
    use proptest::prelude::*;
    use tdb_core::{TdbError, TsTuple};
    use tdb_gen::IntervalGen;

    fn iv(s: i64, e: i64) -> TsTuple {
        TsTuple::interval(s, e).unwrap()
    }

    /// Nested-loop oracle for Contain-join.
    fn oracle(xs: &[TsTuple], ys: &[TsTuple]) -> Vec<(TsTuple, TsTuple)> {
        let mut out = Vec::new();
        for x in xs {
            for y in ys {
                if x.period.contains(&y.period) {
                    out.push((x.clone(), y.clone()));
                }
            }
        }
        canon(out)
    }

    fn canon(mut pairs: Vec<(TsTuple, TsTuple)>) -> Vec<(TsTuple, TsTuple)> {
        pairs.sort_by_key(|(x, y)| {
            (
                x.ts().ticks(),
                x.te().ticks(),
                y.ts().ticks(),
                y.te().ticks(),
            )
        });
        pairs
    }

    fn run_ts_ts(
        xs: Vec<TsTuple>,
        ys: Vec<TsTuple>,
        policy: ReadPolicy,
    ) -> (Vec<(TsTuple, TsTuple)>, usize) {
        let x = from_sorted_vec(xs, StreamOrder::TS_ASC).unwrap();
        let y = from_sorted_vec(ys, StreamOrder::TS_ASC).unwrap();
        let mut j = ContainJoinTsTs::new(x, y, policy).unwrap();
        let out = j.collect_vec().unwrap();
        (canon(out), j.max_workspace())
    }

    fn run_ts_te(xs: Vec<TsTuple>, mut ys: Vec<TsTuple>) -> (Vec<(TsTuple, TsTuple)>, usize) {
        StreamOrder::TE_ASC.sort(&mut ys);
        let x = from_sorted_vec(xs, StreamOrder::TS_ASC).unwrap();
        let y = from_sorted_vec(ys, StreamOrder::TE_ASC).unwrap();
        let mut j = ContainJoinTsTe::new(x, y).unwrap();
        let out = j.collect_vec().unwrap();
        (canon(out), j.max_workspace())
    }

    #[test]
    fn figure5_style_example() {
        // X tuples span broadly; Y tuples nest inside them.
        let xs = vec![iv(0, 10), iv(2, 20), iv(15, 18)];
        let ys = vec![iv(1, 5), iv(3, 9), iv(16, 17), iv(19, 25)];
        let expected = oracle(&xs, &ys);
        // (0,10)⊃{(1,5),(3,9)}; (2,20)⊃{(3,9),(16,17)}; (15,18)⊃(16,17).
        assert_eq!(expected.len(), 5);
        for policy in [
            ReadPolicy::MinKey,
            ReadPolicy::Alternate,
            ReadPolicy::LambdaGuided {
                lambda_x: 1.0,
                lambda_y: 1.0,
            },
        ] {
            let (got, _) = run_ts_ts(xs.clone(), ys.clone(), policy);
            assert_eq!(got, expected, "policy {policy:?}");
        }
        let (got, _) = run_ts_te(xs, ys);
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_inputs() {
        let (got, ws) = run_ts_ts(vec![], vec![iv(0, 5)], ReadPolicy::MinKey);
        assert!(got.is_empty());
        assert!(ws <= 1);
        let (got, _) = run_ts_ts(vec![iv(0, 5)], vec![], ReadPolicy::MinKey);
        assert!(got.is_empty());
        let (got, _) = run_ts_te(vec![], vec![]);
        assert!(got.is_empty());
    }

    #[test]
    fn strictness_at_endpoints() {
        // Shared endpoints are starts/finishes, not containment.
        let xs = vec![iv(0, 10)];
        let ys = vec![iv(0, 5), iv(5, 10), iv(0, 10), iv(1, 9)];
        let mut ys_sorted = ys.clone();
        StreamOrder::TS_ASC.sort(&mut ys_sorted);
        let (got, _) = run_ts_ts(xs.clone(), ys_sorted, ReadPolicy::MinKey);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, iv(1, 9));
        let (got, _) = run_ts_te(xs, ys);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn rejects_wrong_input_orders() {
        let x = from_sorted_vec(vec![iv(0, 5)], StreamOrder::TE_ASC).unwrap();
        let y = from_sorted_vec(vec![iv(0, 5)], StreamOrder::TS_ASC).unwrap();
        assert!(matches!(
            ContainJoinTsTs::new(x, y, ReadPolicy::MinKey),
            Err(TdbError::UnsupportedOrdering { .. })
        ));
        let x = crate::stream::from_vec(vec![iv(0, 5)]);
        let y = from_sorted_vec(vec![iv(0, 5)], StreamOrder::TE_ASC).unwrap();
        assert!(ContainJoinTsTe::new(x, y).is_err());
    }

    #[test]
    fn erratum_regression_ts_te_gc_keeps_spanning_tuples() {
        // One long X tuple must survive across many Y tuples: the paper's
        // misprinted GC rule (discard x if x.TE > y.TE) would evict it
        // after the first y and lose all later matches.
        let xs = vec![iv(0, 100)];
        let ys: Vec<_> = (0..10).map(|i| iv(1 + i * 9, 4 + i * 9)).collect();
        let (got, _) = run_ts_te(xs.clone(), ys.clone());
        assert_eq!(got.len(), 10, "every nested y must match the long x");
        let (got, _) = run_ts_ts(xs, ys, ReadPolicy::MinKey);
        assert_eq!(got.len(), 10);
    }

    #[test]
    fn min_key_policy_keeps_y_state_empty() {
        let gen_x = IntervalGen::poisson(300, 5.0, 40.0, 1);
        let gen_y = IntervalGen::poisson(300, 5.0, 10.0, 2);
        let x = from_sorted_vec(gen_x.generate(), StreamOrder::TS_ASC).unwrap();
        let y = from_sorted_vec(gen_y.generate(), StreamOrder::TS_ASC).unwrap();
        let mut j = ContainJoinTsTs::new(x, y, ReadPolicy::MinKey).unwrap();
        let _ = j.collect_vec().unwrap();
        let (_, ys_stats) = j.workspace();
        // Under the merge-like sweep, Y tuples join on arrival and are
        // GC'd at the next X arrival; residency stays tiny.
        assert!(
            ys_stats.max_resident <= 40,
            "y state should stay small, got {}",
            ys_stats.max_resident
        );
    }

    #[test]
    fn workspace_tracks_spanning_tuples() {
        // All X tuples span the whole axis: none can be GC'd until Y ends.
        let xs: Vec<_> = (0..20).map(|i| iv(i, 1000 + i)).collect();
        let ys = vec![iv(500, 510)];
        let x = from_sorted_vec(xs, StreamOrder::TS_ASC).unwrap();
        let y = from_sorted_vec(ys, StreamOrder::TS_ASC).unwrap();
        let mut j = ContainJoinTsTs::new(x, y, ReadPolicy::MinKey).unwrap();
        assert_eq!(j.collect_vec().unwrap().len(), 20);
        let (xs_stats, _) = j.workspace();
        assert_eq!(
            xs_stats.max_resident, 20,
            "every x spans y's TS and must be resident"
        );
    }

    #[test]
    fn metrics_count_reads_and_emits() {
        let xs = vec![iv(0, 10), iv(20, 30)];
        let ys = vec![iv(1, 2), iv(21, 22)];
        let x_in = from_sorted_vec(xs, StreamOrder::TS_ASC).unwrap();
        let y_in = from_sorted_vec(ys, StreamOrder::TS_ASC).unwrap();
        let mut join = ContainJoinTsTs::new(x_in, y_in, ReadPolicy::MinKey).unwrap();
        let n_out = join.collect_vec().unwrap().len();
        let metrics = join.metrics();
        assert_eq!(n_out, 2);
        assert_eq!(metrics.emitted, 2);
        assert_eq!(metrics.read_left, 2);
        assert_eq!(metrics.read_right, 2);
        assert_eq!(metrics.passes, 1);
    }

    #[test]
    fn progress_is_readable_mid_run() {
        let xs: Vec<_> = (0..50).map(|i| iv(i * 3, i * 3 + 10)).collect();
        let ys: Vec<_> = (0..50).map(|i| iv(i * 3 + 1, i * 3 + 2)).collect();
        let progress = crate::progress::Progress::new();
        let left = from_sorted_vec(xs, StreamOrder::TS_ASC).unwrap();
        let right = from_sorted_vec(ys, StreamOrder::TS_ASC).unwrap();
        let mut join = ContainJoinTsTs::new(left, right, ReadPolicy::MinKey)
            .unwrap()
            .with_progress(&progress);
        let mut last = 0;
        for _ in 0..10 {
            let item = join.next().unwrap();
            assert!(item.is_some(), "50×50 workload has ≥10 matches");
            let snap = progress.snapshot();
            assert!(snap.admitted >= last, "admitted counter is monotonic");
            last = snap.admitted;
        }
        // The stream is far from exhausted, yet progress is visible.
        let snap = progress.snapshot();
        assert!(
            snap.admitted > 0 && snap.admitted < 100,
            "mid-run: {}",
            snap.admitted
        );
        assert!(snap.emitted >= 10);
    }

    #[test]
    fn errors_propagate_from_inputs() {
        let x = crate::stream::FailingStream::new(vec![iv(0, 5), iv(1, 6)], 1, || {
            TdbError::Eval("disk error".into())
        });
        // FailingStream declares no order; wrap the construction check by
        // using the TS/TS operator over an OrderChecked adapter instead.
        let x = crate::stream::OrderChecked::new(x, StreamOrder::TS_ASC);
        let y = from_sorted_vec(vec![iv(0, 5)], StreamOrder::TS_ASC).unwrap();
        let mut j = ContainJoinTsTs::new(x, y, ReadPolicy::MinKey).unwrap();
        let mut saw_error = false;
        loop {
            match j.next() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => {
                    saw_error = true;
                    break;
                }
            }
        }
        assert!(saw_error);
    }

    fn arb_intervals(n: usize) -> impl Strategy<Value = Vec<TsTuple>> {
        proptest::collection::vec((-60i64..60, 1i64..40), 0..n).prop_map(|v| {
            let mut tuples: Vec<_> = v.into_iter().map(|(s, d)| iv(s, s + d)).collect();
            StreamOrder::TS_ASC.sort(&mut tuples);
            tuples
        })
    }

    proptest! {
        /// Both configurations and all policies agree with the nested-loop
        /// oracle on arbitrary inputs.
        #[test]
        fn matches_oracle(xs in arb_intervals(40), ys in arb_intervals(40)) {
            let expected = oracle(&xs, &ys);
            for policy in [ReadPolicy::MinKey, ReadPolicy::Alternate,
                           ReadPolicy::LambdaGuided { lambda_x: 0.5, lambda_y: 2.0 }] {
                let (got, _) = run_ts_ts(xs.clone(), ys.clone(), policy);
                prop_assert_eq!(&got, &expected);
            }
            let (got, _) = run_ts_te(xs.clone(), ys.clone());
            prop_assert_eq!(&got, &expected);
        }

        /// Under the MinKey sweep the X state holds only tuples whose
        /// closed lifespan covers the sweep point (Table 1 state (a)),
        /// so it is bounded by X's closed-interval max concurrency
        /// (computed here by treating `[TS, TE)` as `[TS, TE]`).
        #[test]
        fn x_state_bounded_by_concurrency(xs in arb_intervals(40), ys in arb_intervals(40)) {
            // Closed-interval concurrency: widen every interval by one tick.
            let widened: Vec<_> = xs
                .iter()
                .map(|t| iv(t.ts().ticks(), t.te().ticks() + 1))
                .collect();
            let bound = tdb_core::TemporalStats::compute(&widened).max_concurrency;
            let x = from_sorted_vec(xs, StreamOrder::TS_ASC).unwrap();
            let y = from_sorted_vec(ys, StreamOrder::TS_ASC).unwrap();
            let mut j = ContainJoinTsTs::new(x, y, ReadPolicy::MinKey).unwrap();
            let _ = j.collect_vec().unwrap();
            let (xs_stats, _) = j.workspace();
            // +1: a newly inserted tuple is sampled before the GC phase
            // that may immediately discard it.
            prop_assert!(
                xs_stats.max_resident <= bound.max(1) + 1,
                "resident {} > bound {}",
                xs_stats.max_resident,
                bound
            );
        }
    }
}
