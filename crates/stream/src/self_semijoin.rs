//! Self semijoins over a single stream (§4.2.3, Figure 7, Table 3).
//!
//! `Contained-semijoin(X,X)` selects every tuple whose lifespan is strictly
//! contained within *another* tuple of the same stream;
//! `Contain-semijoin(X,X)` selects every tuple that strictly contains
//! another. Applying the two-stream algorithms naively would scan the
//! operand twice; the paper shows a **single scan with one state tuple**
//! suffices for `Contained-semijoin(X,X)` when the stream is sorted
//! primarily on `ValidFrom ↑` with secondary `ValidTo ↑`.
//!
//! ### Why one state tuple suffices ([`ContainedSelfSemijoin`])
//!
//! Invariant: the state tuple `x_s` always has the **maximum `ValidTo`**
//! among tuples read so far. On reading `x_b`:
//!
//! * `x_s.TS = x_b.TS` — replace: the secondary `TE ↑` order makes
//!   `x_b.TE ≥ x_s.TE`, preserving the invariant; and no emission is missed
//!   because a hypothetical other container `z` would need
//!   `z.TE > x_b.TE ≥ x_s.TE`, contradicting the invariant;
//! * `x_s.TE ≤ x_b.TE` — replace (preserves the invariant; `x_s` cannot
//!   contain `x_b`, and nothing else can: `x_s.TE` was maximal);
//! * otherwise `x_s.TS < x_b.TS ∧ x_b.TE < x_s.TE` — `x_b` is contained:
//!   **emit** `x_b`, keep `x_s`.
//!
//! [`ContainSelfSemijoinDesc`] is the mirror image (sort `ValidFrom ↓` with
//! secondary `ValidTo ↓`, state keeps the *minimum* `ValidTo`), realizing
//! Table 3's row 2: `Contain-semijoin(X,X)` in (a)-state under descending
//! order. Under ascending order, `Contain-semijoin(X,X)` needs the larger
//! (b)-state `state(x_i) ⊆ {x_j | j > i and x_j overlaps x_i}` —
//! implemented by [`ContainSelfSemijoin`].

use crate::metrics::OpMetrics;
use crate::required::{check_stream_order, RequiredOrder, StreamOpKind};
use crate::stream::TupleStream;
use crate::workspace::{Workspace, WorkspaceStats};
use std::collections::VecDeque;
use tdb_core::{Direction, SortKey, SortSpec, StreamOrder, TdbResult, Temporal};

/// `Contained-semijoin(X,X)`: emits tuples strictly contained in another
/// tuple of the same stream. Single scan, one state tuple (Figure 7).
///
/// Requires primary `ValidFrom ↑`, secondary `ValidTo ↑`.
///
/// ```
/// use tdb_stream::{from_sorted_vec, ContainedSelfSemijoin, TupleStream};
/// use tdb_core::{StreamOrder, TsTuple};
///
/// let xs = vec![
///     TsTuple::interval(0, 4)?,
///     TsTuple::interval(3, 20)?,
///     TsTuple::interval(5, 10)?, // inside [3,20)
/// ];
/// let mut op = ContainedSelfSemijoin::new(
///     from_sorted_vec(xs, StreamOrder::TS_ASC_TE_ASC)?,
/// )?;
/// assert_eq!(op.collect_vec()?.len(), 1);
/// assert!(op.max_workspace() <= 1); // Table 3 state (a)
/// # Ok::<(), tdb_core::TdbError>(())
/// ```
pub struct ContainedSelfSemijoin<S: TupleStream>
where
    S::Item: Temporal + Clone,
{
    input: S,
    state: Option<S::Item>,
    metrics: OpMetrics,
    max_state: usize,
}

impl<S: TupleStream> RequiredOrder for ContainedSelfSemijoin<S>
where
    S::Item: Temporal + Clone,
{
    const KIND: StreamOpKind = StreamOpKind::ContainedSelfSemijoin;
}

impl<S: TupleStream> ContainedSelfSemijoin<S>
where
    S::Item: Temporal + Clone,
{
    /// Required input ordering.
    pub const REQUIRED: StreamOrder = StreamOrder::TS_ASC_TE_ASC;

    /// Build the operator.
    pub fn new(input: S) -> TdbResult<Self> {
        let req = Self::KIND.requirement();
        check_stream_order(&input, req.left(), req.operator, "the")?;
        Ok(ContainedSelfSemijoin {
            input,
            state: None,
            metrics: OpMetrics {
                passes: 1,
                ..OpMetrics::default()
            },
            max_state: 0,
        })
    }

    /// Execution metrics.
    pub fn metrics(&self) -> OpMetrics {
        self.metrics
    }

    /// Maximum state tuples ever held — always ≤ 1 (Table 3 state (a)).
    pub fn max_workspace(&self) -> usize {
        self.max_state
    }

    /// The current state tuple `x_s` (exposed for the Figure 7 trace test).
    pub fn state_tuple(&self) -> Option<&S::Item> {
        self.state.as_ref()
    }
}

impl<S: TupleStream> TupleStream for ContainedSelfSemijoin<S>
where
    S::Item: Temporal + Clone,
{
    type Item = S::Item;

    fn next(&mut self) -> TdbResult<Option<S::Item>> {
        loop {
            let Some(xb) = self.input.next()? else {
                return Ok(None);
            };
            self.metrics.read_left += 1;
            let Some(xs) = &self.state else {
                self.state = Some(xb);
                self.max_state = self.max_state.max(1);
                continue;
            };
            self.metrics.comparisons += 1;
            if xs.ts() == xb.ts() || xs.te() <= xb.te() {
                // Replace the state tuple (Figure 7 cases 1 and 2).
                self.state = Some(xb);
            } else {
                // x_b's lifespan is contained within x_s's: output x_b,
                // x_s remains the state tuple (Figure 7 case 3).
                self.metrics.emitted += 1;
                return Ok(Some(xb));
            }
        }
    }

    fn order(&self) -> Option<StreamOrder> {
        // Output is a subsequence of the input.
        Some(Self::REQUIRED)
    }
}

/// `Contain-semijoin(X,X)` under **descending** order (`ValidFrom ↓`,
/// secondary `ValidTo ↓`): emits tuples that strictly contain another tuple.
/// Single scan, one state tuple (Table 3 row 2, state (a)) — the mirror
/// image of [`ContainedSelfSemijoin`], with the state tuple holding the
/// *minimum* `ValidTo` seen so far.
pub struct ContainSelfSemijoinDesc<S: TupleStream>
where
    S::Item: Temporal + Clone,
{
    input: S,
    state: Option<S::Item>,
    metrics: OpMetrics,
    max_state: usize,
}

impl<S: TupleStream> RequiredOrder for ContainSelfSemijoinDesc<S>
where
    S::Item: Temporal + Clone,
{
    const KIND: StreamOpKind = StreamOpKind::ContainSelfSemijoinDesc;
}

impl<S: TupleStream> ContainSelfSemijoinDesc<S>
where
    S::Item: Temporal + Clone,
{
    /// Required input ordering: `ValidFrom ↓`, then `ValidTo ↓`.
    pub const REQUIRED: StreamOrder = StreamOrder::by_then(
        SortSpec {
            key: SortKey::ValidFrom,
            direction: Direction::Desc,
        },
        SortSpec {
            key: SortKey::ValidTo,
            direction: Direction::Desc,
        },
    );

    /// Build the operator.
    pub fn new(input: S) -> TdbResult<Self> {
        let req = Self::KIND.requirement();
        check_stream_order(&input, req.left(), req.operator, "the")?;
        Ok(ContainSelfSemijoinDesc {
            input,
            state: None,
            metrics: OpMetrics {
                passes: 1,
                ..OpMetrics::default()
            },
            max_state: 0,
        })
    }

    /// Execution metrics.
    pub fn metrics(&self) -> OpMetrics {
        self.metrics
    }

    /// Maximum state tuples ever held — always ≤ 1.
    pub fn max_workspace(&self) -> usize {
        self.max_state
    }
}

impl<S: TupleStream> TupleStream for ContainSelfSemijoinDesc<S>
where
    S::Item: Temporal + Clone,
{
    type Item = S::Item;

    fn next(&mut self) -> TdbResult<Option<S::Item>> {
        loop {
            let Some(xb) = self.input.next()? else {
                return Ok(None);
            };
            self.metrics.read_left += 1;
            let Some(xs) = &self.state else {
                self.state = Some(xb);
                self.max_state = self.max_state.max(1);
                continue;
            };
            self.metrics.comparisons += 1;
            if xs.ts() == xb.ts() || xs.te() >= xb.te() {
                self.state = Some(xb);
            } else {
                // x_s.TS > x_b.TS ∧ x_s.TE < x_b.TE: x_b contains x_s.
                self.metrics.emitted += 1;
                return Ok(Some(xb));
            }
        }
    }

    fn order(&self) -> Option<StreamOrder> {
        Some(Self::REQUIRED)
    }
}

/// `Contain-semijoin(X,X)` under **ascending** order (`ValidFrom ↑`,
/// secondary `ValidTo ↑`): emits tuples that strictly contain another.
///
/// Containers precede their containees in ascending order, so an emission
/// decision must be deferred: the workspace holds the not-yet-witnessed
/// candidates that still overlap the sweep point — Table 3 state (b),
/// `state(x_i) ⊆ {x_j | j > i and x_j overlaps x_i}`.
pub struct ContainSelfSemijoin<S: TupleStream>
where
    S::Item: Temporal + Clone,
{
    input: S,
    /// Candidate containers not yet witnessed, still alive at the sweep.
    candidates: Workspace<S::Item>,
    pending: VecDeque<S::Item>,
    metrics: OpMetrics,
}

impl<S: TupleStream> RequiredOrder for ContainSelfSemijoin<S>
where
    S::Item: Temporal + Clone,
{
    const KIND: StreamOpKind = StreamOpKind::ContainSelfSemijoin;
}

impl<S: TupleStream> ContainSelfSemijoin<S>
where
    S::Item: Temporal + Clone,
{
    /// Required input ordering.
    pub const REQUIRED: StreamOrder = StreamOrder::TS_ASC_TE_ASC;

    /// Build the operator.
    pub fn new(input: S) -> TdbResult<Self> {
        let req = Self::KIND.requirement();
        check_stream_order(&input, req.left(), req.operator, "the")?;
        Ok(ContainSelfSemijoin {
            input,
            candidates: Workspace::new(),
            pending: VecDeque::new(),
            metrics: OpMetrics {
                passes: 1,
                ..OpMetrics::default()
            },
        })
    }

    /// Execution metrics.
    pub fn metrics(&self) -> OpMetrics {
        self.metrics
    }

    /// Workspace statistics (Table 3 state (b)).
    pub fn workspace(&self) -> WorkspaceStats {
        self.candidates.stats()
    }
}

impl<S: TupleStream> TupleStream for ContainSelfSemijoin<S>
where
    S::Item: Temporal + Clone,
{
    type Item = S::Item;

    fn next(&mut self) -> TdbResult<Option<S::Item>> {
        loop {
            if let Some(out) = self.pending.pop_front() {
                self.metrics.emitted += 1;
                return Ok(Some(out));
            }
            let Some(xb) = self.input.next()? else {
                return Ok(None);
            };
            self.metrics.read_left += 1;
            let p = xb.period();
            // Candidates that died before the sweep can never be witnessed.
            self.candidates.gc(|c| c.te() > p.start());
            // Emit every candidate that strictly contains x_b (each exactly
            // once — extraction removes them).
            let comparisons = self.candidates.len();
            self.metrics.comparisons += comparisons;
            let witnessed = self.candidates.extract(|c| c.period().contains(&p));
            self.pending.extend(witnessed);
            self.candidates.insert(xb);
        }
    }

    fn order(&self) -> Option<StreamOrder> {
        None // emission order is witness order, not input order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::from_sorted_vec;
    use proptest::prelude::*;
    use tdb_core::{TdbError, TsTuple};

    fn iv(s: i64, e: i64) -> TsTuple {
        TsTuple::interval(s, e).unwrap()
    }

    fn canon(mut v: Vec<TsTuple>) -> Vec<TsTuple> {
        v.sort_by_key(|t| (t.ts().ticks(), t.te().ticks()));
        v
    }

    fn contained_oracle(xs: &[TsTuple]) -> Vec<TsTuple> {
        xs.iter()
            .enumerate()
            .filter(|(i, x)| {
                xs.iter()
                    .enumerate()
                    .any(|(j, y)| *i != j && y.period.contains(&x.period))
            })
            .map(|(_, x)| x.clone())
            .collect()
    }

    fn contain_oracle(xs: &[TsTuple]) -> Vec<TsTuple> {
        xs.iter()
            .enumerate()
            .filter(|(i, x)| {
                xs.iter()
                    .enumerate()
                    .any(|(j, y)| *i != j && x.period.contains(&y.period))
            })
            .map(|(_, x)| x.clone())
            .collect()
    }

    fn sorted_asc(mut xs: Vec<TsTuple>) -> Vec<TsTuple> {
        StreamOrder::TS_ASC_TE_ASC.sort(&mut xs);
        xs
    }

    /// The Figure 7 walk: x1 read and kept; x2 replaces it; x3 replaces x2;
    /// x4 is contained in x3 and output; x3 remains in the state.
    #[test]
    fn figure7_trace() {
        let x1 = iv(0, 4);
        let x2 = iv(1, 8);
        let x3 = iv(3, 20);
        let x4 = iv(5, 10); // inside x3
        let input = from_sorted_vec(
            vec![x1, x2, x3.clone(), x4.clone()],
            StreamOrder::TS_ASC_TE_ASC,
        )
        .unwrap();
        let mut op = ContainedSelfSemijoin::new(input).unwrap();
        let first = op.next().unwrap().unwrap();
        assert_eq!(first, x4);
        assert_eq!(op.state_tuple(), Some(&x3), "x3 remains in the state");
        assert!(op.next().unwrap().is_none());
        assert!(op.max_workspace() <= 1, "at most one state tuple");
        assert_eq!(op.metrics().read_left, 4);
    }

    #[test]
    fn equal_ts_run_replaces_without_emitting() {
        // Identical TS: secondary TE ↑; none strictly contained.
        let xs = vec![iv(0, 3), iv(0, 5), iv(0, 9)];
        let input = from_sorted_vec(xs, StreamOrder::TS_ASC_TE_ASC).unwrap();
        let mut op = ContainedSelfSemijoin::new(input).unwrap();
        assert!(op.collect_vec().unwrap().is_empty());
    }

    #[test]
    fn duplicate_periods_are_not_contained_in_each_other() {
        let xs = vec![iv(2, 7), iv(2, 7)];
        let input = from_sorted_vec(xs, StreamOrder::TS_ASC_TE_ASC).unwrap();
        let mut op = ContainedSelfSemijoin::new(input).unwrap();
        assert!(op.collect_vec().unwrap().is_empty());
    }

    #[test]
    fn contain_self_desc_mirrors() {
        let mut xs = vec![iv(0, 100), iv(1, 90), iv(2, 5), iv(50, 60)];
        ContainSelfSemijoinDesc::<crate::stream::VecStream<TsTuple>>::REQUIRED.sort(&mut xs);
        let input = from_sorted_vec(
            xs.clone(),
            ContainSelfSemijoinDesc::<crate::stream::VecStream<TsTuple>>::REQUIRED,
        )
        .unwrap();
        let mut op = ContainSelfSemijoinDesc::new(input).unwrap();
        let got = canon(op.collect_vec().unwrap());
        assert_eq!(got, canon(contain_oracle(&xs)));
        assert_eq!(got.len(), 2); // [0,100) and [1,90) both contain [2,5)
        assert!(op.max_workspace() <= 1);
    }

    #[test]
    fn contain_self_asc_finds_all_containers() {
        let xs = sorted_asc(vec![iv(0, 100), iv(1, 90), iv(2, 5), iv(50, 60)]);
        let input = from_sorted_vec(xs.clone(), StreamOrder::TS_ASC_TE_ASC).unwrap();
        let mut op = ContainSelfSemijoin::new(input).unwrap();
        let got = canon(op.collect_vec().unwrap());
        assert_eq!(got, canon(contain_oracle(&xs)));
    }

    #[test]
    fn rejects_missing_secondary_order() {
        let input = from_sorted_vec(vec![iv(0, 5)], StreamOrder::TS_ASC).unwrap();
        assert!(matches!(
            ContainedSelfSemijoin::new(input),
            Err(TdbError::UnsupportedOrdering { .. })
        ));
    }

    #[test]
    fn empty_and_singleton_streams() {
        let input = from_sorted_vec(Vec::<TsTuple>::new(), StreamOrder::TS_ASC_TE_ASC).unwrap();
        assert!(ContainedSelfSemijoin::new(input)
            .unwrap()
            .collect_vec()
            .unwrap()
            .is_empty());
        let input = from_sorted_vec(vec![iv(0, 5)], StreamOrder::TS_ASC_TE_ASC).unwrap();
        assert!(ContainedSelfSemijoin::new(input)
            .unwrap()
            .collect_vec()
            .unwrap()
            .is_empty());
    }

    fn arb_intervals(n: usize) -> impl Strategy<Value = Vec<TsTuple>> {
        proptest::collection::vec((-60i64..60, 1i64..50), 0..n)
            .prop_map(|v| v.into_iter().map(|(s, d)| iv(s, s + d)).collect())
    }

    proptest! {
        #[test]
        fn contained_self_matches_oracle(xs in arb_intervals(60)) {
            let xs = sorted_asc(xs);
            let input = from_sorted_vec(xs.clone(), StreamOrder::TS_ASC_TE_ASC).unwrap();
            let mut op = ContainedSelfSemijoin::new(input).unwrap();
            let got = canon(op.collect_vec().unwrap());
            prop_assert_eq!(got, canon(contained_oracle(&xs)));
            prop_assert!(op.max_workspace() <= 1);
        }

        #[test]
        fn contain_self_asc_matches_oracle(xs in arb_intervals(60)) {
            let xs = sorted_asc(xs);
            let input = from_sorted_vec(xs.clone(), StreamOrder::TS_ASC_TE_ASC).unwrap();
            let mut op = ContainSelfSemijoin::new(input).unwrap();
            let got = canon(op.collect_vec().unwrap());
            prop_assert_eq!(got, canon(contain_oracle(&xs)));
        }

        #[test]
        fn contain_self_desc_matches_oracle(xs in arb_intervals(60)) {
            let order = ContainSelfSemijoinDesc::<crate::stream::VecStream<TsTuple>>::REQUIRED;
            let mut xs = xs;
            order.sort(&mut xs);
            let input = from_sorted_vec(xs.clone(), order).unwrap();
            let mut op = ContainSelfSemijoinDesc::new(input).unwrap();
            let got = canon(op.collect_vec().unwrap());
            prop_assert_eq!(got, canon(contain_oracle(&xs)));
            prop_assert!(op.max_workspace() <= 1);
        }
    }
}
