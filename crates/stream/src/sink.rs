//! Push-mode result sinks: the consumer side of streaming execution.
//!
//! The materializing execution path collects every output row into one
//! `Vec<Row>` before anything downstream sees it — at 40 k rows/side that
//! copy dominates the run (E19/E21). A [`RowSink`] inverts the flow: the
//! executor *pushes* row chunks into the sink as operators drain, and the
//! sink decides what to keep. Three consumers cover the common shapes:
//!
//! * [`CollectSink`] — keep everything (the materializing behaviour,
//!   reimplemented on the push path);
//! * [`LimitSink`] — keep the first `limit` rows and signal early
//!   termination once full, so `\set limit` stops the producer instead of
//!   truncating a fully-built vector;
//! * [`CountSink`] — keep nothing; with [`RowSink::wants_rows`] `false`
//!   the executor can skip widening pairs into payload rows entirely and
//!   feed the sink bare counts ([`RowSink::push_count`]).
//!
//! Every push returns a *continue* flag; `false` means the sink has seen
//! enough and the producer should stop. [`RowSink::finish`] closes the
//! sink and reports what flowed through it ([`SinkStats`]).

use tdb_core::{Row, TdbResult, Value};

/// Approximate in-memory footprint of one row, in bytes — the basis of the
/// sink-side byte counters surfaced in query traces. Deliberately cheap
/// (no encoding pass): scalar variants count their payload width, strings
/// count their length plus the length prefix, and each row pays a small
/// fixed header.
pub fn row_bytes(row: &Row) -> u64 {
    let values: u64 = row
        .values()
        .iter()
        .map(|v| match v {
            Value::Null | Value::Bool(_) => 1,
            Value::Int(_) | Value::Time(_) => 8,
            Value::Str(s) => s.len() as u64 + 4,
        })
        .sum();
    values + 8
}

/// What flowed through a sink, reported by [`RowSink::finish`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkStats {
    /// Rows offered to the sink (including rows it chose to drop).
    pub rows: u64,
    /// Approximate bytes offered ([`row_bytes`] summed; zero for
    /// count-only pushes, which never materialize rows).
    pub bytes: u64,
    /// Number of `push`/`push_count` calls — the chunk granularity the
    /// producer ran at.
    pub batches: u64,
    /// `true` if the sink dropped rows (e.g. a [`LimitSink`] past its
    /// limit) or stopped the producer early — the observed row count is
    /// then a lower bound on the full result.
    pub truncated: bool,
}

/// A push-mode consumer of query output rows.
///
/// Producers call [`RowSink::push`] with each drained chunk (or
/// [`RowSink::push_count`] when the sink declared, via
/// [`RowSink::wants_rows`], that it only counts); a `false` return asks
/// the producer to stop. The chunk vector is passed `&mut` so sinks can
/// drain it without forcing the producer to reallocate per chunk.
pub trait RowSink {
    /// Does this sink need the actual rows? `false` lets the producer
    /// skip widening matches into payload rows and call
    /// [`RowSink::push_count`] instead.
    fn wants_rows(&self) -> bool {
        true
    }

    /// Offer a chunk of rows. The sink takes what it wants from `rows`
    /// (the producer discards whatever is left). Returns `false` when the
    /// sink has seen enough and the producer should stop.
    fn push(&mut self, rows: &mut Vec<Row>) -> TdbResult<bool>;

    /// Offer a bare match count (count-only consumers). Returns `false`
    /// when the sink has seen enough.
    fn push_count(&mut self, n: usize) -> TdbResult<bool>;

    /// Close the sink and report what flowed through it.
    fn finish(&mut self) -> SinkStats;
}

/// Collects every pushed row — the materializing consumer that keeps the
/// `QueryOutput`-returning entry points working on the push path.
#[derive(Debug, Default)]
pub struct CollectSink {
    rows: Vec<Row>,
    stats: SinkStats,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> CollectSink {
        CollectSink::default()
    }

    /// The rows collected so far.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Consume the sink, yielding the collected rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }
}

impl RowSink for CollectSink {
    fn push(&mut self, rows: &mut Vec<Row>) -> TdbResult<bool> {
        self.stats.rows += rows.len() as u64;
        self.stats.bytes += rows.iter().map(row_bytes).sum::<u64>();
        self.stats.batches += 1;
        self.rows.append(rows);
        Ok(true)
    }

    fn push_count(&mut self, n: usize) -> TdbResult<bool> {
        self.stats.rows += n as u64;
        self.stats.batches += 1;
        Ok(true)
    }

    fn finish(&mut self) -> SinkStats {
        self.stats
    }
}

/// Counts rows without keeping any — `wants_rows` is `false`, so
/// producers that can count matches without widening them (the batch
/// kernels' count-only mode) skip payload materialization entirely.
#[derive(Debug, Default)]
pub struct CountSink {
    stats: SinkStats,
}

impl CountSink {
    /// A zeroed counter.
    pub fn new() -> CountSink {
        CountSink::default()
    }

    /// Rows counted so far.
    pub fn count(&self) -> u64 {
        self.stats.rows
    }
}

impl RowSink for CountSink {
    fn wants_rows(&self) -> bool {
        false
    }

    fn push(&mut self, rows: &mut Vec<Row>) -> TdbResult<bool> {
        self.stats.rows += rows.len() as u64;
        self.stats.bytes += rows.iter().map(row_bytes).sum::<u64>();
        self.stats.batches += 1;
        rows.clear();
        Ok(true)
    }

    fn push_count(&mut self, n: usize) -> TdbResult<bool> {
        self.stats.rows += n as u64;
        self.stats.batches += 1;
        Ok(true)
    }

    fn finish(&mut self) -> SinkStats {
        self.stats
    }
}

/// Keeps the first `limit` rows and asks the producer to stop once full —
/// the `\set limit` consumer. Rows offered past the limit are still
/// *counted* (so a producer that materialized everything anyway reports
/// the true total) but not retained.
#[derive(Debug)]
pub struct LimitSink {
    limit: usize,
    rows: Vec<Row>,
    stats: SinkStats,
}

impl LimitSink {
    /// A sink retaining at most `limit` rows.
    pub fn new(limit: usize) -> LimitSink {
        LimitSink {
            limit,
            rows: Vec::new(),
            stats: SinkStats::default(),
        }
    }

    /// Is the sink at its limit?
    pub fn full(&self) -> bool {
        self.rows.len() >= self.limit
    }

    /// The retained rows (at most `limit`).
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Consume the sink, yielding the retained rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }
}

impl RowSink for LimitSink {
    fn push(&mut self, rows: &mut Vec<Row>) -> TdbResult<bool> {
        self.stats.batches += 1;
        for row in rows.drain(..) {
            self.stats.rows += 1;
            self.stats.bytes += row_bytes(&row);
            if self.rows.len() < self.limit {
                self.rows.push(row);
            } else {
                self.stats.truncated = true;
            }
        }
        if self.full() && self.stats.rows > self.rows.len() as u64 {
            self.stats.truncated = true;
        }
        Ok(!self.full())
    }

    fn push_count(&mut self, n: usize) -> TdbResult<bool> {
        self.stats.rows += n as u64;
        self.stats.batches += 1;
        Ok(!self.full())
    }

    fn finish(&mut self) -> SinkStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(i: i64) -> Row {
        Row::new(vec![Value::Int(i), Value::str("x")])
    }

    #[test]
    fn collect_sink_keeps_everything_and_counts() {
        let mut sink = CollectSink::new();
        let mut chunk = vec![row(1), row(2)];
        assert!(sink.push(&mut chunk).unwrap());
        assert!(chunk.is_empty());
        let mut chunk = vec![row(3)];
        assert!(sink.push(&mut chunk).unwrap());
        let stats = sink.finish();
        assert_eq!(stats.rows, 3);
        assert_eq!(stats.batches, 2);
        assert!(!stats.truncated);
        assert_eq!(stats.bytes, 3 * row_bytes(&row(0)));
        assert_eq!(sink.into_rows().len(), 3);
    }

    #[test]
    fn count_sink_discards_rows_but_counts_bytes() {
        let mut sink = CountSink::new();
        assert!(!sink.wants_rows());
        let mut chunk = vec![row(1), row(2)];
        assert!(sink.push(&mut chunk).unwrap());
        assert!(chunk.is_empty());
        assert!(sink.push_count(5).unwrap());
        assert_eq!(sink.count(), 7);
        let stats = sink.finish();
        assert_eq!(stats.rows, 7);
        assert_eq!(stats.bytes, 2 * row_bytes(&row(0)));
    }

    #[test]
    fn limit_sink_signals_early_termination() {
        let mut sink = LimitSink::new(3);
        let mut chunk = vec![row(1), row(2)];
        assert!(sink.push(&mut chunk).unwrap(), "still has room");
        // This chunk fills the sink: the producer is told to stop.
        let mut chunk = vec![row(3), row(4)];
        assert!(!sink.push(&mut chunk).unwrap());
        let stats = sink.finish();
        assert_eq!(sink.rows().len(), 3);
        assert_eq!(stats.rows, 4, "dropped rows are still counted");
        assert!(stats.truncated);
    }

    #[test]
    fn limit_sink_exact_fit_is_not_truncated() {
        let mut sink = LimitSink::new(2);
        let mut chunk = vec![row(1), row(2)];
        assert!(!sink.push(&mut chunk).unwrap(), "full: stop the producer");
        let stats = sink.finish();
        assert_eq!(stats.rows, 2);
        assert!(!stats.truncated, "nothing was dropped");
    }
}
