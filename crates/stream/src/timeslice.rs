//! Timeslice (snapshot) and concurrency-profile operators.
//!
//! Two further stream processors in the §4.1 mold:
//!
//! * [`Timeslice`] — the snapshot query "who/what was valid at time `t`?";
//!   a filter with **early termination** when the input is sorted
//!   `ValidFrom ↑` (once `TS > t`, nothing later can span `t`).
//! * [`ConcurrencyProfile`] — the step function of how many tuples are
//!   valid at each instant, computed by a sweep over a `ValidFrom ↑`
//!   stream with a min-heap of pending `ValidTo`s as the workspace (the
//!   live set — exactly the "spanning tuples" state of Table 1(a), made
//!   into an output).

use crate::metrics::OpMetrics;
use crate::stream::TupleStream;
use std::collections::BinaryHeap;
use tdb_core::{StreamOrder, TdbResult, Temporal, TimePoint};

/// Snapshot filter: emits tuples whose lifespan spans `t`.
pub struct Timeslice<S: TupleStream>
where
    S::Item: Temporal,
{
    input: S,
    at: TimePoint,
    /// Early termination is sound when the input is `ValidFrom ↑`.
    sorted_ts_asc: bool,
    metrics: OpMetrics,
    done: bool,
}

impl<S: TupleStream> Timeslice<S>
where
    S::Item: Temporal,
{
    /// Build the snapshot at `t`.
    pub fn new(input: S, at: TimePoint) -> Timeslice<S> {
        let sorted_ts_asc = input
            .order()
            .map(|o| o.satisfies(&StreamOrder::TS_ASC))
            .unwrap_or(false);
        Timeslice {
            input,
            at,
            sorted_ts_asc,
            metrics: OpMetrics {
                passes: 1,
                ..OpMetrics::default()
            },
            done: false,
        }
    }

    /// Execution metrics — `read_left` shows the early-termination win.
    pub fn metrics(&self) -> OpMetrics {
        self.metrics
    }
}

impl<S: TupleStream> TupleStream for Timeslice<S>
where
    S::Item: Temporal,
{
    type Item = S::Item;

    fn next(&mut self) -> TdbResult<Option<S::Item>> {
        if self.done {
            return Ok(None);
        }
        while let Some(t) = self.input.next()? {
            self.metrics.read_left += 1;
            self.metrics.comparisons += 1;
            if self.sorted_ts_asc && t.ts() > self.at {
                // No later tuple can span `at`.
                self.done = true;
                return Ok(None);
            }
            if t.period().spans(self.at) {
                self.metrics.emitted += 1;
                return Ok(Some(t));
            }
        }
        self.done = true;
        Ok(None)
    }

    fn order(&self) -> Option<StreamOrder> {
        self.input.order()
    }
}

/// One step of the concurrency profile: `count` tuples are valid
/// throughout `[from, to)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileStep {
    /// Step start (inclusive).
    pub from: TimePoint,
    /// Step end (exclusive).
    pub to: TimePoint,
    /// Number of valid tuples during the step.
    pub count: usize,
}

/// Sweep a `ValidFrom ↑` stream into its concurrency step function.
///
/// Returns the non-zero-length steps in time order; the maximum `count`
/// equals [`tdb_core::TemporalStats::max_concurrency`]. Workspace: the
/// live set (a heap of `ValidTo`s), i.e. Table 1(a)'s spanning-tuples
/// state.
pub fn concurrency_profile<S>(mut input: S) -> TdbResult<(Vec<ProfileStep>, usize)>
where
    S: TupleStream,
    S::Item: Temporal,
{
    use std::cmp::Reverse;
    let mut live: BinaryHeap<Reverse<TimePoint>> = BinaryHeap::new();
    let mut steps = Vec::new();
    let mut max_live = 0usize;
    let mut cursor: Option<TimePoint> = None;
    let mut prev_ts: Option<TimePoint> = None;

    let emit = |from: TimePoint, to: TimePoint, count: usize, steps: &mut Vec<ProfileStep>| {
        if from < to && count > 0 {
            // Merge with the previous step when the count is unchanged.
            if let Some(last) = steps.last_mut() {
                let l: &mut ProfileStep = last;
                if l.to == from && l.count == count {
                    l.to = to;
                    return;
                }
            }
            steps.push(ProfileStep { from, to, count });
        }
    };

    while let Some(t) = input.next()? {
        let ts = t.ts();
        if let Some(p) = prev_ts {
            if ts < p {
                return Err(tdb_core::TdbError::OrderViolation {
                    context: "concurrency_profile",
                    detail: format!("ValidFrom regressed from {p} to {ts}"),
                });
            }
        }
        prev_ts = Some(ts);
        // Drain endings before this arrival.
        while let Some(Reverse(te)) = live.peek().copied() {
            if te <= ts {
                live.pop();
                if let Some(c) = cursor {
                    emit(c, te, live.len() + 1, &mut steps);
                }
                cursor = Some(te);
            } else {
                break;
            }
        }
        if let Some(c) = cursor {
            emit(c, ts, live.len(), &mut steps);
        }
        cursor = Some(ts);
        live.push(Reverse(t.te()));
        max_live = max_live.max(live.len());
    }
    // Drain the tail.
    while let Some(Reverse(te)) = live.pop() {
        if let Some(c) = cursor {
            emit(c, te, live.len() + 1, &mut steps);
        }
        cursor = Some(te);
    }
    Ok((steps, max_live))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{from_sorted_vec, from_vec};
    use proptest::prelude::*;
    use tdb_core::{TemporalStats, TsTuple};

    fn iv(s: i64, e: i64) -> TsTuple {
        TsTuple::interval(s, e).unwrap()
    }

    #[test]
    fn timeslice_filters_and_terminates_early() {
        let xs: Vec<_> = (0..100).map(|i| iv(i, i + 5)).collect();
        let input = from_sorted_vec(xs, StreamOrder::TS_ASC).unwrap();
        let mut op = Timeslice::new(input, TimePoint(10));
        let out = op.collect_vec().unwrap();
        assert_eq!(out.len(), 5); // starts 6..=10 span t=10
                                  // Early termination: reads stop shortly after TS passes 10.
        assert!(op.metrics().read_left <= 12);
    }

    #[test]
    fn timeslice_without_order_scans_everything() {
        let xs: Vec<_> = (0..100).map(|i| iv(i, i + 5)).collect();
        let mut op = Timeslice::new(from_vec(xs), TimePoint(10));
        let out = op.collect_vec().unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(op.metrics().read_left, 100);
    }

    #[test]
    fn profile_of_disjoint_and_nested_intervals() {
        // [0,10) with [2,4) nested, then a gap, then [12,13).
        let xs = vec![iv(0, 10), iv(2, 4), iv(12, 13)];
        let input = from_sorted_vec(xs, StreamOrder::TS_ASC).unwrap();
        let (steps, max_live) = concurrency_profile(input).unwrap();
        assert_eq!(max_live, 2);
        assert_eq!(
            steps,
            vec![
                ProfileStep {
                    from: TimePoint(0),
                    to: TimePoint(2),
                    count: 1
                },
                ProfileStep {
                    from: TimePoint(2),
                    to: TimePoint(4),
                    count: 2
                },
                ProfileStep {
                    from: TimePoint(4),
                    to: TimePoint(10),
                    count: 1
                },
                ProfileStep {
                    from: TimePoint(12),
                    to: TimePoint(13),
                    count: 1
                },
            ]
        );
    }

    #[test]
    fn profile_rejects_unsorted_input() {
        let xs = vec![iv(5, 9), iv(0, 3)];
        assert!(concurrency_profile(from_vec(xs)).is_err());
    }

    #[test]
    fn empty_profile() {
        let (steps, max) = concurrency_profile(from_vec(Vec::<TsTuple>::new())).unwrap();
        assert!(steps.is_empty());
        assert_eq!(max, 0);
    }

    proptest! {
        /// The profile's maximum equals TemporalStats::max_concurrency and
        /// every step's count equals a direct point query at its start.
        #[test]
        fn profile_agrees_with_point_queries(
            periods in proptest::collection::vec((0i64..50, 1i64..15), 0..40)
        ) {
            let mut xs: Vec<TsTuple> =
                periods.iter().map(|(s, d)| iv(*s, s + d)).collect();
            StreamOrder::TS_ASC.sort(&mut xs);
            let stats = TemporalStats::compute(&xs);
            let (steps, max_live) =
                concurrency_profile(from_vec(xs.clone())).unwrap();
            prop_assert_eq!(max_live, stats.max_concurrency);
            for s in &steps {
                let direct = xs.iter().filter(|x| x.period.spans(s.from)).count();
                prop_assert_eq!(s.count, direct, "at {}", s.from);
            }
            // Steps are ordered, non-overlapping, with positive counts.
            for w in steps.windows(2) {
                prop_assert!(w[0].to <= w[1].from);
            }
        }
    }
}
