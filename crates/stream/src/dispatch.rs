//! Unified row-vs-batched execution entry points.
//!
//! Every call site that runs a stream temporal operator over materialized,
//! sortable inputs — the query executor, the partitioned-parallel workers,
//! and the experiment harness — used to hand-assemble the same
//! `from_sorted_vec` + [`OpConfig`] constructor + `collect_vec` sequence.
//! [`run_join_kind`] / [`run_semijoin_kind`] centralize that sequence and
//! add the execution-path decision: when [`OpConfig::batched`] holds
//! (`batch_rows > 0`) the vectorized kernels of [`crate::batch_ops`] run
//! over [`VecBatchStream`] columnar batches; otherwise the row-at-a-time
//! pull operators run. Both paths return the same `(output, OpReport)`
//! pair, and by the equivalence pinned in `tests/batch_equivalence.rs` the
//! outputs and reports are identical — only wall-clock differs.
//!
//! Inputs must already be sorted into the orders the operator's registry
//! entry requires ([`StreamOpKind::requirement`]); both paths re-verify the
//! claimed order in O(n) and fail with `OrderViolation` otherwise.

use crate::batch::VecBatchStream;
use crate::batch_ops::{
    drive, BatchContainJoinTsTe, BatchContainSemijoinStab, BatchContainedSemijoinStab, BatchOp,
    BatchOverlapJoin, BatchOverlapSemijoin,
};
use crate::report::{Instrumented, OpConfig, OpReport};
use crate::required::StreamOpKind;
use crate::stream::{from_sorted_vec, TupleStream};
use tdb_core::{StreamOrder, TdbError, TdbResult, Temporal};

/// Run a stream temporal **join** of `kind` over pre-sorted inputs,
/// selecting the row or batched path per `cfg.batch_rows`.
///
/// Supported kinds: [`StreamOpKind::ContainJoinTsTe`] and
/// [`StreamOpKind::OverlapJoin`] (mode from [`OpConfig::mode`]) — the
/// kinds the planner emits for materialized two-sided joins. Side swaps
/// (e.g. `During` running the `Contains` operator) are the caller's
/// concern, as before.
pub fn run_join_kind<X, Y>(
    kind: StreamOpKind,
    cfg: OpConfig,
    x: Vec<X>,
    x_order: StreamOrder,
    y: Vec<Y>,
    y_order: StreamOrder,
) -> TdbResult<(Vec<(X, Y)>, OpReport)>
where
    X: Temporal + Clone,
    Y: Temporal + Clone,
{
    match kind {
        StreamOpKind::ContainJoinTsTe => {
            if cfg.batched() {
                let mut op = BatchContainJoinTsTe::new();
                let out = drive(
                    &mut op,
                    &mut VecBatchStream::from_sorted_vec(x, x_order, cfg.batch_rows)?,
                    &mut VecBatchStream::from_sorted_vec(y, y_order, cfg.batch_rows)?,
                )?;
                Ok((out, op.report()))
            } else {
                let mut op = cfg.contain_join_ts_te(
                    from_sorted_vec(x, x_order)?,
                    from_sorted_vec(y, y_order)?,
                )?;
                let out = op.collect_vec()?;
                Ok((out, op.report()))
            }
        }
        StreamOpKind::OverlapJoin => {
            if cfg.batched() {
                let mut op = BatchOverlapJoin::new(cfg.mode, cfg.policy);
                let out = drive(
                    &mut op,
                    &mut VecBatchStream::from_sorted_vec(x, x_order, cfg.batch_rows)?,
                    &mut VecBatchStream::from_sorted_vec(y, y_order, cfg.batch_rows)?,
                )?;
                Ok((out, op.report()))
            } else {
                let mut op =
                    cfg.overlap_join(from_sorted_vec(x, x_order)?, from_sorted_vec(y, y_order)?)?;
                let out = op.collect_vec()?;
                Ok((out, op.report()))
            }
        }
        other => Err(TdbError::Plan(format!(
            "no materialized join dispatch for {other}"
        ))),
    }
}

/// Run a stream temporal **semijoin** of `kind` (left rows kept) over
/// pre-sorted inputs, selecting the row or batched path per
/// `cfg.batch_rows`.
///
/// Supported kinds: [`StreamOpKind::ContainSemijoinStab`],
/// [`StreamOpKind::ContainedSemijoinStab`] (X sorted `ValidTo ↑`, Y — the
/// containers — sorted `ValidFrom ↑`, exactly the row operator's input
/// convention), and [`StreamOpKind::OverlapSemijoin`] (mode from
/// [`OpConfig::mode`]).
pub fn run_semijoin_kind<X, Y>(
    kind: StreamOpKind,
    cfg: OpConfig,
    x: Vec<X>,
    x_order: StreamOrder,
    y: Vec<Y>,
    y_order: StreamOrder,
) -> TdbResult<(Vec<X>, OpReport)>
where
    X: Temporal + Clone,
    Y: Temporal + Clone,
{
    match kind {
        StreamOpKind::ContainSemijoinStab => {
            if cfg.batched() {
                let mut op = BatchContainSemijoinStab::new();
                let out = drive(
                    &mut op,
                    &mut VecBatchStream::from_sorted_vec(x, x_order, cfg.batch_rows)?,
                    &mut VecBatchStream::from_sorted_vec(y, y_order, cfg.batch_rows)?,
                )?;
                Ok((out, op.report()))
            } else {
                let mut op = cfg.contain_semijoin_stab(
                    from_sorted_vec(x, x_order)?,
                    from_sorted_vec(y, y_order)?,
                )?;
                let out = op.collect_vec()?;
                Ok((out, op.report()))
            }
        }
        StreamOpKind::ContainedSemijoinStab => {
            if cfg.batched() {
                // The batched kernel's left input is the container (Y)
                // side, mirroring the row operator's read_left accounting.
                let mut op = BatchContainedSemijoinStab::new();
                let out = drive(
                    &mut op,
                    &mut VecBatchStream::from_sorted_vec(y, y_order, cfg.batch_rows)?,
                    &mut VecBatchStream::from_sorted_vec(x, x_order, cfg.batch_rows)?,
                )?;
                Ok((out, op.report()))
            } else {
                let mut op = cfg.contained_semijoin_stab(
                    from_sorted_vec(x, x_order)?,
                    from_sorted_vec(y, y_order)?,
                )?;
                let out = op.collect_vec()?;
                Ok((out, op.report()))
            }
        }
        StreamOpKind::OverlapSemijoin => {
            if cfg.batched() {
                let mut op = BatchOverlapSemijoin::new(cfg.mode, cfg.policy);
                let out = drive(
                    &mut op,
                    &mut VecBatchStream::from_sorted_vec(x, x_order, cfg.batch_rows)?,
                    &mut VecBatchStream::from_sorted_vec(y, y_order, cfg.batch_rows)?,
                )?;
                Ok((out, op.report()))
            } else {
                let mut op = cfg
                    .overlap_semijoin(from_sorted_vec(x, x_order)?, from_sorted_vec(y, y_order)?)?;
                let out = op.collect_vec()?;
                Ok((out, op.report()))
            }
        }
        other => Err(TdbError::Plan(format!(
            "no materialized semijoin dispatch for {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlap_join::OverlapMode;
    use tdb_core::TsTuple;

    fn iv(s: i64, e: i64) -> TsTuple {
        TsTuple::interval(s, e).unwrap()
    }

    fn workload(n: i64) -> (Vec<TsTuple>, Vec<TsTuple>) {
        let xs: Vec<_> = (0..n)
            .map(|i| iv(i * 3 % 97, i * 3 % 97 + 5 + (i % 7) * 11))
            .collect();
        let ys: Vec<_> = (0..n)
            .map(|i| iv(i * 5 % 89, i * 5 % 89 + 1 + (i % 5) * 9))
            .collect();
        (xs, ys)
    }

    fn sorted(mut v: Vec<TsTuple>, o: StreamOrder) -> Vec<TsTuple> {
        o.sort(&mut v);
        v
    }

    #[test]
    fn join_dispatch_paths_agree() {
        let (xs, ys) = workload(80);
        let xs = sorted(xs, StreamOrder::TS_ASC);
        let ys = sorted(ys, StreamOrder::TE_ASC);
        let row = run_join_kind(
            StreamOpKind::ContainJoinTsTe,
            OpConfig::new().with_batch_rows(0),
            xs.clone(),
            StreamOrder::TS_ASC,
            ys.clone(),
            StreamOrder::TE_ASC,
        )
        .unwrap();
        for rows in [1usize, 64, 1024] {
            let batched = run_join_kind(
                StreamOpKind::ContainJoinTsTe,
                OpConfig::new().with_batch_rows(rows),
                xs.clone(),
                StreamOrder::TS_ASC,
                ys.clone(),
                StreamOrder::TE_ASC,
            )
            .unwrap();
            assert_eq!(batched, row, "rows {rows}");
        }
    }

    #[test]
    fn semijoin_dispatch_paths_agree() {
        let (xs, ys) = workload(70);
        for (kind, xo, yo, mode) in [
            (
                StreamOpKind::ContainSemijoinStab,
                StreamOrder::TS_ASC,
                StreamOrder::TE_ASC,
                OverlapMode::General,
            ),
            (
                StreamOpKind::ContainedSemijoinStab,
                StreamOrder::TE_ASC,
                StreamOrder::TS_ASC,
                OverlapMode::General,
            ),
            (
                StreamOpKind::OverlapSemijoin,
                StreamOrder::TS_ASC,
                StreamOrder::TS_ASC,
                OverlapMode::Strict,
            ),
        ] {
            let x = sorted(xs.clone(), xo);
            let y = sorted(ys.clone(), yo);
            let cfg = OpConfig::new().with_mode(mode);
            let row = run_semijoin_kind(kind, cfg.with_batch_rows(0), x.clone(), xo, y.clone(), yo)
                .unwrap();
            let batched = run_semijoin_kind(kind, cfg.with_batch_rows(128), x, xo, y, yo).unwrap();
            assert_eq!(batched, row, "{kind}");
        }
    }

    #[test]
    fn unsupported_kinds_are_planning_errors() {
        let err = run_join_kind::<TsTuple, TsTuple>(
            StreamOpKind::BeforeJoin,
            OpConfig::new(),
            vec![],
            StreamOrder::TS_ASC,
            vec![],
            StreamOrder::TS_ASC,
        )
        .unwrap_err();
        assert!(matches!(err, TdbError::Plan(_)));
        let err = run_semijoin_kind::<TsTuple, TsTuple>(
            StreamOpKind::BeforeSemijoin,
            OpConfig::new(),
            vec![],
            StreamOrder::TS_ASC,
            vec![],
            StreamOrder::TS_ASC,
        )
        .unwrap_err();
        assert!(matches!(err, TdbError::Plan(_)));
    }
}
