//! Unified row-vs-batched execution entry points.
//!
//! Every call site that runs a stream temporal operator over materialized,
//! sortable inputs — the query executor, the partitioned-parallel workers,
//! and the experiment harness — used to hand-assemble the same
//! `from_sorted_vec` + [`OpConfig`] constructor + `collect_vec` sequence.
//! [`run_join_kind`] / [`run_semijoin_kind`] centralize that sequence and
//! add the execution-path decision: when [`OpConfig::batched`] holds
//! (`batch_rows > 0`) the vectorized kernels of [`crate::batch_ops`] run
//! over [`VecBatchStream`] columnar batches; otherwise the row-at-a-time
//! pull operators run. Both paths return the same `(output, OpReport)`
//! pair, and by the equivalence pinned in `tests/batch_equivalence.rs` the
//! outputs and reports are identical — only wall-clock differs.
//!
//! Inputs must already be sorted into the orders the operator's registry
//! entry requires ([`StreamOpKind::requirement`]); both paths re-verify the
//! claimed order in O(n) and fail with `OrderViolation` otherwise.

use crate::batch::{VecBatchStream, DEFAULT_BATCH_ROWS};
use crate::batch_ops::{
    drive, drive_each, BatchContainJoinTsTe, BatchContainSemijoinStab, BatchContainedSemijoinStab,
    BatchOp, BatchOverlapJoin, BatchOverlapSemijoin,
};
use crate::report::{Instrumented, OpConfig, OpReport};
use crate::required::StreamOpKind;
use crate::stream::{from_sorted_vec, TupleStream};
use tdb_core::{StreamOrder, TdbError, TdbResult, Temporal};

/// Pull a row operator to completion, handing its output to `emit` in
/// chunks of [`DEFAULT_BATCH_ROWS`] — the row-path twin of
/// [`drive_each`]. Returns `false` if `emit` stopped the run early.
fn pull_each<S>(
    op: &mut S,
    emit: &mut dyn FnMut(Vec<S::Item>) -> TdbResult<bool>,
) -> TdbResult<bool>
where
    S: TupleStream,
{
    let mut chunk = Vec::new();
    while let Some(item) = op.next()? {
        chunk.push(item);
        if chunk.len() >= DEFAULT_BATCH_ROWS && !emit(std::mem::take(&mut chunk))? {
            return Ok(false);
        }
    }
    if !chunk.is_empty() && !emit(chunk)? {
        return Ok(false);
    }
    Ok(true)
}

/// Run a stream temporal **join** of `kind` over pre-sorted inputs,
/// selecting the row or batched path per `cfg.batch_rows`.
///
/// Supported kinds: [`StreamOpKind::ContainJoinTsTe`] and
/// [`StreamOpKind::OverlapJoin`] (mode from [`OpConfig::mode`]) — the
/// kinds the planner emits for materialized two-sided joins. Side swaps
/// (e.g. `During` running the `Contains` operator) are the caller's
/// concern, as before.
pub fn run_join_kind<X, Y>(
    kind: StreamOpKind,
    cfg: OpConfig,
    x: Vec<X>,
    x_order: StreamOrder,
    y: Vec<Y>,
    y_order: StreamOrder,
) -> TdbResult<(Vec<(X, Y)>, OpReport)>
where
    X: Temporal + Clone,
    Y: Temporal + Clone,
{
    match kind {
        StreamOpKind::ContainJoinTsTe => {
            if cfg.batched() {
                let mut op = BatchContainJoinTsTe::new();
                let out = drive(
                    &mut op,
                    &mut VecBatchStream::from_sorted_vec(x, x_order, cfg.batch_rows)?,
                    &mut VecBatchStream::from_sorted_vec(y, y_order, cfg.batch_rows)?,
                )?;
                Ok((out, op.report()))
            } else {
                let mut op = cfg.contain_join_ts_te(
                    from_sorted_vec(x, x_order)?,
                    from_sorted_vec(y, y_order)?,
                )?;
                let out = op.collect_vec()?;
                Ok((out, op.report()))
            }
        }
        StreamOpKind::OverlapJoin => {
            if cfg.batched() {
                let mut op = BatchOverlapJoin::new(cfg.mode, cfg.policy);
                let out = drive(
                    &mut op,
                    &mut VecBatchStream::from_sorted_vec(x, x_order, cfg.batch_rows)?,
                    &mut VecBatchStream::from_sorted_vec(y, y_order, cfg.batch_rows)?,
                )?;
                Ok((out, op.report()))
            } else {
                let mut op =
                    cfg.overlap_join(from_sorted_vec(x, x_order)?, from_sorted_vec(y, y_order)?)?;
                let out = op.collect_vec()?;
                Ok((out, op.report()))
            }
        }
        other => Err(TdbError::Plan(format!(
            "no materialized join dispatch for {other}"
        ))),
    }
}

/// Run a stream temporal **semijoin** of `kind` (left rows kept) over
/// pre-sorted inputs, selecting the row or batched path per
/// `cfg.batch_rows`.
///
/// Supported kinds: [`StreamOpKind::ContainSemijoinStab`],
/// [`StreamOpKind::ContainedSemijoinStab`] (X sorted `ValidTo ↑`, Y — the
/// containers — sorted `ValidFrom ↑`, exactly the row operator's input
/// convention), and [`StreamOpKind::OverlapSemijoin`] (mode from
/// [`OpConfig::mode`]).
pub fn run_semijoin_kind<X, Y>(
    kind: StreamOpKind,
    cfg: OpConfig,
    x: Vec<X>,
    x_order: StreamOrder,
    y: Vec<Y>,
    y_order: StreamOrder,
) -> TdbResult<(Vec<X>, OpReport)>
where
    X: Temporal + Clone,
    Y: Temporal + Clone,
{
    match kind {
        StreamOpKind::ContainSemijoinStab => {
            if cfg.batched() {
                let mut op = BatchContainSemijoinStab::new();
                let out = drive(
                    &mut op,
                    &mut VecBatchStream::from_sorted_vec(x, x_order, cfg.batch_rows)?,
                    &mut VecBatchStream::from_sorted_vec(y, y_order, cfg.batch_rows)?,
                )?;
                Ok((out, op.report()))
            } else {
                let mut op = cfg.contain_semijoin_stab(
                    from_sorted_vec(x, x_order)?,
                    from_sorted_vec(y, y_order)?,
                )?;
                let out = op.collect_vec()?;
                Ok((out, op.report()))
            }
        }
        StreamOpKind::ContainedSemijoinStab => {
            if cfg.batched() {
                // The batched kernel's left input is the container (Y)
                // side, mirroring the row operator's read_left accounting.
                let mut op = BatchContainedSemijoinStab::new();
                let out = drive(
                    &mut op,
                    &mut VecBatchStream::from_sorted_vec(y, y_order, cfg.batch_rows)?,
                    &mut VecBatchStream::from_sorted_vec(x, x_order, cfg.batch_rows)?,
                )?;
                Ok((out, op.report()))
            } else {
                let mut op = cfg.contained_semijoin_stab(
                    from_sorted_vec(x, x_order)?,
                    from_sorted_vec(y, y_order)?,
                )?;
                let out = op.collect_vec()?;
                Ok((out, op.report()))
            }
        }
        StreamOpKind::OverlapSemijoin => {
            if cfg.batched() {
                let mut op = BatchOverlapSemijoin::new(cfg.mode, cfg.policy);
                let out = drive(
                    &mut op,
                    &mut VecBatchStream::from_sorted_vec(x, x_order, cfg.batch_rows)?,
                    &mut VecBatchStream::from_sorted_vec(y, y_order, cfg.batch_rows)?,
                )?;
                Ok((out, op.report()))
            } else {
                let mut op = cfg
                    .overlap_semijoin(from_sorted_vec(x, x_order)?, from_sorted_vec(y, y_order)?)?;
                let out = op.collect_vec()?;
                Ok((out, op.report()))
            }
        }
        other => Err(TdbError::Plan(format!(
            "no materialized semijoin dispatch for {other}"
        ))),
    }
}

/// Sink-mode twin of [`run_join_kind`]: hand each output chunk to `emit`
/// as the operator drains instead of materializing one pair vector. The
/// returned flag is `false` when `emit` stopped the run early; the
/// [`OpReport`] then covers only the work done up to that point.
///
/// Covers the same kinds as [`run_join_kind`]; `tdb-lint` cross-checks
/// that the two dispatch tables never drift apart.
pub fn run_join_kind_each<X, Y>(
    kind: StreamOpKind,
    cfg: OpConfig,
    x: Vec<X>,
    x_order: StreamOrder,
    y: Vec<Y>,
    y_order: StreamOrder,
    emit: &mut dyn FnMut(Vec<(X, Y)>) -> TdbResult<bool>,
) -> TdbResult<(bool, OpReport)>
where
    X: Temporal + Clone,
    Y: Temporal + Clone,
{
    match kind {
        StreamOpKind::ContainJoinTsTe => {
            if cfg.batched() {
                let mut op = BatchContainJoinTsTe::new();
                let completed = drive_each(
                    &mut op,
                    &mut VecBatchStream::from_sorted_vec(x, x_order, cfg.batch_rows)?,
                    &mut VecBatchStream::from_sorted_vec(y, y_order, cfg.batch_rows)?,
                    emit,
                )?;
                Ok((completed, op.report()))
            } else {
                let mut op = cfg.contain_join_ts_te(
                    from_sorted_vec(x, x_order)?,
                    from_sorted_vec(y, y_order)?,
                )?;
                let completed = pull_each(&mut op, emit)?;
                Ok((completed, op.report()))
            }
        }
        StreamOpKind::OverlapJoin => {
            if cfg.batched() {
                let mut op = BatchOverlapJoin::new(cfg.mode, cfg.policy);
                let completed = drive_each(
                    &mut op,
                    &mut VecBatchStream::from_sorted_vec(x, x_order, cfg.batch_rows)?,
                    &mut VecBatchStream::from_sorted_vec(y, y_order, cfg.batch_rows)?,
                    emit,
                )?;
                Ok((completed, op.report()))
            } else {
                let mut op =
                    cfg.overlap_join(from_sorted_vec(x, x_order)?, from_sorted_vec(y, y_order)?)?;
                let completed = pull_each(&mut op, emit)?;
                Ok((completed, op.report()))
            }
        }
        other => Err(TdbError::Plan(format!("no sink join dispatch for {other}"))),
    }
}

/// Count-only twin of [`run_join_kind`]: return the number of matching
/// pairs without materializing any. On the batched path the kernels run
/// in count-only mode — the probe pass sums hits over the endpoint
/// columns and never clones a payload — which is where count-dominated
/// consumers (aggregation, `count(*)`, [`crate::sink::CountSink`]) regain
/// the output-materialization cost. Metrics in the report are identical
/// to the materializing run's.
pub fn run_join_kind_count<X, Y>(
    kind: StreamOpKind,
    cfg: OpConfig,
    x: Vec<X>,
    x_order: StreamOrder,
    y: Vec<Y>,
    y_order: StreamOrder,
) -> TdbResult<(usize, OpReport)>
where
    X: Temporal + Clone,
    Y: Temporal + Clone,
{
    match kind {
        StreamOpKind::ContainJoinTsTe => {
            if cfg.batched() {
                let mut op = BatchContainJoinTsTe::new().count_only();
                drive(
                    &mut op,
                    &mut VecBatchStream::from_sorted_vec(x, x_order, cfg.batch_rows)?,
                    &mut VecBatchStream::from_sorted_vec(y, y_order, cfg.batch_rows)?,
                )?;
                let report = op.report();
                Ok((report.metrics.emitted, report))
            } else {
                let mut op = cfg.contain_join_ts_te(
                    from_sorted_vec(x, x_order)?,
                    from_sorted_vec(y, y_order)?,
                )?;
                let mut n = 0usize;
                while op.next()?.is_some() {
                    n += 1;
                }
                Ok((n, op.report()))
            }
        }
        StreamOpKind::OverlapJoin => {
            if cfg.batched() {
                let mut op = BatchOverlapJoin::new(cfg.mode, cfg.policy).count_only();
                drive(
                    &mut op,
                    &mut VecBatchStream::from_sorted_vec(x, x_order, cfg.batch_rows)?,
                    &mut VecBatchStream::from_sorted_vec(y, y_order, cfg.batch_rows)?,
                )?;
                let report = op.report();
                Ok((report.metrics.emitted, report))
            } else {
                let mut op =
                    cfg.overlap_join(from_sorted_vec(x, x_order)?, from_sorted_vec(y, y_order)?)?;
                let mut n = 0usize;
                while op.next()?.is_some() {
                    n += 1;
                }
                Ok((n, op.report()))
            }
        }
        other => Err(TdbError::Plan(format!(
            "no count-only join dispatch for {other}"
        ))),
    }
}

/// Sink-mode twin of [`run_semijoin_kind`]: hand kept left rows to `emit`
/// in chunks as the operator drains. Same kind coverage as the
/// materializing dispatch; the flag is `false` on early termination.
pub fn run_semijoin_kind_each<X, Y>(
    kind: StreamOpKind,
    cfg: OpConfig,
    x: Vec<X>,
    x_order: StreamOrder,
    y: Vec<Y>,
    y_order: StreamOrder,
    emit: &mut dyn FnMut(Vec<X>) -> TdbResult<bool>,
) -> TdbResult<(bool, OpReport)>
where
    X: Temporal + Clone,
    Y: Temporal + Clone,
{
    match kind {
        StreamOpKind::ContainSemijoinStab => {
            if cfg.batched() {
                let mut op = BatchContainSemijoinStab::new();
                let completed = drive_each(
                    &mut op,
                    &mut VecBatchStream::from_sorted_vec(x, x_order, cfg.batch_rows)?,
                    &mut VecBatchStream::from_sorted_vec(y, y_order, cfg.batch_rows)?,
                    emit,
                )?;
                Ok((completed, op.report()))
            } else {
                let mut op = cfg.contain_semijoin_stab(
                    from_sorted_vec(x, x_order)?,
                    from_sorted_vec(y, y_order)?,
                )?;
                let completed = pull_each(&mut op, emit)?;
                Ok((completed, op.report()))
            }
        }
        StreamOpKind::ContainedSemijoinStab => {
            if cfg.batched() {
                // Same side convention as the materialized path: the
                // batched kernel's left input is the container (Y) side.
                let mut op = BatchContainedSemijoinStab::new();
                let completed = drive_each(
                    &mut op,
                    &mut VecBatchStream::from_sorted_vec(y, y_order, cfg.batch_rows)?,
                    &mut VecBatchStream::from_sorted_vec(x, x_order, cfg.batch_rows)?,
                    emit,
                )?;
                Ok((completed, op.report()))
            } else {
                let mut op = cfg.contained_semijoin_stab(
                    from_sorted_vec(x, x_order)?,
                    from_sorted_vec(y, y_order)?,
                )?;
                let completed = pull_each(&mut op, emit)?;
                Ok((completed, op.report()))
            }
        }
        StreamOpKind::OverlapSemijoin => {
            if cfg.batched() {
                let mut op = BatchOverlapSemijoin::new(cfg.mode, cfg.policy);
                let completed = drive_each(
                    &mut op,
                    &mut VecBatchStream::from_sorted_vec(x, x_order, cfg.batch_rows)?,
                    &mut VecBatchStream::from_sorted_vec(y, y_order, cfg.batch_rows)?,
                    emit,
                )?;
                Ok((completed, op.report()))
            } else {
                let mut op = cfg
                    .overlap_semijoin(from_sorted_vec(x, x_order)?, from_sorted_vec(y, y_order)?)?;
                let completed = pull_each(&mut op, emit)?;
                Ok((completed, op.report()))
            }
        }
        other => Err(TdbError::Plan(format!(
            "no sink semijoin dispatch for {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlap_join::OverlapMode;
    use tdb_core::TsTuple;

    fn iv(s: i64, e: i64) -> TsTuple {
        TsTuple::interval(s, e).unwrap()
    }

    fn workload(n: i64) -> (Vec<TsTuple>, Vec<TsTuple>) {
        let xs: Vec<_> = (0..n)
            .map(|i| iv(i * 3 % 97, i * 3 % 97 + 5 + (i % 7) * 11))
            .collect();
        let ys: Vec<_> = (0..n)
            .map(|i| iv(i * 5 % 89, i * 5 % 89 + 1 + (i % 5) * 9))
            .collect();
        (xs, ys)
    }

    fn sorted(mut v: Vec<TsTuple>, o: StreamOrder) -> Vec<TsTuple> {
        o.sort(&mut v);
        v
    }

    #[test]
    fn join_dispatch_paths_agree() {
        let (xs, ys) = workload(80);
        let xs = sorted(xs, StreamOrder::TS_ASC);
        let ys = sorted(ys, StreamOrder::TE_ASC);
        let row = run_join_kind(
            StreamOpKind::ContainJoinTsTe,
            OpConfig::new().with_batch_rows(0),
            xs.clone(),
            StreamOrder::TS_ASC,
            ys.clone(),
            StreamOrder::TE_ASC,
        )
        .unwrap();
        for rows in [1usize, 64, 1024] {
            let batched = run_join_kind(
                StreamOpKind::ContainJoinTsTe,
                OpConfig::new().with_batch_rows(rows),
                xs.clone(),
                StreamOrder::TS_ASC,
                ys.clone(),
                StreamOrder::TE_ASC,
            )
            .unwrap();
            assert_eq!(batched, row, "rows {rows}");
        }
    }

    #[test]
    fn semijoin_dispatch_paths_agree() {
        let (xs, ys) = workload(70);
        for (kind, xo, yo, mode) in [
            (
                StreamOpKind::ContainSemijoinStab,
                StreamOrder::TS_ASC,
                StreamOrder::TE_ASC,
                OverlapMode::General,
            ),
            (
                StreamOpKind::ContainedSemijoinStab,
                StreamOrder::TE_ASC,
                StreamOrder::TS_ASC,
                OverlapMode::General,
            ),
            (
                StreamOpKind::OverlapSemijoin,
                StreamOrder::TS_ASC,
                StreamOrder::TS_ASC,
                OverlapMode::Strict,
            ),
        ] {
            let x = sorted(xs.clone(), xo);
            let y = sorted(ys.clone(), yo);
            let cfg = OpConfig::new().with_mode(mode);
            let row = run_semijoin_kind(kind, cfg.with_batch_rows(0), x.clone(), xo, y.clone(), yo)
                .unwrap();
            let batched = run_semijoin_kind(kind, cfg.with_batch_rows(128), x, xo, y, yo).unwrap();
            assert_eq!(batched, row, "{kind}");
        }
    }

    #[test]
    fn sink_dispatch_matches_materialized_and_stops_early() {
        let (xs, ys) = workload(80);
        let xs = sorted(xs, StreamOrder::TS_ASC);
        let ys = sorted(ys, StreamOrder::TE_ASC);
        let (pairs, report) = run_join_kind(
            StreamOpKind::ContainJoinTsTe,
            OpConfig::new(),
            xs.clone(),
            StreamOrder::TS_ASC,
            ys.clone(),
            StreamOrder::TE_ASC,
        )
        .unwrap();
        for rows in [0usize, 64, 1024] {
            let cfg = OpConfig::new().with_batch_rows(rows);
            let mut streamed = Vec::new();
            let (completed, sreport) = run_join_kind_each(
                StreamOpKind::ContainJoinTsTe,
                cfg,
                xs.clone(),
                StreamOrder::TS_ASC,
                ys.clone(),
                StreamOrder::TE_ASC,
                &mut |chunk| {
                    streamed.extend(chunk);
                    Ok(true)
                },
            )
            .unwrap();
            assert!(completed);
            assert_eq!(streamed, pairs, "rows {rows}");
            assert_eq!(sreport, report, "rows {rows}");
            // Count-only agrees with the materialized emit count.
            let (n, creport) = run_join_kind_count(
                StreamOpKind::ContainJoinTsTe,
                cfg,
                xs.clone(),
                StreamOrder::TS_ASC,
                ys.clone(),
                StreamOrder::TE_ASC,
            )
            .unwrap();
            assert_eq!(n, pairs.len(), "rows {rows}");
            assert_eq!(creport.metrics, report.metrics, "rows {rows}");
            assert_eq!(creport.max_workspace(), report.max_workspace());
            // Early termination stops the producer mid-run.
            let mut seen = 0usize;
            let (completed, _) = run_join_kind_each(
                StreamOpKind::ContainJoinTsTe,
                OpConfig::new().with_batch_rows(rows.min(8)),
                xs.clone(),
                StreamOrder::TS_ASC,
                ys.clone(),
                StreamOrder::TE_ASC,
                &mut |chunk| {
                    seen += chunk.len();
                    Ok(false)
                },
            )
            .unwrap();
            assert!(!completed);
            assert!(
                seen < pairs.len(),
                "stopped after {seen} of {}",
                pairs.len()
            );
        }
    }

    #[test]
    fn sink_semijoin_dispatch_matches_materialized() {
        let (xs, ys) = workload(70);
        for (kind, xo, yo, mode) in [
            (
                StreamOpKind::ContainSemijoinStab,
                StreamOrder::TS_ASC,
                StreamOrder::TE_ASC,
                OverlapMode::General,
            ),
            (
                StreamOpKind::ContainedSemijoinStab,
                StreamOrder::TE_ASC,
                StreamOrder::TS_ASC,
                OverlapMode::General,
            ),
            (
                StreamOpKind::OverlapSemijoin,
                StreamOrder::TS_ASC,
                StreamOrder::TS_ASC,
                OverlapMode::Strict,
            ),
        ] {
            let x = sorted(xs.clone(), xo);
            let y = sorted(ys.clone(), yo);
            for rows in [0usize, 128] {
                let cfg = OpConfig::new().with_mode(mode).with_batch_rows(rows);
                let (kept, report) =
                    run_semijoin_kind(kind, cfg, x.clone(), xo, y.clone(), yo).unwrap();
                let mut streamed = Vec::new();
                let (completed, sreport) =
                    run_semijoin_kind_each(kind, cfg, x.clone(), xo, y.clone(), yo, &mut |chunk| {
                        streamed.extend(chunk);
                        Ok(true)
                    })
                    .unwrap();
                assert!(completed);
                assert_eq!(streamed, kept, "{kind} rows {rows}");
                assert_eq!(sreport, report, "{kind} rows {rows}");
            }
        }
    }

    #[test]
    fn unsupported_kinds_are_planning_errors() {
        let err = run_join_kind::<TsTuple, TsTuple>(
            StreamOpKind::BeforeJoin,
            OpConfig::new(),
            vec![],
            StreamOrder::TS_ASC,
            vec![],
            StreamOrder::TS_ASC,
        )
        .unwrap_err();
        assert!(matches!(err, TdbError::Plan(_)));
        let err = run_semijoin_kind::<TsTuple, TsTuple>(
            StreamOpKind::BeforeSemijoin,
            OpConfig::new(),
            vec![],
            StreamOrder::TS_ASC,
            vec![],
            StreamOrder::TS_ASC,
        )
        .unwrap_err();
        assert!(matches!(err, TdbError::Plan(_)));
    }
}
