//! Merge joins on timestamp equality — the non-inequality temporal
//! operators.
//!
//! Paper footnote 8: "For non-inequality constraints, an obvious stream
//! processing method appears to be sorting both relations on attributes that
//! are involved in the equalities followed by a conventional merge-join
//! (and perhaps combined with filtering using inequality constraints)."
//!
//! [`EventMergeJoin`] is that method, parameterized by which timestamp each
//! side equi-joins on plus a residual filter; constructors cover the four
//! equality-bearing Allen operators:
//!
//! | operator | X key | Y key | residual |
//! |---|---|---|---|
//! | `equal`    | TS | TS | `X.TE = Y.TE` |
//! | `meets`    | TE | TS | — |
//! | `starts`   | TS | TS | `X.TE < Y.TE` |
//! | `finishes` | TE | TE | `X.TS > Y.TS` |

use crate::metrics::OpMetrics;
use crate::stream::TupleStream;
use std::collections::VecDeque;
use tdb_core::{SortKey, SortSpec, StreamOrder, TdbError, TdbResult, Temporal};

/// Merge join on timestamp keys with a residual predicate.
pub struct EventMergeJoin<X: TupleStream, Y: TupleStream>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    x: X,
    y: Y,
    x_key: SortKey,
    y_key: SortKey,
    residual: fn(&dyn Temporal, &dyn Temporal) -> bool,
    x_buf: Option<X::Item>,
    y_buf: Option<Y::Item>,
    /// Buffered group of Y tuples sharing the current key (classic merge
    /// join duplicate handling).
    y_group: Vec<Y::Item>,
    y_group_key: Option<tdb_core::TimePoint>,
    pending: VecDeque<(X::Item, Y::Item)>,
    metrics: OpMetrics,
    started: bool,
    max_group: usize,
}

fn always(_: &dyn Temporal, _: &dyn Temporal) -> bool {
    true
}

fn residual_equal(x: &dyn Temporal, y: &dyn Temporal) -> bool {
    x.te() == y.te()
}

fn residual_starts(x: &dyn Temporal, y: &dyn Temporal) -> bool {
    x.te() < y.te()
}

fn residual_finishes(x: &dyn Temporal, y: &dyn Temporal) -> bool {
    x.ts() > y.ts()
}

impl<X: TupleStream, Y: TupleStream> EventMergeJoin<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    fn build(
        x: X,
        y: Y,
        x_key: SortKey,
        y_key: SortKey,
        residual: fn(&dyn Temporal, &dyn Temporal) -> bool,
        name: &'static str,
    ) -> TdbResult<Self> {
        let need_x = StreamOrder::by(SortSpec {
            key: x_key,
            direction: tdb_core::Direction::Asc,
        });
        let need_y = StreamOrder::by(SortSpec {
            key: y_key,
            direction: tdb_core::Direction::Asc,
        });
        for (side, order, need) in [("X", x.order(), need_x), ("Y", y.order(), need_y)] {
            match order {
                Some(o) if o.satisfies(&need) => {}
                other => {
                    return Err(TdbError::UnsupportedOrdering {
                        operator: name,
                        detail: format!("{side} input must be sorted {need}, found {other:?}"),
                    })
                }
            }
        }
        Ok(EventMergeJoin {
            x,
            y,
            x_key,
            y_key,
            residual,
            x_buf: None,
            y_buf: None,
            y_group: Vec::new(),
            y_group_key: None,
            pending: VecDeque::new(),
            metrics: OpMetrics {
                passes: 1,
                ..OpMetrics::default()
            },
            started: false,
            max_group: 0,
        })
    }

    /// Allen `equal`: identical lifespans. Inputs sorted `ValidFrom ↑`.
    pub fn equal(x: X, y: Y) -> TdbResult<Self> {
        Self::build(
            x,
            y,
            SortKey::ValidFrom,
            SortKey::ValidFrom,
            residual_equal,
            "EventMergeJoin(equal)",
        )
    }

    /// Allen `meets`: `X.TE = Y.TS`. X sorted `ValidTo ↑`, Y `ValidFrom ↑`.
    pub fn meets(x: X, y: Y) -> TdbResult<Self> {
        Self::build(
            x,
            y,
            SortKey::ValidTo,
            SortKey::ValidFrom,
            always,
            "EventMergeJoin(meets)",
        )
    }

    /// Allen `starts`: `X.TS = Y.TS ∧ X.TE < Y.TE`. Inputs `ValidFrom ↑`.
    pub fn starts(x: X, y: Y) -> TdbResult<Self> {
        Self::build(
            x,
            y,
            SortKey::ValidFrom,
            SortKey::ValidFrom,
            residual_starts,
            "EventMergeJoin(starts)",
        )
    }

    /// Allen `finishes`: `X.TE = Y.TE ∧ X.TS > Y.TS`. Inputs `ValidTo ↑`.
    pub fn finishes(x: X, y: Y) -> TdbResult<Self> {
        Self::build(
            x,
            y,
            SortKey::ValidTo,
            SortKey::ValidTo,
            residual_finishes,
            "EventMergeJoin(finishes)",
        )
    }

    /// Execution metrics.
    pub fn metrics(&self) -> OpMetrics {
        self.metrics
    }

    /// Maximum buffered Y-group size (the merge join's only state).
    pub fn max_workspace(&self) -> usize {
        self.max_group
    }

    fn refill_x(&mut self) -> TdbResult<()> {
        self.x_buf = self.x.next()?;
        if self.x_buf.is_some() {
            self.metrics.read_left += 1;
        }
        Ok(())
    }

    fn refill_y(&mut self) -> TdbResult<()> {
        self.y_buf = self.y.next()?;
        if self.y_buf.is_some() {
            self.metrics.read_right += 1;
        }
        Ok(())
    }

    /// Load the group of Y tuples whose key equals `key` into `y_group`.
    fn load_y_group(&mut self, key: tdb_core::TimePoint) -> TdbResult<()> {
        self.y_group.clear();
        self.y_group_key = Some(key);
        while let Some(yb) = &self.y_buf {
            if self.y_key.extract(yb) == key {
                // The `while let Some` just matched. lint:allow(no-unwrap)
                self.y_group.push(self.y_buf.take().expect("checked above"));
                self.refill_y()?;
            } else {
                break;
            }
        }
        self.max_group = self.max_group.max(self.y_group.len());
        Ok(())
    }
}

impl<X: TupleStream, Y: TupleStream> TupleStream for EventMergeJoin<X, Y>
where
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    type Item = (X::Item, Y::Item);

    fn next(&mut self) -> TdbResult<Option<Self::Item>> {
        loop {
            if let Some(pair) = self.pending.pop_front() {
                self.metrics.emitted += 1;
                return Ok(Some(pair));
            }
            if !self.started {
                self.started = true;
                self.refill_x()?;
                self.refill_y()?;
            }
            let Some(xb) = &self.x_buf else {
                return Ok(None);
            };
            let x_key = self.x_key.extract(xb);

            // Reuse the buffered group if the key matches; otherwise advance
            // the Y side to (or past) the X key and load the group.
            if self.y_group_key != Some(x_key) {
                // Skip Y tuples with smaller keys.
                loop {
                    match &self.y_buf {
                        Some(yb) if self.y_key.extract(yb) < x_key => {
                            self.metrics.comparisons += 1;
                            self.refill_y()?;
                        }
                        _ => break,
                    }
                }
                match &self.y_buf {
                    Some(yb) if self.y_key.extract(yb) == x_key => {
                        self.load_y_group(x_key)?;
                    }
                    _ => {
                        // No Y group for this key: if Y is exhausted and no
                        // group matches, no further X can match either only
                        // when keys grow — they do, so terminate when Y dry.
                        if self.y_buf.is_none() {
                            return Ok(None);
                        }
                        self.y_group.clear();
                        self.y_group_key = Some(x_key); // empty group marker
                    }
                }
            }

            // The `let Some(xb)` guard above returned on None. lint:allow(no-unwrap)
            let x = self.x_buf.take().expect("checked above");
            for y in &self.y_group {
                self.metrics.comparisons += 1;
                if (self.residual)(&x, y) {
                    self.pending.push_back((x.clone(), y.clone()));
                }
            }
            self.refill_x()?;
        }
    }

    fn order(&self) -> Option<StreamOrder> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::from_sorted_vec;
    use proptest::prelude::*;
    use tdb_core::{AllenRelation, StreamOrder, TsTuple};

    fn iv(s: i64, e: i64) -> TsTuple {
        TsTuple::interval(s, e).unwrap()
    }

    fn canon(mut v: Vec<(TsTuple, TsTuple)>) -> Vec<(TsTuple, TsTuple)> {
        v.sort_by_key(|(x, y)| {
            (
                x.ts().ticks(),
                x.te().ticks(),
                y.ts().ticks(),
                y.te().ticks(),
            )
        });
        v
    }

    fn oracle(xs: &[TsTuple], ys: &[TsTuple], rel: AllenRelation) -> Vec<(TsTuple, TsTuple)> {
        let mut out = Vec::new();
        for x in xs {
            for y in ys {
                if rel.holds(&x.period, &y.period) {
                    out.push((x.clone(), y.clone()));
                }
            }
        }
        canon(out)
    }

    fn run(
        mut xs: Vec<TsTuple>,
        mut ys: Vec<TsTuple>,
        rel: AllenRelation,
    ) -> Vec<(TsTuple, TsTuple)> {
        let (xo, yo) = match rel {
            AllenRelation::Equal | AllenRelation::Starts => {
                (StreamOrder::TS_ASC, StreamOrder::TS_ASC)
            }
            AllenRelation::Meets => (StreamOrder::TE_ASC, StreamOrder::TS_ASC),
            AllenRelation::Finishes => (StreamOrder::TE_ASC, StreamOrder::TE_ASC),
            _ => unreachable!(),
        };
        xo.sort(&mut xs);
        yo.sort(&mut ys);
        let x = from_sorted_vec(xs, xo).unwrap();
        let y = from_sorted_vec(ys, yo).unwrap();
        let mut op = match rel {
            AllenRelation::Equal => EventMergeJoin::equal(x, y).unwrap(),
            AllenRelation::Meets => EventMergeJoin::meets(x, y).unwrap(),
            AllenRelation::Starts => EventMergeJoin::starts(x, y).unwrap(),
            AllenRelation::Finishes => EventMergeJoin::finishes(x, y).unwrap(),
            _ => unreachable!(),
        };
        canon(op.collect_vec().unwrap())
    }

    #[test]
    fn meets_basic() {
        let xs = vec![iv(0, 3), iv(1, 3), iv(4, 6)];
        let ys = vec![iv(3, 5), iv(3, 9), iv(6, 7), iv(2, 4)];
        let got = run(xs.clone(), ys.clone(), AllenRelation::Meets);
        assert_eq!(got, oracle(&xs, &ys, AllenRelation::Meets));
        assert_eq!(got.len(), 5); // two x's meet two y's at 3; [4,6) meets [6,7)
    }

    #[test]
    fn equal_requires_both_endpoints() {
        let xs = vec![iv(0, 5), iv(0, 7)];
        let ys = vec![iv(0, 5), iv(0, 9)];
        let got = run(xs, ys, AllenRelation::Equal);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, iv(0, 5));
    }

    #[test]
    fn starts_and_finishes_are_strict() {
        let xs = vec![iv(0, 5)];
        let ys = vec![iv(0, 5), iv(0, 9)];
        let got = run(xs, ys, AllenRelation::Starts);
        assert_eq!(got.len(), 1); // only [0,9): equal is excluded
        let xs = vec![iv(3, 5)];
        let ys = vec![iv(0, 5), iv(3, 5), iv(4, 5)];
        let got = run(xs, ys, AllenRelation::Finishes);
        assert_eq!(got.len(), 1); // only [0,5): x.TS must exceed y.TS
    }

    #[test]
    fn duplicate_keys_produce_full_groups() {
        let xs = vec![iv(0, 3), iv(0, 3)];
        let ys = vec![iv(3, 4), iv(3, 5), iv(3, 6)];
        let got = run(xs, ys, AllenRelation::Meets);
        assert_eq!(got.len(), 6);
    }

    #[test]
    fn rejects_wrong_order() {
        let x = from_sorted_vec(vec![iv(0, 3)], StreamOrder::TS_ASC).unwrap();
        let y = from_sorted_vec(vec![iv(3, 4)], StreamOrder::TS_ASC).unwrap();
        assert!(EventMergeJoin::meets(x, y).is_err()); // X must be TE ↑
    }

    fn arb_small_intervals(n: usize) -> impl Strategy<Value = Vec<TsTuple>> {
        // Small key space so equalities actually occur.
        proptest::collection::vec((-8i64..8, 1i64..8), 0..n)
            .prop_map(|v| v.into_iter().map(|(s, d)| iv(s, s + d)).collect())
    }

    proptest! {
        #[test]
        fn all_four_match_oracle(xs in arb_small_intervals(30), ys in arb_small_intervals(30)) {
            for rel in [
                AllenRelation::Equal,
                AllenRelation::Meets,
                AllenRelation::Starts,
                AllenRelation::Finishes,
            ] {
                prop_assert_eq!(
                    run(xs.clone(), ys.clone(), rel),
                    oracle(&xs, &ys, rel),
                    "relation {}",
                    rel
                );
            }
        }
    }
}
