//! The unified construction and instrumentation surface for stream
//! operators.
//!
//! Historically every operator grew its own constructor shape (policy here,
//! mode there) and its own reporting accessors (`workspace()` returning one
//! stat, a pair of stats, or nothing). This module normalizes both sides:
//!
//! * [`OpConfig`] is a builder holding the cross-cutting knobs — the
//!   [`ReadPolicy`] for two-sided sweeps and the [`OverlapMode`] for
//!   overlap operators — with one construction method per operator;
//! * [`Instrumented`] is implemented by every operator and returns an
//!   [`OpReport`] bundling [`OpMetrics`] with a single [`WorkspaceStats`]
//!   (two-state operators report the *stacked* combination, so
//!   `report().workspace.max_resident` always equals the operator's
//!   historical `max_workspace()`).
//!
//! The executor, the experiments harness and the parallel partition driver
//! consume only this surface.

use crate::aggregate::GroupedSum;
use crate::before::{BeforeJoin, BeforeSemijoin};
use crate::buffered_join::BufferedJoin;
use crate::coalesce::Coalesce;
use crate::contain_join::{ContainJoinTsTe, ContainJoinTsTs};
use crate::event_join::EventMergeJoin;
use crate::merge_join::MergeEquiJoin;
use crate::metrics::OpMetrics;
use crate::nested_loop::NestedLoopJoin;
use crate::overlap_join::{OverlapJoin, OverlapMode, OverlapSemijoin};
use crate::read_policy::ReadPolicy;
use crate::self_semijoin::{ContainSelfSemijoin, ContainSelfSemijoinDesc, ContainedSelfSemijoin};
use crate::stab_semijoin::{ContainSemijoinStab, ContainedSemijoinStab};
use crate::stream::TupleStream;
use crate::sweep_semijoin::SweepSemijoin;
use crate::timeslice::Timeslice;
use crate::workspace::WorkspaceStats;
use std::fmt;
use tdb_core::{TdbResult, Temporal, TimePoint, Value};

/// Everything an operator reports about one run: throughput counters plus
/// workspace statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpReport {
    /// Read/comparison/emit counters.
    pub metrics: OpMetrics,
    /// State-set statistics (stacked across a two-sided operator's states).
    pub workspace: WorkspaceStats,
}

impl OpReport {
    /// Bundle metrics and workspace stats.
    pub fn new(metrics: OpMetrics, workspace: WorkspaceStats) -> OpReport {
        OpReport { metrics, workspace }
    }

    /// Peak resident state tuples — the paper's workspace figure.
    pub fn max_workspace(&self) -> usize {
        self.workspace.max_resident
    }

    /// Aggregate the report of another instance of the *same* operator run
    /// over a disjoint partition in parallel: reads, comparisons and emits
    /// sum; workspace peaks take the max (each worker owns its state);
    /// passes take the max (the partitioned run is still one logical pass).
    pub fn combine_parallel(self, other: OpReport) -> OpReport {
        OpReport {
            metrics: OpMetrics {
                read_left: self.metrics.read_left + other.metrics.read_left,
                read_right: self.metrics.read_right + other.metrics.read_right,
                comparisons: self.metrics.comparisons + other.metrics.comparisons,
                emitted: self.metrics.emitted + other.metrics.emitted,
                passes: self.metrics.passes.max(other.metrics.passes),
            },
            workspace: self.workspace.combine_parallel(other.workspace),
        }
    }
}

impl fmt::Display for OpReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}; workspace {}", self.metrics, self.workspace)
    }
}

/// Implemented by every stream operator: a uniform way to read metrics and
/// workspace statistics after (or during) a run.
pub trait Instrumented {
    /// The operator's combined report.
    fn report(&self) -> OpReport;

    /// Peak resident state tuples.
    fn max_workspace(&self) -> usize {
        self.report().workspace.max_resident
    }
}

/// Builder for stream operators, holding the knobs shared across the
/// family; per-operator inputs are supplied at construction time.
///
/// ```
/// use tdb_stream::{from_sorted_vec, Instrumented, OpConfig, TupleStream};
/// use tdb_core::{StreamOrder, TsTuple};
///
/// let xs = vec![TsTuple::interval(0, 10)?, TsTuple::interval(4, 6)?];
/// let ys = vec![TsTuple::interval(5, 6)?];
/// let x = from_sorted_vec(xs, StreamOrder::TS_ASC)?;
/// let y = from_sorted_vec(ys, StreamOrder::TS_ASC)?;
/// let mut op = OpConfig::new().contain_join_ts_ts(x, y)?;
/// let pairs = op.collect_vec()?;
/// let report = op.report();
/// assert_eq!(pairs.len(), report.metrics.emitted);
/// # Ok::<(), tdb_core::TdbError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpConfig {
    /// Which input a two-sided sweep advances when both buffers are full.
    pub policy: ReadPolicy,
    /// Which overlap predicate the overlap operators evaluate.
    pub mode: OverlapMode,
    /// Rows per columnar batch on the vectorized execution path
    /// ([`crate::batch_ops`]); `0` selects the row-at-a-time operators.
    /// Only consulted by [`crate::allen_dispatch`]-level drivers that
    /// support both paths — the row constructors below ignore it.
    pub batch_rows: usize,
}

impl Default for OpConfig {
    fn default() -> OpConfig {
        OpConfig {
            policy: ReadPolicy::MinKey,
            mode: OverlapMode::General,
            batch_rows: crate::batch::DEFAULT_BATCH_ROWS,
        }
    }
}

impl OpConfig {
    /// The default configuration: `MinKey` policy, general overlap,
    /// batched execution at [`crate::batch::DEFAULT_BATCH_ROWS`].
    pub fn new() -> OpConfig {
        OpConfig::default()
    }

    /// Set the read policy for two-sided sweeps.
    pub fn with_policy(mut self, policy: ReadPolicy) -> OpConfig {
        self.policy = policy;
        self
    }

    /// Set the overlap predicate mode.
    pub fn with_mode(mut self, mode: OverlapMode) -> OpConfig {
        self.mode = mode;
        self
    }

    /// Set the batch size for the vectorized path (`0` = row-at-a-time).
    pub fn with_batch_rows(mut self, batch_rows: usize) -> OpConfig {
        self.batch_rows = batch_rows;
        self
    }

    /// Does this configuration select the batched execution path?
    pub fn batched(&self) -> bool {
        self.batch_rows > 0
    }

    /// Contain-join under `(ValidFrom ↑, ValidFrom ↑)` — Table 1 state (a).
    pub fn contain_join_ts_ts<X, Y>(&self, x: X, y: Y) -> TdbResult<ContainJoinTsTs<X, Y>>
    where
        X: TupleStream,
        Y: TupleStream,
        X::Item: Temporal + Clone,
        Y::Item: Temporal + Clone,
    {
        ContainJoinTsTs::new(x, y, self.policy)
    }

    /// Contain-join under `(ValidFrom ↑, ValidTo ↑)` — Table 1 state (b).
    pub fn contain_join_ts_te<X, Y>(&self, x: X, y: Y) -> TdbResult<ContainJoinTsTe<X, Y>>
    where
        X: TupleStream,
        Y: TupleStream,
        X::Item: Temporal + Clone,
        Y::Item: Temporal + Clone,
    {
        ContainJoinTsTe::new(x, y)
    }

    /// Overlap join over `(ValidFrom ↑, ValidFrom ↑)` using the configured
    /// mode — Table 2 state (a).
    pub fn overlap_join<X, Y>(&self, x: X, y: Y) -> TdbResult<OverlapJoin<X, Y>>
    where
        X: TupleStream,
        Y: TupleStream,
        X::Item: Temporal + Clone,
        Y::Item: Temporal + Clone,
    {
        OverlapJoin::new(x, y, self.mode, self.policy)
    }

    /// Overlap semijoin using the configured mode — Table 2 state (b) in
    /// general mode.
    pub fn overlap_semijoin<X, Y>(&self, x: X, y: Y) -> TdbResult<OverlapSemijoin<X, Y>>
    where
        X: TupleStream,
        Y: TupleStream,
        X::Item: Temporal + Clone,
        Y::Item: Temporal + Clone,
    {
        OverlapSemijoin::new(x, y, self.mode, self.policy)
    }

    /// Contain-semijoin under `(ValidFrom ↑, ValidFrom ↑)` — Table 1
    /// state (c).
    pub fn contain_semijoin<X, Y>(&self, x: X, y: Y) -> TdbResult<SweepSemijoin<X, Y>>
    where
        X: TupleStream,
        Y: TupleStream,
        X::Item: Temporal + Clone,
        Y::Item: Temporal + Clone,
    {
        SweepSemijoin::contain(x, y, self.policy)
    }

    /// Contained-semijoin under `(ValidFrom ↑, ValidFrom ↑)` — Table 1
    /// state (c).
    pub fn contained_semijoin<X, Y>(&self, x: X, y: Y) -> TdbResult<SweepSemijoin<X, Y>>
    where
        X: TupleStream,
        Y: TupleStream,
        X::Item: Temporal + Clone,
        Y::Item: Temporal + Clone,
    {
        SweepSemijoin::contained(x, y, self.policy)
    }

    /// Two-buffer Contain-semijoin (X: `ValidFrom ↑`, Y: `ValidTo ↑`) —
    /// Table 1 state (d).
    pub fn contain_semijoin_stab<X, Y>(&self, x: X, y: Y) -> TdbResult<ContainSemijoinStab<X, Y>>
    where
        X: TupleStream,
        Y: TupleStream,
        X::Item: Temporal + Clone,
        Y::Item: Temporal + Clone,
    {
        ContainSemijoinStab::new(x, y)
    }

    /// Two-buffer Contained-semijoin (X: `ValidTo ↑`, Y: `ValidFrom ↑`) —
    /// Table 1 state (d).
    pub fn contained_semijoin_stab<X, Y>(
        &self,
        x: X,
        y: Y,
    ) -> TdbResult<ContainedSemijoinStab<X, Y>>
    where
        X: TupleStream,
        Y: TupleStream,
        X::Item: Temporal + Clone,
        Y::Item: Temporal + Clone,
    {
        ContainedSemijoinStab::new(x, y)
    }

    /// Single-scan Contain-semijoin(X, X) — Table 3 state (b).
    pub fn contain_self_semijoin<S>(&self, input: S) -> TdbResult<ContainSelfSemijoin<S>>
    where
        S: TupleStream,
        S::Item: Temporal + Clone,
    {
        ContainSelfSemijoin::new(input)
    }

    /// Single-scan Contained-semijoin(X, X) — Table 3 state (a).
    pub fn contained_self_semijoin<S>(&self, input: S) -> TdbResult<ContainedSelfSemijoin<S>>
    where
        S: TupleStream,
        S::Item: Temporal + Clone,
    {
        ContainedSelfSemijoin::new(input)
    }

    /// Before-join: pairs `x` with every later `y`.
    pub fn before_join<X, Y>(&self, x: X, y: Y) -> TdbResult<BeforeJoin<X, Y>>
    where
        X: TupleStream,
        Y: TupleStream,
        X::Item: Temporal + Clone,
        Y::Item: Temporal + Clone,
    {
        BeforeJoin::new(x, y)
    }

    /// Before-semijoin: keeps `x` preceding some `y`.
    pub fn before_semijoin<X, Y>(&self, x: X, y: Y) -> TdbResult<BeforeSemijoin<X>>
    where
        X: TupleStream,
        Y: TupleStream,
        X::Item: Temporal + Clone,
        Y::Item: Temporal,
    {
        BeforeSemijoin::new(x, y)
    }

    /// Nested-loop theta-join — the conventional §3 baseline.
    pub fn nested_loop<X, Y, P>(
        &self,
        x: X,
        y: Y,
        predicate: P,
    ) -> TdbResult<NestedLoopJoin<X, Y, P>>
    where
        X: TupleStream,
        Y: TupleStream,
        X::Item: Temporal + Clone,
        Y::Item: Temporal + Clone,
        P: Fn(&X::Item, &Y::Item) -> bool,
    {
        NestedLoopJoin::new(x, y, predicate)
    }

    /// Buffered (no-GC) join: the degenerate "-" configuration that keeps
    /// every tuple.
    pub fn buffered_join<X, Y, P>(
        &self,
        x: X,
        y: Y,
        predicate: P,
    ) -> TdbResult<BufferedJoin<X, Y, P>>
    where
        X: TupleStream,
        Y: TupleStream,
        X::Item: Temporal + Clone,
        Y::Item: Temporal + Clone,
        P: Fn(&X::Item, &Y::Item) -> bool,
    {
        Ok(BufferedJoin::new(x, y, predicate))
    }
}

impl<X, Y> Instrumented for ContainJoinTsTs<X, Y>
where
    X: TupleStream,
    Y: TupleStream,
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    fn report(&self) -> OpReport {
        let (wx, wy) = self.workspace();
        OpReport::new(self.metrics(), wx.combine_stacked(wy))
    }
}

impl<X, Y> Instrumented for ContainJoinTsTe<X, Y>
where
    X: TupleStream,
    Y: TupleStream,
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    fn report(&self) -> OpReport {
        OpReport::new(self.metrics(), self.workspace())
    }
}

impl<X, Y> Instrumented for OverlapJoin<X, Y>
where
    X: TupleStream,
    Y: TupleStream,
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    fn report(&self) -> OpReport {
        let (wx, wy) = self.workspace();
        OpReport::new(self.metrics(), wx.combine_stacked(wy))
    }
}

impl<X, Y> Instrumented for OverlapSemijoin<X, Y>
where
    X: TupleStream,
    Y: TupleStream,
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    fn report(&self) -> OpReport {
        OpReport::new(self.metrics(), self.workspace())
    }
}

impl<X, Y> Instrumented for SweepSemijoin<X, Y>
where
    X: TupleStream,
    Y: TupleStream,
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    fn report(&self) -> OpReport {
        let (wx, wy) = self.workspace();
        OpReport::new(self.metrics(), wx.combine_stacked(wy))
    }
}

impl<X, Y> Instrumented for ContainSemijoinStab<X, Y>
where
    X: TupleStream,
    Y: TupleStream,
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    fn report(&self) -> OpReport {
        // Table 1 state (d): the workspace is the two input buffers; no
        // state tuples beyond them.
        OpReport::new(self.metrics(), WorkspaceStats::default())
    }
}

impl<X, Y> Instrumented for ContainedSemijoinStab<X, Y>
where
    X: TupleStream,
    Y: TupleStream,
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    fn report(&self) -> OpReport {
        OpReport::new(self.metrics(), WorkspaceStats::default())
    }
}

impl<S> Instrumented for ContainSelfSemijoin<S>
where
    S: TupleStream,
    S::Item: Temporal + Clone,
{
    fn report(&self) -> OpReport {
        OpReport::new(self.metrics(), self.workspace())
    }
}

impl<S> Instrumented for ContainedSelfSemijoin<S>
where
    S: TupleStream,
    S::Item: Temporal + Clone,
{
    fn report(&self) -> OpReport {
        OpReport::new(
            self.metrics(),
            WorkspaceStats::of_resident(self.max_workspace()),
        )
    }
}

impl<S> Instrumented for ContainSelfSemijoinDesc<S>
where
    S: TupleStream,
    S::Item: Temporal + Clone,
{
    fn report(&self) -> OpReport {
        OpReport::new(
            self.metrics(),
            WorkspaceStats::of_resident(self.max_workspace()),
        )
    }
}

impl<X, Y> Instrumented for BeforeJoin<X, Y>
where
    X: TupleStream,
    Y: TupleStream,
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    fn report(&self) -> OpReport {
        OpReport::new(
            self.metrics(),
            WorkspaceStats::of_resident(self.max_workspace()),
        )
    }
}

impl<X> Instrumented for BeforeSemijoin<X>
where
    X: TupleStream,
    X::Item: Temporal + Clone,
{
    fn report(&self) -> OpReport {
        OpReport::new(
            self.metrics(),
            WorkspaceStats::of_resident(self.max_workspace()),
        )
    }
}

impl<X, Y, P> Instrumented for NestedLoopJoin<X, Y, P>
where
    X: TupleStream,
    Y: TupleStream,
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
    P: Fn(&X::Item, &Y::Item) -> bool,
{
    fn report(&self) -> OpReport {
        OpReport::new(
            self.metrics(),
            WorkspaceStats::of_resident(self.max_workspace()),
        )
    }
}

impl<X, Y, P> Instrumented for BufferedJoin<X, Y, P>
where
    X: TupleStream,
    Y: TupleStream,
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
    P: Fn(&X::Item, &Y::Item) -> bool,
{
    fn report(&self) -> OpReport {
        let (wx, wy) = self.workspace();
        OpReport::new(self.metrics(), wx.combine_stacked(wy))
    }
}

impl<X, Y, KX, KY> Instrumented for MergeEquiJoin<X, Y, KX, KY>
where
    X: TupleStream,
    Y: TupleStream,
    X::Item: Clone,
    Y::Item: Clone,
    KX: Fn(&X::Item) -> Value,
    KY: Fn(&Y::Item) -> Value,
{
    fn report(&self) -> OpReport {
        OpReport::new(
            self.metrics(),
            WorkspaceStats::of_resident(self.max_workspace()),
        )
    }
}

impl<X, Y> Instrumented for EventMergeJoin<X, Y>
where
    X: TupleStream,
    Y: TupleStream,
    X::Item: Temporal + Clone,
    Y::Item: Temporal + Clone,
{
    fn report(&self) -> OpReport {
        OpReport::new(
            self.metrics(),
            WorkspaceStats::of_resident(self.max_workspace()),
        )
    }
}

impl<S, K, V> Instrumented for GroupedSum<S, K, V>
where
    S: TupleStream,
    K: Fn(&S::Item) -> Value,
    V: Fn(&S::Item) -> i64,
{
    fn report(&self) -> OpReport {
        OpReport::new(
            self.metrics(),
            WorkspaceStats::of_resident(self.max_workspace()),
        )
    }
}

impl<S: TupleStream<Item = tdb_core::TsTuple>> Instrumented for Coalesce<S> {
    fn report(&self) -> OpReport {
        OpReport::new(
            self.metrics(),
            WorkspaceStats::of_resident(self.max_workspace()),
        )
    }
}

impl<S> Instrumented for Timeslice<S>
where
    S: TupleStream,
    S::Item: Temporal,
{
    fn report(&self) -> OpReport {
        // Pure filter: no state beyond the slice point.
        OpReport::new(self.metrics(), WorkspaceStats::default())
    }
}

/// Build a `Timeslice` through the config surface (kept here rather than on
/// [`OpConfig`] methods above because it takes a time point, not a policy).
pub fn timeslice<S>(input: S, at: TimePoint) -> Timeslice<S>
where
    S: TupleStream,
    S::Item: Temporal,
{
    Timeslice::new(input, at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::from_sorted_vec;
    use tdb_core::{StreamOrder, TsTuple};

    fn iv(s: i64, e: i64) -> TsTuple {
        TsTuple::interval(s, e).unwrap()
    }

    fn ts_asc(v: Vec<TsTuple>) -> crate::stream::VecStream<TsTuple> {
        from_sorted_vec(v, StreamOrder::TS_ASC).unwrap()
    }

    #[test]
    fn report_matches_legacy_accessors() {
        let xs = vec![iv(0, 10), iv(2, 8), iv(4, 6)];
        let ys = vec![iv(1, 3), iv(5, 6)];
        let mut op = OpConfig::new()
            .contain_join_ts_ts(ts_asc(xs), ts_asc(ys))
            .unwrap();
        op.collect_vec().unwrap();
        let report = op.report();
        assert_eq!(report.metrics, op.metrics());
        assert_eq!(report.max_workspace(), op.max_workspace());
        assert_eq!(report.metrics.emitted, 3);
    }

    #[test]
    fn overlap_config_controls_mode_and_policy() {
        let xs = vec![iv(0, 10)];
        let ys = vec![iv(3, 8)];
        // Containment matches general overlap but not strict Allen overlap.
        let cfg = OpConfig::new().with_mode(OverlapMode::Strict);
        let mut op = cfg
            .overlap_join(ts_asc(xs.clone()), ts_asc(ys.clone()))
            .unwrap();
        assert!(op.collect_vec().unwrap().is_empty());
        let cfg = cfg
            .with_mode(OverlapMode::General)
            .with_policy(ReadPolicy::Alternate);
        let mut op = cfg.overlap_join(ts_asc(xs), ts_asc(ys)).unwrap();
        assert_eq!(op.collect_vec().unwrap().len(), 1);
        assert_eq!(op.report().metrics.emitted, 1);
    }

    #[test]
    fn stab_semijoin_reports_zero_state() {
        let xs = vec![iv(0, 10)];
        let ys = from_sorted_vec(vec![iv(2, 5)], StreamOrder::TE_ASC).unwrap();
        let mut op = OpConfig::new()
            .contain_semijoin_stab(ts_asc(xs), ys)
            .unwrap();
        assert_eq!(op.collect_vec().unwrap().len(), 1);
        assert_eq!(op.report().max_workspace(), 0);
        assert_eq!(op.report().metrics.emitted, 1);
    }

    #[test]
    fn combine_parallel_sums_counters_and_maxes_workspace() {
        let run = |xs: Vec<TsTuple>, ys: Vec<TsTuple>| {
            let mut op = OpConfig::new()
                .contain_join_ts_ts(ts_asc(xs), ts_asc(ys))
                .unwrap();
            op.collect_vec().unwrap();
            op.report()
        };
        let a = run(vec![iv(0, 10), iv(1, 9)], vec![iv(2, 3)]);
        let b = run(vec![iv(20, 30)], vec![iv(21, 22)]);
        let c = a.combine_parallel(b);
        assert_eq!(c.metrics.emitted, a.metrics.emitted + b.metrics.emitted);
        assert_eq!(
            c.metrics.read_left,
            a.metrics.read_left + b.metrics.read_left
        );
        assert_eq!(
            c.workspace.max_resident,
            a.workspace.max_resident.max(b.workspace.max_resident)
        );
        assert_eq!(c.metrics.passes, 1);
    }

    #[test]
    fn before_and_nested_loop_report_materialized_inner() {
        let xs = vec![iv(0, 2)];
        let ys = vec![iv(5, 6), iv(7, 8)];
        let mut op = OpConfig::new()
            .before_join(
                crate::stream::from_vec(xs.clone()),
                crate::stream::from_vec(ys.clone()),
            )
            .unwrap();
        assert_eq!(op.collect_vec().unwrap().len(), 2);
        assert_eq!(op.report().max_workspace(), 2);
        let mut op = OpConfig::new()
            .nested_loop(
                crate::stream::from_vec(xs),
                crate::stream::from_vec(ys),
                |x, y| x.period.before(&y.period),
            )
            .unwrap();
        assert_eq!(op.collect_vec().unwrap().len(), 2);
        assert_eq!(op.report().max_workspace(), 2);
    }
}
