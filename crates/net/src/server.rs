//! The framed TCP server: many connections, one engine.
//!
//! Threading model: one accept thread (non-blocking, polling the
//! shutdown flag), one reader thread per connection, one writer thread
//! per connection. All request execution happens on the connection's
//! reader thread under the shared engine lock; the writer thread only
//! drains that connection's bounded outbound queue onto the socket.
//!
//! Push routing and backpressure: when a request finalizes rows for
//! subscriptions (ingest or seal advancing the watermark), the executing
//! thread routes each delta frame to the queue of the connection that
//! owns the subscription, using a non-blocking `try_send`. A subscriber
//! that stops draining its socket eventually fills its TCP window, which
//! blocks its writer, which fills the bounded queue — at which point the
//! `try_send` fails and the server disconnects that client and cancels
//! its subscriptions. Ingestion never blocks on a slow subscriber.
//!
//! Graceful shutdown: the flag is only checked between requests, so
//! in-flight queries drain; each connection then receives a
//! [`Frame::Shutdown`] before its socket closes.

use crate::wire::{Frame, FrameReader, ReadOutcome};
use crate::NetConfig;
use bytes::BytesMut;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use tdb::core::TdbResult;
use tdb_engine::{
    ClientState, ConnMetrics, Engine, HealthState, NetMetrics, Response, Stage, StageTimers,
};

/// Per-connection counters, updated lock-free on the read/write hot
/// paths and folded into [`RetiredStats`] when the connection closes.
#[derive(Default)]
struct ConnStats {
    frames_in: AtomicU64,
    bytes_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_out: AtomicU64,
    /// Frames currently sitting in the outbound queue (approximate
    /// upper bound: incremented before enqueue, decremented at dequeue).
    queue_depth: AtomicU64,
    push_highwater: AtomicU64,
}

impl ConnStats {
    /// Account one frame entering the outbound queue.
    fn enqueued(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.push_highwater.fetch_max(depth, Ordering::Relaxed);
    }

    /// Roll back an `enqueued` whose send failed.
    fn enqueue_failed(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Account one frame leaving the queue for the socket.
    fn dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    fn metrics(&self, id: u64) -> ConnMetrics {
        ConnMetrics {
            id,
            frames_in: self.frames_in.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            push_highwater: self.push_highwater.load(Ordering::Relaxed),
        }
    }
}

/// Totals carried over from closed connections, so server-lifetime
/// counters keep counting after their connections are gone.
#[derive(Default)]
struct RetiredStats {
    frames_in: AtomicU64,
    bytes_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_out: AtomicU64,
    push_highwater: AtomicU64,
    slow_subscriber_disconnects: AtomicU64,
}

impl RetiredStats {
    fn absorb(&self, stats: &ConnStats) {
        self.frames_in
            .fetch_add(stats.frames_in.load(Ordering::Relaxed), Ordering::Relaxed);
        self.bytes_in
            .fetch_add(stats.bytes_in.load(Ordering::Relaxed), Ordering::Relaxed);
        self.frames_out
            .fetch_add(stats.frames_out.load(Ordering::Relaxed), Ordering::Relaxed);
        self.bytes_out
            .fetch_add(stats.bytes_out.load(Ordering::Relaxed), Ordering::Relaxed);
        self.push_highwater.fetch_max(
            stats.push_highwater.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }
}

/// Counts bytes off the socket before the frame reader sees them.
struct CountingReader {
    inner: TcpStream,
    stats: Arc<ConnStats>,
}

impl Read for CountingReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(out)?;
        self.stats.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

struct Conn {
    queue: SyncSender<Frame>,
    stream: TcpStream,
    stats: Arc<ConnStats>,
}

impl Conn {
    /// Non-blocking enqueue with queue-depth accounting. `false` means
    /// the queue was full or the writer is gone.
    fn try_push(&self, frame: Frame) -> bool {
        self.stats.enqueued();
        if self.queue.try_send(frame).is_ok() {
            true
        } else {
            self.stats.enqueue_failed();
            false
        }
    }
}

struct Shared {
    engine: Mutex<Engine>,
    conns: Mutex<HashMap<u64, Conn>>,
    /// subscription id → owning connection id.
    subs: Mutex<HashMap<u64, u64>>,
    shutdown: AtomicBool,
    config: NetConfig,
    retired: RetiredStats,
    /// Engine stage histograms, cloned here so writer threads can time
    /// `render` (reply encode) and `net_write` (socket flush) without
    /// taking the engine lock.
    stage_timers: StageTimers,
}

impl Shared {
    /// Drop a connection: close its socket (unblocking its threads),
    /// forget it, and cancel every subscription it owned so the live
    /// engine stops evaluating for a consumer that is gone.
    fn disconnect(&self, conn_id: u64) {
        if let Some(conn) = self.conns.lock().remove(&conn_id) {
            let _ = conn.stream.shutdown(Shutdown::Both);
            self.retired.absorb(&conn.stats);
        }
        let orphaned: Vec<u64> = {
            let mut subs = self.subs.lock();
            let ids: Vec<u64> = subs
                .iter()
                .filter(|(_, owner)| **owner == conn_id)
                .map(|(id, _)| *id)
                .collect();
            for id in &ids {
                subs.remove(id);
            }
            ids
        };
        if !orphaned.is_empty() {
            let mut engine = self.engine.lock();
            for id in orphaned {
                let _ = engine.cancel_subscription(id as usize);
            }
        }
    }

    /// Route freshly-finalized deltas to their subscribers. Never
    /// blocks: a full queue means the subscriber has fallen behind its
    /// bound, and it is disconnected rather than allowed to stall the
    /// ingesting client.
    fn route_deltas(&self, response: &mut Response) {
        let deltas = response.take_deltas();
        if deltas.is_empty() {
            return;
        }
        let mut overflowed: Vec<u64> = Vec::new();
        for delta in deltas {
            let Some(owner) = self.subs.lock().get(&delta.subscription).copied() else {
                continue;
            };
            let conns = self.conns.lock();
            let Some(conn) = conns.get(&owner) else {
                continue;
            };
            if !conn.try_push(Frame::Push(delta)) {
                overflowed.push(owner);
            }
        }
        for conn_id in overflowed {
            self.retired
                .slow_subscriber_disconnects
                .fetch_add(1, Ordering::Relaxed);
            self.disconnect(conn_id);
        }
    }

    /// Snapshot the network counters: retired totals plus every open
    /// connection, in id order.
    fn net_metrics(&self) -> NetMetrics {
        let conns = self.conns.lock();
        let mut per_conn: Vec<ConnMetrics> = conns
            .iter()
            .map(|(id, conn)| conn.stats.metrics(*id))
            .collect();
        drop(conns);
        per_conn.sort_by_key(|c| c.id);
        let mut out = NetMetrics {
            connections: per_conn.len() as u64,
            frames_in: self.retired.frames_in.load(Ordering::Relaxed),
            bytes_in: self.retired.bytes_in.load(Ordering::Relaxed),
            frames_out: self.retired.frames_out.load(Ordering::Relaxed),
            bytes_out: self.retired.bytes_out.load(Ordering::Relaxed),
            push_queue_highwater: self.retired.push_highwater.load(Ordering::Relaxed),
            slow_subscriber_disconnects: self
                .retired
                .slow_subscriber_disconnects
                .load(Ordering::Relaxed),
            conns: Vec::new(),
        };
        for c in &per_conn {
            out.frames_in += c.frames_in;
            out.bytes_in += c.bytes_in;
            out.frames_out += c.frames_out;
            out.bytes_out += c.bytes_out;
            out.push_queue_highwater = out.push_queue_highwater.max(c.push_highwater);
        }
        out.conns = per_conn;
        out
    }
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] leaves the server running detached.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting, drain in-flight requests, notify clients with a
    /// shutdown frame, and join the accept loop.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// A handle that renders the whole process's metrics — engine
    /// counters, live telemetry, network counters — as Prometheus text.
    /// Pass its `render` to an HTTP listener (`tdb serve --metrics`).
    pub fn metrics_source(&self) -> MetricsSource {
        MetricsSource {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// Renders the served engine's metrics registry with the network
/// gauges refreshed, for scraping. Cheap to clone; outlives the
/// [`ServerHandle`] it came from.
#[derive(Clone)]
pub struct MetricsSource {
    shared: Arc<Shared>,
}

impl MetricsSource {
    /// One Prometheus text-exposition page covering engine, live, and
    /// network metric families.
    pub fn render(&self) -> String {
        let net = self.shared.net_metrics();
        let engine = self.shared.engine.lock();
        let reg = engine.metrics_registry();
        let set = |name: &str, help: &str, v: u64| {
            reg.gauge(name, help).set(v as f64);
        };
        set("tdb_net_connections", "Open connections.", net.connections);
        set("tdb_net_frames_in", "Frames received.", net.frames_in);
        set("tdb_net_bytes_in", "Bytes received.", net.bytes_in);
        set("tdb_net_frames_out", "Frames written.", net.frames_out);
        set("tdb_net_bytes_out", "Bytes written.", net.bytes_out);
        set(
            "tdb_net_push_queue_highwater",
            "Largest outbound queue depth any connection reached.",
            net.push_queue_highwater,
        );
        set(
            "tdb_net_slow_subscriber_disconnects",
            "Connections dropped because their push queue overflowed.",
            net.slow_subscriber_disconnects,
        );
        engine.prometheus()
    }

    /// The `/healthz` verdict for this process: `false` (HTTP 503) only
    /// when an SLO objective burns over both windows — a degraded server
    /// still answers probes OK so routers shed load gradually, guided by
    /// the burn-rate gauges, rather than all at once.
    pub fn health(&self) -> (bool, String) {
        let (state, body) = self.shared.engine.lock().health();
        (state != HealthState::Critical, body)
    }
}

/// Open the catalog at `dir` and serve it on `addr` (e.g.
/// `127.0.0.1:0`). Returns once the listener is bound.
pub fn serve(
    dir: impl AsRef<std::path::Path>,
    addr: &str,
    config: NetConfig,
) -> TdbResult<ServerHandle> {
    let engine = if config.durable {
        Engine::open_durable(dir, tdb::wal::FlushPolicy::default())?
    } else {
        Engine::open(dir)?
    };
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stage_timers = engine.stage_timers();
    let shared = Arc::new(Shared {
        engine: Mutex::new(engine),
        conns: Mutex::new(HashMap::new()),
        subs: Mutex::new(HashMap::new()),
        shutdown: AtomicBool::new(false),
        config,
        retired: RetiredStats::default(),
        stage_timers,
    });
    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let next_id = AtomicU64::new(0);
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_id = next_id.fetch_add(1, Ordering::SeqCst);
                let shared = Arc::clone(shared);
                workers.push(std::thread::spawn(move || {
                    serve_conn(conn_id, stream, &shared);
                    shared.disconnect(conn_id);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    // Drain: notify every connection, close its socket, join workers.
    let conn_ids: Vec<u64> = shared.conns.lock().keys().copied().collect();
    for conn_id in conn_ids {
        if let Some(conn) = shared.conns.lock().get(&conn_id) {
            conn.try_push(Frame::Shutdown);
        }
        // Give the writer a moment to flush the shutdown frame before
        // the socket closes under it.
        std::thread::sleep(Duration::from_millis(20));
        shared.disconnect(conn_id);
    }
    for w in workers {
        let _ = w.join();
    }
}

fn serve_conn(conn_id: u64, stream: TcpStream, shared: &Arc<Shared>) {
    // Short read timeouts let this thread notice the shutdown flag
    // between frames without dropping partial input.
    if stream
        .set_read_timeout(Some(Duration::from_millis(shared.config.poll_ms)))
        .is_err()
    {
        return;
    }
    let (Ok(write_half), Ok(conn_half)) = (stream.try_clone(), stream.try_clone()) else {
        return;
    };
    // Bound the writer so joining it below cannot hang on a peer that
    // stopped reading: a stalled write errors out instead of blocking.
    let _ = write_half.set_write_timeout(Some(Duration::from_secs(5)));
    let stats = Arc::new(ConnStats::default());
    let (queue, outbound) = sync_channel::<Frame>(shared.config.push_queue);
    let writer_stats = Arc::clone(&stats);
    let writer_timers = shared.stage_timers.clone();
    let writer = std::thread::spawn(move || {
        writer_loop(write_half, &outbound, &writer_stats, &writer_timers)
    });
    shared.conns.lock().insert(
        conn_id,
        Conn {
            queue: queue.clone(),
            stream: conn_half,
            stats: Arc::clone(&stats),
        },
    );

    let mut read_half = CountingReader {
        inner: stream,
        stats: Arc::clone(&stats),
    };
    let mut reader = FrameReader::new();
    let mut ctx = ClientState::default();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let frame = match reader.read(&mut read_half) {
            Ok(ReadOutcome::Frame(f)) => f,
            Ok(ReadOutcome::Idle) => continue,
            Ok(ReadOutcome::Eof) | Err(_) => break,
        };
        stats.frames_in.fetch_add(1, Ordering::Relaxed);
        let reply = match frame {
            Frame::Bye => break,
            Frame::Input(text) => {
                let mut resp = shared.engine.lock().execute(&mut ctx, &text);
                if let Response::Goodbye = resp {
                    // `\quit` over the wire behaves like Bye after the
                    // reply is delivered.
                    stats.enqueued();
                    let frame = Frame::Reply {
                        query_id: 0,
                        response: Box::new(resp),
                    };
                    if queue.send(frame).is_err() {
                        stats.enqueue_failed();
                    }
                    break;
                }
                if let Response::Subscribed(ref sub) = resp {
                    shared.subs.lock().insert(sub.id, conn_id);
                }
                shared.route_deltas(&mut resp);
                resp
            }
            Frame::Ingest { relation, lines } => {
                let mut resp = shared.engine.lock().ingest_text(&relation, &lines);
                shared.route_deltas(&mut resp);
                resp
            }
            Frame::Stats => {
                // Engine snapshot first (engine lock released at the
                // `;`), then the network counters merged in.
                let mut report = shared.engine.lock().stats_report();
                report.net = Some(shared.net_metrics());
                Response::Stats(report)
            }
            // Server-direction frames from a client are a protocol
            // violation; drop the connection.
            Frame::Reply { .. } | Frame::ReplyChunk { .. } | Frame::Push(_) | Frame::Shutdown => {
                break
            }
        };
        // Replies block (bounded by queue depth + socket buffer) — a
        // client slow to read its *own* replies only stalls itself.
        if !enqueue_reply(&queue, &stats, reply) {
            break;
        }
    }
    // Retire from the routing table first: the map holds a sender
    // clone, so only after removing it does dropping the local queue
    // disconnect the channel. The writer then drains what is already
    // enqueued (the Goodbye reply of a `\quit`, pending pushes) and
    // exits instead of blocking forever on a sender nothing will use
    // again; only then is the socket closed. The write timeout above
    // bounds the join, and a disconnect() from another thread
    // (slow-subscriber overflow, server drain) still unblocks a
    // mid-write writer by shutting the socket under it. The caller's
    // disconnect() cancels this connection's subscriptions.
    if let Some(conn) = shared.conns.lock().remove(&conn_id) {
        shared.retired.absorb(&conn.stats);
    }
    drop(queue);
    let _ = writer.join();
    let _ = read_half.inner.shutdown(Shutdown::Both);
}

/// Soft per-frame byte budget for streamed result chunks — far enough
/// under [`crate::wire::MAX_FRAME`] that encoding overhead and wide rows
/// never push a single chunk near the cap.
const CHUNK_BYTES: u64 = 4 << 20;

/// Enqueue one frame with queue-depth accounting; `false` means the
/// writer is gone.
fn enqueue(queue: &SyncSender<Frame>, stats: &ConnStats, frame: Frame) -> bool {
    stats.enqueued();
    if queue.send(frame).is_err() {
        stats.enqueue_failed();
        return false;
    }
    true
}

/// Enqueue a reply, spilling a large query result into a
/// `Response::QueryStream` header followed by [`Frame::ReplyChunk`]
/// frames. The rows are *moved* out of the report and re-sliced by byte
/// budget, so a result bigger than the frame cap crosses the wire
/// without any single frame approaching it. Small replies go out intact.
fn enqueue_reply(queue: &SyncSender<Frame>, stats: &ConnStats, reply: Response) -> bool {
    let estimate =
        |rows: &[tdb::core::Row]| -> u64 { rows.iter().map(tdb::stream::row_bytes).sum() };
    // The correlation id travels on every frame of the reply, so a
    // client can pair its RTT sample with the server-side trace.
    let query_id = match &reply {
        Response::Query(q) | Response::QueryStream(q) => q.query_id,
        _ => 0,
    };
    match reply {
        Response::Query(mut q) if estimate(&q.rows.rows) > CHUNK_BYTES => {
            let rows = std::mem::take(&mut q.rows.rows);
            if !enqueue(
                queue,
                stats,
                Frame::Reply {
                    query_id,
                    response: Box::new(Response::QueryStream(q)),
                },
            ) {
                return false;
            }
            let mut seq: u32 = 0;
            let mut chunk: Vec<tdb::core::Row> = Vec::new();
            let mut budget: u64 = 0;
            let mut it = rows.into_iter().peekable();
            while let Some(row) = it.next() {
                budget += tdb::stream::row_bytes(&row);
                chunk.push(row);
                let last = it.peek().is_none();
                if budget >= CHUNK_BYTES || last {
                    let frame = Frame::ReplyChunk {
                        query_id,
                        seq,
                        last,
                        rows: std::mem::take(&mut chunk),
                    };
                    if !enqueue(queue, stats, frame) {
                        return false;
                    }
                    seq += 1;
                    budget = 0;
                }
            }
            true
        }
        other => enqueue(
            queue,
            stats,
            Frame::Reply {
                query_id,
                response: Box::new(other),
            },
        ),
    }
}

fn writer_loop(
    mut stream: TcpStream,
    outbound: &Receiver<Frame>,
    stats: &ConnStats,
    timers: &StageTimers,
) {
    while let Ok(frame) = outbound.recv() {
        stats.dequeued();
        let last = matches!(frame, Frame::Shutdown);
        let t = std::time::Instant::now();
        let mut buf = BytesMut::new();
        frame.encode(&mut buf);
        timers.observe(Stage::Render, t.elapsed().as_micros() as u64);
        let t = std::time::Instant::now();
        if stream.write_all(&buf).is_err() {
            break;
        }
        timers.observe(Stage::NetWrite, t.elapsed().as_micros() as u64);
        stats.frames_out.fetch_add(1, Ordering::Relaxed);
        stats
            .bytes_out
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        if last {
            break;
        }
    }
}
