//! The framed TCP server: many connections, one engine.
//!
//! Threading model: one accept thread (non-blocking, polling the
//! shutdown flag), one reader thread per connection, one writer thread
//! per connection. All request execution happens on the connection's
//! reader thread under the shared engine lock; the writer thread only
//! drains that connection's bounded outbound queue onto the socket.
//!
//! Push routing and backpressure: when a request finalizes rows for
//! subscriptions (ingest or seal advancing the watermark), the executing
//! thread routes each delta frame to the queue of the connection that
//! owns the subscription, using a non-blocking `try_send`. A subscriber
//! that stops draining its socket eventually fills its TCP window, which
//! blocks its writer, which fills the bounded queue — at which point the
//! `try_send` fails and the server disconnects that client and cancels
//! its subscriptions. Ingestion never blocks on a slow subscriber.
//!
//! Graceful shutdown: the flag is only checked between requests, so
//! in-flight queries drain; each connection then receives a
//! [`Frame::Shutdown`] before its socket closes.

use crate::wire::{Frame, FrameReader, ReadOutcome};
use crate::NetConfig;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use tdb::core::TdbResult;
use tdb_engine::{ClientState, Engine, Response};

struct Conn {
    queue: SyncSender<Frame>,
    stream: TcpStream,
}

struct Shared {
    engine: Mutex<Engine>,
    conns: Mutex<HashMap<u64, Conn>>,
    /// subscription id → owning connection id.
    subs: Mutex<HashMap<u64, u64>>,
    shutdown: AtomicBool,
    config: NetConfig,
}

impl Shared {
    /// Drop a connection: close its socket (unblocking its threads),
    /// forget it, and cancel every subscription it owned so the live
    /// engine stops evaluating for a consumer that is gone.
    fn disconnect(&self, conn_id: u64) {
        if let Some(conn) = self.conns.lock().remove(&conn_id) {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        let orphaned: Vec<u64> = {
            let mut subs = self.subs.lock();
            let ids: Vec<u64> = subs
                .iter()
                .filter(|(_, owner)| **owner == conn_id)
                .map(|(id, _)| *id)
                .collect();
            for id in &ids {
                subs.remove(id);
            }
            ids
        };
        if !orphaned.is_empty() {
            let mut engine = self.engine.lock();
            for id in orphaned {
                let _ = engine.cancel_subscription(id as usize);
            }
        }
    }

    /// Route freshly-finalized deltas to their subscribers. Never
    /// blocks: a full queue means the subscriber has fallen behind its
    /// bound, and it is disconnected rather than allowed to stall the
    /// ingesting client.
    fn route_deltas(&self, response: &mut Response) {
        let deltas = response.take_deltas();
        if deltas.is_empty() {
            return;
        }
        let mut overflowed: Vec<u64> = Vec::new();
        for delta in deltas {
            let Some(owner) = self.subs.lock().get(&delta.subscription).copied() else {
                continue;
            };
            let conns = self.conns.lock();
            let Some(conn) = conns.get(&owner) else {
                continue;
            };
            match conn.queue.try_send(Frame::Push(delta)) {
                Ok(()) => {}
                Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                    overflowed.push(owner);
                }
            }
        }
        for conn_id in overflowed {
            self.disconnect(conn_id);
        }
    }
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] leaves the server running detached.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting, drain in-flight requests, notify clients with a
    /// shutdown frame, and join the accept loop.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Open the catalog at `dir` and serve it on `addr` (e.g.
/// `127.0.0.1:0`). Returns once the listener is bound.
pub fn serve(
    dir: impl AsRef<std::path::Path>,
    addr: &str,
    config: NetConfig,
) -> TdbResult<ServerHandle> {
    let engine = Engine::open(dir)?;
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        engine: Mutex::new(engine),
        conns: Mutex::new(HashMap::new()),
        subs: Mutex::new(HashMap::new()),
        shutdown: AtomicBool::new(false),
        config,
    });
    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let next_id = AtomicU64::new(0);
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_id = next_id.fetch_add(1, Ordering::SeqCst);
                let shared = Arc::clone(shared);
                workers.push(std::thread::spawn(move || {
                    serve_conn(conn_id, stream, &shared);
                    shared.disconnect(conn_id);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    // Drain: notify every connection, close its socket, join workers.
    let conn_ids: Vec<u64> = shared.conns.lock().keys().copied().collect();
    for conn_id in conn_ids {
        if let Some(conn) = shared.conns.lock().get(&conn_id) {
            let _ = conn.queue.try_send(Frame::Shutdown);
        }
        // Give the writer a moment to flush the shutdown frame before
        // the socket closes under it.
        std::thread::sleep(Duration::from_millis(20));
        shared.disconnect(conn_id);
    }
    for w in workers {
        let _ = w.join();
    }
}

fn serve_conn(conn_id: u64, stream: TcpStream, shared: &Arc<Shared>) {
    // Short read timeouts let this thread notice the shutdown flag
    // between frames without dropping partial input.
    if stream
        .set_read_timeout(Some(Duration::from_millis(shared.config.poll_ms)))
        .is_err()
    {
        return;
    }
    let (Ok(write_half), Ok(conn_half)) = (stream.try_clone(), stream.try_clone()) else {
        return;
    };
    // Bound the writer so joining it below cannot hang on a peer that
    // stopped reading: a stalled write errors out instead of blocking.
    let _ = write_half.set_write_timeout(Some(Duration::from_secs(5)));
    let (queue, outbound) = sync_channel::<Frame>(shared.config.push_queue);
    let writer = std::thread::spawn(move || writer_loop(write_half, &outbound));
    shared.conns.lock().insert(
        conn_id,
        Conn {
            queue: queue.clone(),
            stream: conn_half,
        },
    );

    let mut read_half = stream;
    let mut reader = FrameReader::new();
    let mut ctx = ClientState::default();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let frame = match reader.read(&mut read_half) {
            Ok(ReadOutcome::Frame(f)) => f,
            Ok(ReadOutcome::Idle) => continue,
            Ok(ReadOutcome::Eof) | Err(_) => break,
        };
        let reply = match frame {
            Frame::Bye => break,
            Frame::Input(text) => {
                let mut resp = shared.engine.lock().execute(&mut ctx, &text);
                if let Response::Goodbye = resp {
                    // `\quit` over the wire behaves like Bye after the
                    // reply is delivered.
                    let _ = queue.send(Frame::Reply(resp));
                    break;
                }
                if let Response::Subscribed(ref sub) = resp {
                    shared.subs.lock().insert(sub.id, conn_id);
                }
                shared.route_deltas(&mut resp);
                resp
            }
            Frame::Ingest { relation, lines } => {
                let mut resp = shared.engine.lock().ingest_text(&relation, &lines);
                shared.route_deltas(&mut resp);
                resp
            }
            // Server-direction frames from a client are a protocol
            // violation; drop the connection.
            Frame::Reply(_) | Frame::Push(_) | Frame::Shutdown => break,
        };
        // Replies block (bounded by queue depth + socket buffer) — a
        // client slow to read its *own* replies only stalls itself.
        if queue.send(Frame::Reply(reply)).is_err() {
            break;
        }
    }
    // Dropping the queue lets the writer drain what is already enqueued
    // (the Goodbye reply of a `\quit`, pending pushes) and exit; only
    // then is the socket closed. The write timeout above bounds the
    // join, and a disconnect() from another thread (slow-subscriber
    // overflow, server drain) still unblocks a mid-write writer by
    // shutting the socket under it.
    drop(queue);
    let _ = writer.join();
    let _ = read_half.shutdown(Shutdown::Both);
}

fn writer_loop(mut stream: TcpStream, outbound: &Receiver<Frame>) {
    while let Ok(frame) = outbound.recv() {
        let last = matches!(frame, Frame::Shutdown);
        if frame.write_to(&mut stream).is_err() {
            break;
        }
        if last {
            break;
        }
    }
}
