//! Frame layout and incremental framing.
//!
//! Every message on the wire is one frame:
//!
//! ```text
//! [u32 LE payload length][u8 version = 1][u8 kind][body …]
//! ```
//!
//! The length counts everything after itself (version + kind + body), so
//! a reader can skip frames it cannot decode. Client→server kinds sit in
//! `1..=15`, server→client kinds in `16..=31`; the body of each kind is
//! encoded with the same [`Codec`] conventions the storage layer uses
//! (little-endian, `u32`-prefixed strings, defensive decode to
//! [`TdbError::Corrupt`]).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};
use tdb::core::{TdbError, TdbResult};
use tdb::storage::Codec;
use tdb_engine::{DeltaFrame, Response};

/// Wire protocol version stamped into every frame. A server or client
/// that sees a different version rejects the frame as corrupt rather
/// than guessing at the body layout. Version 2 added the `query_id`
/// correlation field to [`Frame::Reply`] and [`Frame::ReplyChunk`].
pub const PROTOCOL_VERSION: u8 = 2;

/// Hard ceiling on a frame's declared payload length. A corrupt or
/// hostile length prefix fails fast instead of driving a giant
/// allocation.
pub const MAX_FRAME: usize = 64 << 20;

const KIND_INPUT: u8 = 1;
const KIND_INGEST: u8 = 2;
const KIND_BYE: u8 = 3;
const KIND_STATS: u8 = 4;
const KIND_REPLY: u8 = 16;
const KIND_PUSH: u8 = 17;
const KIND_SHUTDOWN: u8 = 18;
const KIND_REPLY_CHUNK: u8 = 19;

/// One protocol message, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client→server: one complete shell input (`\command` or query
    /// text). Answered by exactly one [`Frame::Reply`].
    Input(String),
    /// Client→server: live-append arrival lines into a relation. The
    /// client resolves files and stdin locally; only text crosses the
    /// wire. Answered by exactly one [`Frame::Reply`].
    Ingest {
        /// Target relation (auto-registered on first ingest).
        relation: String,
        /// Arrival lines, `<ts> <te> [id [seq]]` each.
        lines: String,
    },
    /// Client→server: ask for the observability snapshot, with the
    /// serving layer's network counters merged in. Answered by exactly
    /// one [`Frame::Reply`] carrying `Response::Stats`.
    Stats,
    /// Client→server: orderly goodbye; the server drops the connection
    /// without replying.
    Bye,
    /// Server→client: the response to the client's oldest unanswered
    /// request. Boxed so queued [`Frame::Push`] values don't pay the
    /// largest variant's footprint.
    Reply {
        /// The server-minted id of the query this reply answers (0 for
        /// commands and other non-query replies), so a client RTT
        /// sample, the server's trace, and the slow-query log all name
        /// the same execution.
        query_id: u64,
        /// The response body.
        response: Box<Response>,
    },
    /// Server→client: one chunk of a streamed query result. Follows a
    /// [`Frame::Reply`] carrying `Response::QueryStream` (the header);
    /// chunks arrive in `seq` order and `last` marks the terminator, so a
    /// result of any size crosses the wire without any single frame
    /// approaching [`MAX_FRAME`].
    ReplyChunk {
        /// The id of the query being streamed (see [`Frame::Reply`]).
        query_id: u64,
        /// Chunk ordinal, starting at 0.
        seq: u32,
        /// `true` on the final chunk of the result (which may be empty).
        last: bool,
        /// The rows in this chunk.
        rows: Vec<tdb::prelude::Row>,
    },
    /// Server→client, unsolicited: rows finalized for a subscription
    /// this connection registered, stamped with the epoch and watermark
    /// that closed them.
    Push(DeltaFrame),
    /// Server→client, unsolicited: the server is draining for shutdown;
    /// no further requests will be answered.
    Shutdown,
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Input(_) => KIND_INPUT,
            Frame::Ingest { .. } => KIND_INGEST,
            Frame::Stats => KIND_STATS,
            Frame::Bye => KIND_BYE,
            Frame::Reply { .. } => KIND_REPLY,
            Frame::ReplyChunk { .. } => KIND_REPLY_CHUNK,
            Frame::Push(_) => KIND_PUSH,
            Frame::Shutdown => KIND_SHUTDOWN,
        }
    }

    /// Encode this frame — length prefix included — onto a buffer.
    pub fn encode(&self, buf: &mut BytesMut) {
        let mut body = BytesMut::new();
        body.put_u8(PROTOCOL_VERSION);
        body.put_u8(self.kind());
        match self {
            Frame::Input(text) => put_str(&mut body, text),
            Frame::Ingest { relation, lines } => {
                put_str(&mut body, relation);
                put_str(&mut body, lines);
            }
            Frame::Stats | Frame::Bye | Frame::Shutdown => {}
            Frame::Reply { query_id, response } => {
                body.put_u64_le(*query_id);
                response.encode(&mut body);
            }
            Frame::ReplyChunk {
                query_id,
                seq,
                last,
                rows,
            } => {
                body.put_u64_le(*query_id);
                body.put_u32_le(*seq);
                body.put_u8(u8::from(*last));
                body.put_u32_le(rows.len() as u32);
                for row in rows {
                    row.encode(&mut body);
                }
            }
            Frame::Push(delta) => delta.encode(&mut body),
        }
        buf.put_u32_le(body.len() as u32);
        buf.put_slice(&body);
    }

    /// Decode one frame from its payload (version + kind + body, the
    /// length prefix already consumed).
    pub fn decode_payload(mut payload: Bytes) -> TdbResult<Frame> {
        if payload.remaining() < 2 {
            return Err(TdbError::Corrupt("frame shorter than header".into()));
        }
        let version = payload.get_u8();
        if version != PROTOCOL_VERSION {
            return Err(TdbError::Corrupt(format!(
                "protocol version {version} (this build speaks {PROTOCOL_VERSION})"
            )));
        }
        match payload.get_u8() {
            KIND_INPUT => Ok(Frame::Input(get_str(&mut payload)?)),
            KIND_INGEST => Ok(Frame::Ingest {
                relation: get_str(&mut payload)?,
                lines: get_str(&mut payload)?,
            }),
            KIND_STATS => Ok(Frame::Stats),
            KIND_BYE => Ok(Frame::Bye),
            KIND_REPLY => {
                if payload.remaining() < 8 {
                    return Err(TdbError::Corrupt("truncated reply header".into()));
                }
                let query_id = payload.get_u64_le();
                Ok(Frame::Reply {
                    query_id,
                    response: Box::new(Response::decode(&mut payload)?),
                })
            }
            KIND_REPLY_CHUNK => {
                if payload.remaining() < 17 {
                    return Err(TdbError::Corrupt("truncated reply chunk header".into()));
                }
                let query_id = payload.get_u64_le();
                let seq = payload.get_u32_le();
                let last = payload.get_u8() != 0;
                let n = payload.get_u32_le() as usize;
                // Capacity is clamped so a corrupt count cannot force a
                // huge allocation before per-row decoding fails.
                let mut rows = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    rows.push(tdb::prelude::Row::decode(&mut payload)?);
                }
                Ok(Frame::ReplyChunk {
                    query_id,
                    seq,
                    last,
                    rows,
                })
            }
            KIND_PUSH => Ok(Frame::Push(DeltaFrame::decode(&mut payload)?)),
            KIND_SHUTDOWN => Ok(Frame::Shutdown),
            k => Err(TdbError::Corrupt(format!("unknown frame kind {k}"))),
        }
    }

    /// Encode and write this frame to a stream.
    pub fn write_to(&self, w: &mut impl Write) -> TdbResult<()> {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        w.write_all(&buf)?;
        Ok(())
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> TdbResult<String> {
    if buf.remaining() < 4 {
        return Err(TdbError::Corrupt("truncated string length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(TdbError::Corrupt("truncated string body".into()));
    }
    let raw = buf.split_to(len);
    std::str::from_utf8(&raw)
        .map(str::to_owned)
        .map_err(|e| TdbError::Corrupt(format!("invalid utf-8 string: {e}")))
}

/// What one [`FrameReader::read`] call produced.
// A `ReadOutcome` lives only on the receive path's stack, one at a
// time; boxing frames to slim the enum would buy nothing but a per-frame
// allocation.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete frame.
    Frame(Frame),
    /// The read timed out (or would block) before a full frame arrived;
    /// partial bytes are retained for the next call.
    Idle,
    /// The peer closed the stream.
    Eof,
}

/// Incremental frame reader. Keeps partially-received frames across
/// read timeouts, so a server thread can poll its shutdown flag between
/// reads without ever losing bytes.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// Create an empty reader.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    fn take_frame(&mut self) -> TdbResult<Option<Frame>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME {
            return Err(TdbError::Corrupt(format!(
                "frame length {len} exceeds cap {MAX_FRAME}"
            )));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let payload = Bytes::copy_from_slice(&self.buf[4..4 + len]);
        self.buf.drain(..4 + len);
        Frame::decode_payload(payload).map(Some)
    }

    /// Pull bytes from `r` until a full frame is available, the read
    /// times out, or the stream ends.
    pub fn read(&mut self, r: &mut impl Read) -> TdbResult<ReadOutcome> {
        loop {
            if let Some(frame) = self.take_frame()? {
                return Ok(ReadOutcome::Frame(frame));
            }
            let mut chunk = [0u8; 8192];
            match r.read(&mut chunk) {
                Ok(0) => return Ok(ReadOutcome::Eof),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(ReadOutcome::Idle)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_engine::{ErrorCode, ErrorInfo};

    #[test]
    fn frames_survive_byte_at_a_time_delivery() {
        // Deliver one byte per read: every partial prefix must be Idle.
        struct Trickle<'a>(&'a [u8], usize);
        impl Read for Trickle<'_> {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                out[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let frames = vec![
            Frame::Input("\\tables".into()),
            Frame::Ingest {
                relation: "S".into(),
                lines: "10 20 a\n".into(),
            },
            Frame::Reply {
                query_id: 0,
                response: Box::new(Response::Error(ErrorInfo::new(ErrorCode::Protocol, "nope"))),
            },
            Frame::Stats,
            Frame::Reply {
                query_id: 99,
                response: Box::new(Response::Stats(tdb_engine::StatsReport::default())),
            },
            Frame::ReplyChunk {
                query_id: 99,
                seq: 7,
                last: false,
                rows: vec![tdb::prelude::Row::new(vec![
                    tdb::core::Value::str("chunked"),
                    tdb::core::Value::Int(42),
                ])],
            },
            Frame::ReplyChunk {
                query_id: 99,
                seq: 8,
                last: true,
                rows: Vec::new(),
            },
            Frame::Bye,
            Frame::Shutdown,
        ];
        let mut wire = BytesMut::new();
        for f in &frames {
            f.encode(&mut wire);
        }
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        let mut src = Trickle(&wire, 0);
        loop {
            match reader.read(&mut src).unwrap() {
                ReadOutcome::Frame(f) => decoded.push(f),
                ReadOutcome::Idle => unreachable!("trickle source never blocks"),
                ReadOutcome::Eof => break,
            }
        }
        assert_eq!(decoded, frames);
    }

    #[test]
    fn wrong_version_and_oversized_frames_are_corrupt() {
        let mut payload = BytesMut::new();
        payload.put_u8(9);
        payload.put_u8(KIND_BYE);
        let err = Frame::decode_payload(payload.freeze()).unwrap_err();
        assert!(matches!(err, TdbError::Corrupt(_)), "{err}");

        let mut reader = FrameReader::new();
        reader.buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = reader.take_frame().unwrap_err();
        assert!(matches!(err, TdbError::Corrupt(_)), "{err}");
    }
}
