//! # tdb-net — a framed TCP front end for the engine
//!
//! Serves one shared [`Engine`](tdb_engine::Engine) to many concurrent
//! clients over a length-prefixed binary protocol:
//!
//! ```text
//! [u32 LE length][u8 version][u8 kind][body]
//! ```
//!
//! Clients send complete inputs ([`wire::Frame::Input`]) or arrival
//! batches ([`wire::Frame::Ingest`]); each request is answered by
//! exactly one [`wire::Frame::Reply`] carrying the engine's typed
//! [`Response`](tdb_engine::Response), encoded with the same
//! [`Codec`](tdb::storage::Codec) conventions the storage layer uses.
//! Subscription deltas registered by a connection are *pushed* to it
//! ([`wire::Frame::Push`]) whenever any client's ingest finalizes rows —
//! two terminals pointed at the same server observe one live catalog.
//!
//! Per-connection planner settings (`\set parallelism`, `\set limit`,
//! `\config`, `\explain`) stay with the connection; the catalog and live
//! subsystem are shared. Slow subscribers get a bounded push queue and
//! are disconnected (their subscriptions cancelled) rather than allowed
//! to stall ingestion. Shutdown drains in-flight requests and sends each
//! client a [`wire::Frame::Shutdown`] notice.

pub mod client;
pub mod server;
pub mod wire;

pub use client::{Client, RttSample, StreamEvent};
pub use server::{serve, MetricsSource, ServerHandle};

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Outbound frame queue depth per connection. A subscriber whose
    /// queue fills (because it stopped reading) is disconnected.
    pub push_queue: usize,
    /// Socket read timeout in milliseconds — the cadence at which
    /// connection threads re-check the shutdown flag.
    pub poll_ms: u64,
    /// Open the engine durably: the catalog manifest is persisted with
    /// fsync-and-rename and live ingestion is write-ahead logged, so an
    /// acknowledged `Ingest` reply means the rows survive a crash.
    pub durable: bool,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            push_queue: 64,
            poll_ms: 25,
            durable: false,
        }
    }
}
