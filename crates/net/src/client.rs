//! Blocking TCP client for the framed protocol.
//!
//! A background reader thread demultiplexes incoming frames into two
//! queues: replies (answers to this client's requests, in order) and
//! pushes (unsolicited subscription deltas). [`Client::request`] is
//! therefore a plain call-and-wait while deltas accumulate on the side,
//! to be drained with [`Client::try_push`] / [`Client::wait_push`].

use crate::wire::{Frame, FrameReader, ReadOutcome};
use std::collections::VecDeque;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::thread::JoinHandle;
use std::time::Duration;
use tdb::core::{Row, TdbError, TdbResult};
use tdb_engine::{DeltaFrame, QueryReport, Response};

/// One query's client-observed round trip, correlated with the server's
/// execution by the id minted there. `rtt_us − server_us` approximates
/// the transport cost (encode + socket + decode + queueing) for that
/// query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RttSample {
    /// The server-minted query id this sample belongs to.
    pub query_id: u64,
    /// Wall-clock microseconds from sending the request to holding the
    /// complete reply (all chunks, for a streamed result).
    pub rtt_us: u64,
    /// The server's own execute-stage wall clock for the same query.
    pub server_us: u64,
}

/// Recent RTT samples retained per client.
const RTT_RING_CAP: usize = 64;

/// One event of a streamed query result, as seen by
/// [`Client::request_with`].
pub enum StreamEvent<'a> {
    /// The stream header arrived: plans, columns, stats and trace, with
    /// `rows.rows` empty. Emitted once, before any rows.
    Header(&'a QueryReport),
    /// One chunk of result rows, in order.
    Rows(Vec<Row>),
}

/// A connection to a `tdb serve` instance.
pub struct Client {
    stream: TcpStream,
    replies: Receiver<(u64, Response)>,
    chunks: Receiver<(u32, bool, Vec<Row>)>,
    pushes: Receiver<DeltaFrame>,
    reader: Option<JoinHandle<()>>,
    rtt: VecDeque<RttSample>,
}

/// Outstanding replies are bounded by the call-and-wait protocol (at
/// most one per in-flight request); the push queue bound is the
/// client-side analogue of the server's per-connection push queue — a
/// client that stops draining deltas eventually stops reading its
/// socket, and the server's slow-subscriber overflow handling takes it
/// from there.
const REPLY_QUEUE_BOUND: usize = 16;
const PUSH_QUEUE_BOUND: usize = 1024;
/// Result chunks in flight between the reader thread and the request
/// call draining them. A small bound suffices: once it fills, the reader
/// thread stalls and TCP backpressure reaches the server.
const CHUNK_QUEUE_BOUND: usize = 16;

fn reader_loop(
    mut stream: TcpStream,
    replies: &SyncSender<(u64, Response)>,
    chunks: &SyncSender<(u32, bool, Vec<Row>)>,
    pushes: &SyncSender<DeltaFrame>,
) {
    let mut reader = FrameReader::new();
    loop {
        match reader.read(&mut stream) {
            Ok(ReadOutcome::Frame(Frame::Reply { query_id, response })) => {
                if replies.send((query_id, *response)).is_err() {
                    break;
                }
            }
            Ok(ReadOutcome::Frame(Frame::ReplyChunk {
                seq, last, rows, ..
            })) => {
                if chunks.send((seq, last, rows)).is_err() {
                    break;
                }
            }
            Ok(ReadOutcome::Frame(Frame::Push(delta))) => {
                let _ = pushes.send(delta);
            }
            // The server is draining; nothing more will arrive.
            Ok(ReadOutcome::Frame(Frame::Shutdown)) => break,
            // Client-direction frames are a server bug; bail out.
            Ok(ReadOutcome::Frame(_)) => break,
            Ok(ReadOutcome::Idle) => {}
            Ok(ReadOutcome::Eof) | Err(_) => break,
        }
    }
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> TdbResult<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        let (reply_tx, replies) = sync_channel(REPLY_QUEUE_BOUND);
        let (chunk_tx, chunks) = sync_channel(CHUNK_QUEUE_BOUND);
        let (push_tx, pushes) = sync_channel(PUSH_QUEUE_BOUND);
        let reader =
            std::thread::spawn(move || reader_loop(read_half, &reply_tx, &chunk_tx, &push_tx));
        Ok(Client {
            stream,
            replies,
            chunks,
            pushes,
            reader: Some(reader),
            rtt: VecDeque::new(),
        })
    }

    fn send(&mut self, frame: &Frame) -> TdbResult<()> {
        frame.write_to(&mut self.stream)
    }

    fn await_reply(&mut self) -> TdbResult<(u64, Response)> {
        self.replies
            .recv_timeout(Duration::from_secs(30))
            .map_err(|e| match e {
                RecvTimeoutError::Timeout => {
                    TdbError::Eval("timed out waiting for server reply".into())
                }
                RecvTimeoutError::Disconnected => {
                    TdbError::Eval("server closed the connection".into())
                }
            })
    }

    /// Retain one RTT sample (queries only — command replies carry id 0).
    fn note_rtt(&mut self, query_id: u64, rtt_us: u64, response: &Response) {
        if query_id == 0 {
            return;
        }
        let server_us = match response {
            Response::Query(q) | Response::QueryStream(q) => q.elapsed_us,
            _ => 0,
        };
        if self.rtt.len() == RTT_RING_CAP {
            self.rtt.pop_front();
        }
        self.rtt.push_back(RttSample {
            query_id,
            rtt_us,
            server_us,
        });
    }

    /// The most recent query round trips, oldest first.
    pub fn rtt_samples(&self) -> Vec<RttSample> {
        self.rtt.iter().copied().collect()
    }

    /// Send one complete input (command or query) and wait for its
    /// typed reply. A streamed result (`Response::QueryStream` plus chunk
    /// frames) is reassembled into a plain `Response::Query`, so callers
    /// see one materialized reply regardless of how it crossed the wire.
    pub fn request(&mut self, text: &str) -> TdbResult<Response> {
        let mut collected: Vec<Row> = Vec::new();
        let resp = self.request_with(text, |ev| {
            if let StreamEvent::Rows(rows) = ev {
                collected.extend(rows);
            }
        })?;
        match resp {
            Response::QueryStream(mut q) => {
                q.rows.rows = collected;
                Ok(Response::Query(q))
            }
            other => Ok(other),
        }
    }

    /// Send one complete input and consume the reply incrementally: for a
    /// streamed result, `on_event` sees the header once and then each row
    /// chunk as it arrives off the socket, and the returned response is
    /// the `Response::QueryStream` header (its `rows.rows` stays empty —
    /// the rows went to `on_event`). Non-streamed replies are returned
    /// unchanged and `on_event` is never called.
    pub fn request_with(
        &mut self,
        text: &str,
        mut on_event: impl FnMut(StreamEvent<'_>),
    ) -> TdbResult<Response> {
        let sent = std::time::Instant::now();
        self.send(&Frame::Input(text.to_string()))?;
        let (query_id, resp) = self.await_reply()?;
        let Response::QueryStream(header) = resp else {
            self.note_rtt(query_id, sent.elapsed().as_micros() as u64, &resp);
            return Ok(resp);
        };
        on_event(StreamEvent::Header(&header));
        let mut expected: u32 = 0;
        loop {
            let (seq, last, rows) = self
                .chunks
                .recv_timeout(Duration::from_secs(30))
                .map_err(|_| TdbError::Eval("result stream interrupted".into()))?;
            if seq != expected {
                return Err(TdbError::Corrupt(format!(
                    "result chunk {seq} arrived out of order (expected {expected})"
                )));
            }
            expected += 1;
            on_event(StreamEvent::Rows(rows));
            if last {
                break;
            }
        }
        let resp = Response::QueryStream(header);
        self.note_rtt(query_id, sent.elapsed().as_micros() as u64, &resp);
        Ok(resp)
    }

    /// Live-append arrival lines into `relation` and wait for the
    /// ingest report.
    pub fn ingest(&mut self, relation: &str, lines: &str) -> TdbResult<Response> {
        self.send(&Frame::Ingest {
            relation: relation.to_string(),
            lines: lines.to_string(),
        })?;
        Ok(self.await_reply()?.1)
    }

    /// Ask for the observability snapshot (engine counters, slow-query
    /// log, live telemetry) with the server's network counters merged in.
    pub fn stats(&mut self) -> TdbResult<Response> {
        self.send(&Frame::Stats)?;
        Ok(self.await_reply()?.1)
    }

    /// Drain one pending subscription delta, if any arrived.
    pub fn try_push(&mut self) -> Option<DeltaFrame> {
        self.pushes.try_recv().ok()
    }

    /// Wait up to `timeout` for the next subscription delta.
    pub fn wait_push(&mut self, timeout: Duration) -> Option<DeltaFrame> {
        self.pushes.recv_timeout(timeout).ok()
    }

    /// True once the server side has gone away (reader thread exited).
    pub fn is_closed(&self) -> bool {
        self.reader.as_ref().is_none_or(|r| r.is_finished())
    }

    /// Orderly goodbye: tell the server, close the socket, join the
    /// reader.
    pub fn close(mut self) {
        let _ = self.send(&Frame::Bye);
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(r) = self.reader.take() {
            let _ = r.join();
        }
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(r) = self.reader.take() {
            let _ = r.join();
        }
    }
}
