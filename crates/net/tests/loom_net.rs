//! Loom models of `tdb-net`'s connection lifecycle protocols
//! (`server.rs`): the writer-teardown ordering that hid a real deadlock
//! until PR 5, and slow-subscriber overflow racing ingestion progress.
//!
//! The server's sockets cannot run under the model, so these models
//! reproduce the exact synchronization skeleton of `serve_conn` /
//! `route_deltas` / `disconnect` with loom primitives: a routing table
//! (`conns`) holding a push-queue sender clone per connection, a
//! per-connection writer thread draining a bounded queue, and readers /
//! ingesters routing deltas through the table with `try_send`.
//!
//! The first pair of tests is the PR 5 regression, both ways:
//! `serve_conn` must retire the connection from the routing table
//! *before* dropping its local sender and joining the writer — the map
//! holds a sender clone, so with the old order the writer's `recv()`
//! never disconnects and the join blocks forever. The fixed order
//! passes exhaustively; the reverted order must be caught by the
//! explorer as a deadlock.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p tdb-net --test
//! loom_net`.
#![cfg(loom)]

use loom::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use loom::sync::{Arc, Mutex};
use loom::thread;
use std::collections::HashMap;

type Table = Arc<Mutex<HashMap<u64, SyncSender<u32>>>>;

/// The `serve_conn` skeleton: register the queue in the routing table,
/// run a writer draining it, let a router push through the table, then
/// tear down. `fixed_order` selects the shipped teardown (retire from
/// the table, then drop the local sender, then join) or the pre-PR 5
/// order (drop local sender and join while the table still holds a
/// sender clone).
fn writer_teardown(fixed_order: bool) {
    let conns: Table = Arc::new(Mutex::new(HashMap::new()));
    let (queue, outbound) = sync_channel::<u32>(4);
    conns.lock().unwrap().insert(0, queue.clone());

    let writer = thread::spawn(move || {
        let mut delivered = 0u32;
        while outbound.recv().is_ok() {
            delivered += 1;
        }
        delivered
    });

    // Another connection's reader routing a delta to us concurrently
    // with our teardown — the race that makes the removal order matter.
    let router_conns = Arc::clone(&conns);
    let router = thread::spawn(move || {
        let conns = router_conns.lock().unwrap();
        if let Some(tx) = conns.get(&0) {
            let _ = tx.try_send(7);
        }
    });

    if fixed_order {
        // Shipped order (server.rs `serve_conn` tail): leave the
        // routing table first so dropping the local sender disconnects
        // the channel and the writer's recv loop exits.
        let removed = conns.lock().unwrap().remove(&0);
        drop(removed);
        drop(queue);
        let _ = writer.join().unwrap();
    } else {
        // Pre-PR 5 order: the table still holds a sender clone, so the
        // writer never observes a disconnect and this join deadlocks.
        drop(queue);
        let _ = writer.join().unwrap();
        let removed = conns.lock().unwrap().remove(&0);
        drop(removed);
    }
    router.join().unwrap();
}

#[test]
fn writer_teardown_fixed_order_passes_exhaustively() {
    loom::model(|| writer_teardown(true));
    assert!(
        loom::last_iterations() > 1,
        "expected a real schedule space, explored only {}",
        loom::last_iterations()
    );
}

/// Reintroduce the PR 5 bug: the explorer must detect the
/// writer-shutdown deadlock and report the blocked operations.
#[test]
fn writer_teardown_reverted_order_deadlocks() {
    let result = std::panic::catch_unwind(|| loom::model(|| writer_teardown(false)));
    let payload = result.expect_err("the pre-PR 5 teardown order was not caught");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("deadlock"), "expected a deadlock: {msg}");
    assert!(
        msg.contains("blocked at recv"),
        "report should show the writer stuck in recv: {msg}"
    );
    assert!(
        msg.contains("blocked at join"),
        "report should show the reader stuck joining the writer: {msg}"
    );
}

/// The `route_deltas` / `disconnect` protocol: an ingester routes
/// deltas to a bound-1 subscriber queue with `try_send`, never
/// blocking; overflow disconnects the subscriber (retiring it from the
/// routing table and cancelling its subscription) instead of stalling
/// ingestion. Checked under every schedule of ingester vs. writer:
/// ingestion always completes, every delta is either delivered or
/// counted against the overflow disconnect, and a disconnected
/// subscriber loses its routing-table entry and subscription.
#[test]
fn slow_subscriber_overflow_never_stalls_ingestion() {
    loom::model(|| {
        let conns: Table = Arc::new(Mutex::new(HashMap::new()));
        let subs: Arc<Mutex<HashMap<u64, u64>>> = Arc::new(Mutex::new(HashMap::new()));
        let (queue, outbound) = sync_channel::<u32>(1);
        conns.lock().unwrap().insert(0, queue.clone());
        subs.lock().unwrap().insert(1, 0);

        // The subscriber's writer: drains whatever was enqueued before
        // its disconnect. "Slow" is not simulated — the explorer covers
        // every degree of writer starvation by scheduling.
        let writer = thread::spawn(move || {
            let mut delivered = 0u32;
            while outbound.recv().is_ok() {
                delivered += 1;
            }
            delivered
        });

        // The ingesting client's reader thread: `route_deltas` over
        // three deltas, then `disconnect` for any overflowed owner.
        let (ing_conns, ing_subs) = (Arc::clone(&conns), Arc::clone(&subs));
        let ingester = thread::spawn(move || {
            let mut overflowed = 0u32;
            for delta in 0..3u32 {
                let Some(owner) = ing_subs.lock().unwrap().get(&1).copied() else {
                    continue;
                };
                let conns = ing_conns.lock().unwrap();
                let Some(tx) = conns.get(&owner) else {
                    continue;
                };
                match tx.try_send(delta) {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                        overflowed += 1;
                    }
                }
            }
            if overflowed > 0 {
                // `Shared::disconnect`: retire the connection (dropping
                // the table's sender clone), then cancel its
                // subscriptions.
                let removed = ing_conns.lock().unwrap().remove(&0);
                drop(removed);
                ing_subs.lock().unwrap().remove(&1);
            }
            overflowed
        });

        let overflowed = ingester.join().unwrap();
        // The reader's own teardown, in the shipped (fixed) order.
        let still_routed = {
            let removed = conns.lock().unwrap().remove(&0);
            removed.is_some()
        };
        drop(queue);
        let delivered = writer.join().unwrap();

        assert_eq!(
            delivered + overflowed,
            3,
            "a delta was neither delivered nor counted as overflow"
        );
        assert_eq!(
            overflowed > 0,
            !still_routed,
            "overflow and routing-table retirement disagree"
        );
        if overflowed > 0 {
            assert!(
                subs.lock().unwrap().is_empty(),
                "disconnect left the subscription routable"
            );
        }
    });
}
