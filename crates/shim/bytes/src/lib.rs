//! Offline stand-in for the `bytes` crate: `Vec<u8>`-backed buffers with
//! exactly the cursor surface the storage codec uses. `Bytes` is an owned
//! buffer with a read cursor (no refcounted zero-copy slicing — the codec
//! decodes small records, so a copy is fine); `BytesMut` is a growable
//! write buffer.

use std::ops::Deref;

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side cursor operations.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// An immutable byte buffer with a consuming read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Copy a slice into an owned buffer.
    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        Bytes {
            data: src.to_vec(),
            pos: 0,
        }
    }

    /// Unread bytes remaining.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Are all bytes consumed?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split off and return the first `n` unread bytes as a new `Bytes`.
    ///
    /// Panics if fewer than `n` bytes remain (callers bounds-check with
    /// [`Buf::remaining`] first, as the real crate requires too).
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of bounds");
        let out = Bytes {
            data: self.data[self.pos..self.pos + n].to_vec(),
            pos: 0,
        };
        self.pos += n;
        out
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

/// Read-side cursor operations.
pub trait Buf {
    /// Unread bytes remaining.
    fn remaining(&self) -> usize;
    /// Copy out and consume `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    /// Consume a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    /// Consume a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice out of bounds");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u16_le(300);
        w.put_u32_le(70_000);
        w.put_i64_le(-5);
        w.put_u64_le(u64::MAX);
        w.put_slice(b"abc");
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_i64_le(), -5);
        assert_eq!(r.get_u64_le(), u64::MAX);
        let tail = r.split_to(3);
        assert_eq!(&tail[..], b"abc");
        assert!(r.is_empty());
    }

    #[test]
    fn remaining_tracks_cursor() {
        let mut b = Bytes::copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(b.remaining(), 4);
        b.get_u16_le();
        assert_eq!(b.remaining(), 2);
        assert_eq!(&b[..], &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn split_to_checks_bounds() {
        Bytes::copy_from_slice(&[1]).split_to(2);
    }
}
