//! Offline stand-in for the slice of `rand` 0.8 used by this workspace.
//!
//! Provides `rngs::StdRng` (xoshiro256++ seeded via SplitMix64),
//! `SeedableRng::seed_from_u64`, and a `Rng` trait with `gen`, `gen_bool`
//! and `gen_range` over integer and float ranges. Deterministic for a given
//! seed; statistically strong enough for synthetic-workload generation and
//! randomized testing, which is all this workspace asks of it.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types a generator can produce uniformly over their whole domain.
pub trait Standard: Sized {
    fn sample(rng: &mut dyn RngCore) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Types with a uniform sampler over sub-ranges. The single blanket
/// `SampleRange` impl below dispatches through this trait — mirroring real
/// rand's structure so `gen_range(0..3)` infers the element type from the
/// surrounding expression rather than defaulting to `i32`.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform over `[lo, hi)`.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
    /// Uniform over `[lo, hi]`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "empty gen_range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        let (s, e) = self.into_inner();
        assert!(s <= e, "empty gen_range");
        T::sample_inclusive(s, e, rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: $t, hi: $t, rng: &mut dyn RngCore) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive(lo: $t, hi: $t, rng: &mut dyn RngCore) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
        impl Standard for $t {
            fn sample(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_half_open(lo: f64, hi: f64, rng: &mut dyn RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
    fn sample_inclusive(lo: f64, hi: f64, rng: &mut dyn RngCore) -> f64 {
        f64::sample_half_open(lo, hi, rng)
    }
}

impl Standard for f64 {
    fn sample(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniform sample over the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, seeded through SplitMix64 — a deterministic,
    /// fast stand-in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(-60i64..60);
            assert!((-60..60).contains(&v));
            let v = rng.gen_range(1i64..=40);
            assert!((1..=40).contains(&v));
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!(f > 0.0 && f < 1.0);
            let u: usize = rng.gen_range(0usize..7);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "got {frac}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_full_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let _: bool = rng.gen();
        let _: i64 = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
