//! Offline stand-in for the slice of `proptest` this workspace uses.
//!
//! Provides randomized property testing with the same *call surface* —
//! `proptest!`, `prop_assert*!`, `prop_oneof!`, `Strategy`/`prop_map`,
//! `collection::vec`, `any::<T>()`, integer-range strategies and simple
//! char-class regex string strategies — but **no shrinking**: a failing
//! case reports the panic with its case number and seed instead of a
//! minimized counterexample. Cases are generated from a deterministic
//! per-test seed so failures reproduce.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// The generator handed to strategies while a property test runs.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// A deterministic runner for the named test.
    pub fn deterministic(name: &str) -> TestRunner {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Box the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated strategy, as `prop_oneof!` arms produce.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, runner: &mut TestRunner) -> S::Value {
        (**self).generate(runner)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, runner: &mut TestRunner) -> S::Value {
        (**self).generate(runner)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.generate(runner))
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies — what `prop_oneof!` builds.
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from boxed arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, runner: &mut TestRunner) -> V {
        let i = runner.rng().gen_range(0..self.arms.len());
        self.arms[i].generate(runner)
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategies {
    ($(($($s:ident . $idx:tt),+ ))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.generate(runner),)+)
            }
        }
    )+};
}
impl_tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// `any::<T>()` support: uniform over the whole domain.
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    fn arbitrary() -> ArbitraryStrategy<Self>;
}

/// Strategy returned by [`any`].
pub struct ArbitraryStrategy<T> {
    gen: fn(&mut TestRunner) -> T,
}

impl<T> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        (self.gen)(runner)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> ArbitraryStrategy<$t> {
                ArbitraryStrategy { gen: |r| r.rng().gen::<$t>() }
            }
        }
    )*};
}
impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary() -> ArbitraryStrategy<bool> {
        ArbitraryStrategy {
            gen: |r| r.rng().gen::<bool>(),
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary() -> ArbitraryStrategy<f64> {
        ArbitraryStrategy {
            gen: |r| r.rng().gen::<f64>(),
        }
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRunner};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, 0..n)`: a vector of `element` samples.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                runner.rng().gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(runner)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRunner};
    use rand::Rng;

    /// Strategy yielding `None` 25% of the time, as real proptest does by
    /// default.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `of(element)`: an optional `element`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Option<S::Value> {
            if runner.rng().gen_range(0u8..4) == 0 {
                None
            } else {
                Some(self.inner.generate(runner))
            }
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{ArbitraryStrategy, TestRunner};
    use rand::Rng;

    fn gen_bool(r: &mut TestRunner) -> bool {
        r.rng().gen::<bool>()
    }

    /// Either boolean, uniformly.
    pub const ANY: ArbitraryStrategy<bool> = ArbitraryStrategy { gen: gen_bool };
}

/// String strategies: a tiny regex subset (`[class]{m,n}`).
pub mod string {
    use super::{Strategy, TestRunner};
    use rand::Rng;

    /// Error for unsupported patterns.
    #[derive(Debug)]
    pub struct Error(pub String);

    /// Strategy generating strings matching a `[class]{m,n}` pattern.
    pub struct RegexStrategy {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    impl Strategy for RegexStrategy {
        type Value = String;
        fn generate(&self, runner: &mut TestRunner) -> String {
            let n = runner.rng().gen_range(self.min..=self.max);
            (0..n)
                .map(|_| {
                    let i = runner.rng().gen_range(0..self.chars.len());
                    self.chars[i]
                })
                .collect()
        }
    }

    /// Parse the subset `[chars]{m,n}` (ranges like `a-z` plus literals).
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
        let err = |m: &str| Error(format!("unsupported pattern `{pattern}`: {m}"));
        let rest = pattern
            .strip_prefix('[')
            .ok_or_else(|| err("expected leading ["))?;
        let close = rest.find(']').ok_or_else(|| err("missing ]"))?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut chars = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i], class[i + 2]);
                if lo > hi {
                    return Err(err("inverted range"));
                }
                for c in lo..=hi {
                    chars.push(c);
                }
                i += 3;
            } else {
                chars.push(class[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return Err(err("empty class"));
        }
        let quant = &rest[close + 1..];
        let quant = quant
            .strip_prefix('{')
            .and_then(|q| q.strip_suffix('}'))
            .ok_or_else(|| err("expected {m,n} quantifier"))?;
        let (m, n) = quant.split_once(',').ok_or_else(|| err("expected m,n"))?;
        let min: usize = m.trim().parse().map_err(|_| err("bad min"))?;
        let max: usize = n.trim().parse().map_err(|_| err("bad max"))?;
        if min > max {
            return Err(err("min > max"));
        }
        Ok(RegexStrategy { chars, min, max })
    }
}

/// `&str` literals act as regex strategies, as in real proptest.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, runner: &mut TestRunner) -> String {
        string::string_regex(self)
            .unwrap_or_else(|e| panic!("{}", e.0))
            .generate(runner)
    }
}

/// Everything tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
    pub use crate as proptest;
}

/// Assert inside a property (panics — no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($arm) ),+ ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let result = {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut runner);)+
                    ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(move || {
                        $body
                    }))
                };
                if let Err(payload) = result {
                    eprintln!(
                        "proptest shim: property `{}` failed at case {case} of {}",
                        stringify!($name),
                        config.cases,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_vec_strategies_generate_in_bounds() {
        let mut r = crate::TestRunner::deterministic("bounds");
        for _ in 0..200 {
            let v = crate::Strategy::generate(&(-60i64..60), &mut r);
            assert!((-60..60).contains(&v));
            let xs =
                crate::Strategy::generate(&crate::collection::vec(0u8..6, 0..25), &mut r);
            assert!(xs.len() < 25);
            assert!(xs.iter().all(|&x| x < 6));
            let (s, d) = crate::Strategy::generate(&(-50i64..50, 1i64..30), &mut r);
            assert!((-50..50).contains(&s) && (1..30).contains(&d));
        }
    }

    #[test]
    fn string_regex_respects_class_and_length() {
        let mut r = crate::TestRunner::deterministic("regex");
        let strat = crate::string::string_regex("[a-c0-1 ]{2,5}").unwrap();
        for _ in 0..100 {
            let s = crate::Strategy::generate(&strat, &mut r);
            assert!((2..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| "abc01 ".contains(c)), "{s:?}");
        }
        assert!(crate::string::string_regex("no-class").is_err());
    }

    #[test]
    fn oneof_uses_every_arm() {
        let mut r = crate::TestRunner::deterministic("oneof");
        let strat = prop_oneof![Just(1u8), Just(2u8), (3u8..5).prop_map(|x| x)];
        let seen: std::collections::BTreeSet<u8> =
            (0..200).map(|_| crate::Strategy::generate(&strat, &mut r)).collect();
        assert!(seen.contains(&1) && seen.contains(&2) && seen.contains(&3));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn the_macro_runs_and_passes(x in 0i64..100, ys in proptest::collection::vec(any::<bool>(), 0..8)) {
            prop_assert!(x >= 0);
            prop_assert_eq!(ys.len(), ys.len());
        }
    }

    #[test]
    fn failing_property_panics() {
        crate::proptest! {
            #![proptest_config(crate::ProptestConfig::with_cases(4))]
            fn always_fails(x in 0i64..10) {
                crate::prop_assert!(x > 100, "x was {}", x);
            }
        }
        assert!(std::panic::catch_unwind(always_fails).is_err());
    }
}
