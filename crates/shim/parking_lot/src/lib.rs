//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! primitives exposing the poison-free guard API (`lock()` returns the
//! guard directly). A poisoned lock panics, which matches how this
//! workspace uses locking (a panic while holding a lock is already fatal
//! to the test or process).

/// Mutual exclusion wrapping [`std::sync::Mutex`].
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock wrapping [`std::sync::RwLock`].
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
        assert_eq!(l.into_inner(), 7);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
