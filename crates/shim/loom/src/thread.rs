//! Model-aware `std::thread` facade.
//!
//! Inside a model closure, `spawn` creates a scheduler-controlled model
//! thread and `join` is a real scheduling point (enabled only once the
//! target finished — so a join on a thread that can never finish is a
//! detectable deadlock). Outside a model, everything delegates to `std`.

use crate::rt;
use std::sync::{Arc, Mutex as StdMutex};

/// A handle to a spawned thread; mirrors `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        tid: rt::Tid,
        slot: Arc<StdMutex<Option<T>>>,
    },
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its result.
    ///
    /// In a model, a panicking child thread fails the whole model (with
    /// its schedule) rather than surfacing here, so the `Err` arm is
    /// reserved for the std fallback path.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Std(h) => h.join(),
            Inner::Model { tid, slot } => {
                let (rt, me) = rt::current()
                    .expect("loom: JoinHandle::join called outside the model that spawned it");
                let lifecycle = rt.lifecycle_of(tid);
                rt.sync(me, rt::Op::Join { lifecycle });
                let v = match slot.lock() {
                    Ok(mut g) => g.take(),
                    Err(p) => p.into_inner().take(),
                };
                match v {
                    Some(v) => Ok(v),
                    None => Err(Box::new("loom: joined thread produced no result")),
                }
            }
        }
    }
}

/// Spawn a thread; a model thread inside a model closure, a real OS
/// thread otherwise.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::current() {
        Some((rt, _)) => {
            let slot: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
            let slot2 = Arc::clone(&slot);
            let tid = rt.spawn(Box::new(move || {
                let out = f();
                match slot2.lock() {
                    Ok(mut g) => *g = Some(out),
                    Err(p) => *p.into_inner() = Some(out),
                }
            }));
            JoinHandle {
                inner: Inner::Model { tid, slot },
            }
        }
        None => JoinHandle {
            inner: Inner::Std(std::thread::spawn(f)),
        },
    }
}

/// A pure scheduling point: lets the explorer interleave other threads
/// here. Outside a model, `std::thread::yield_now`.
pub fn yield_now() {
    match rt::current() {
        Some((rt, tid)) => {
            rt.sync(tid, rt::Op::Yield);
        }
        None => std::thread::yield_now(),
    }
}
