//! The interleaving explorer: a cooperative scheduler plus a DFS over
//! schedule choices with sleep-set pruning.
//!
//! Every loom primitive (mutex, rwlock, condvar, channel, atomic) calls
//! [`Rt::sync`] at each shared-memory operation. The calling thread
//! *announces* its pending operation and parks; the scheduler — which
//! runs inline on whichever thread reached the decision point — picks
//! exactly one enabled thread to proceed. Because only one thread ever
//! runs between decision points, an execution is fully determined by the
//! sequence of choices, and the explorer can enumerate executions by
//! depth-first search over those choices, replaying the shared prefix.
//!
//! Pruning is the classic sleep-set reduction (Godefroid): once a choice
//! `c` has been explored from a node, siblings explored later carry `c`
//! in their subtree's sleep set for as long as `c`'s pending operation
//! stays independent of the operations actually executed — two
//! operations are independent when they touch different objects, or the
//! same object with both only reading. A sleeping choice is never
//! scheduled, cutting every interleaving that merely commutes two
//! independent steps while still visiting at least one representative of
//! every Mazurkiewicz trace — so no assertion failure or deadlock
//! reachable under some schedule is missed.
//!
//! Bounds: executions are depth-bounded (`max_steps` scheduling
//! decisions per execution — a livelocking spin loop fails fast instead
//! of hanging) and breadth-bounded (`max_iterations` executions). Both
//! are hard errors when exceeded, never silent truncation: a model that
//! blows a bound must be shrunk, not half-checked.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, Once};

/// Logical thread id inside a model (allocation order, main closure = 0).
pub type Tid = usize;
/// Logical object id inside a model (allocation order).
pub type Oid = usize;

/// Panic payload used to unwind model threads when an execution is torn
/// down (failure elsewhere, or a pruned schedule). Caught by the thread
/// entry wrapper; never escapes to user code.
pub(crate) struct AbortToken;

thread_local! {
    static IN_MODEL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

static HOOK: Once = Once::new();

/// Silence the default panic printer for model threads: every model
/// panic is caught and re-reported (with its schedule) from `model()`
/// on the caller's thread, and teardown unwinds would otherwise spam
/// stderr on every pruned execution.
fn install_hook() {
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if IN_MODEL.with(std::cell::Cell::get) {
                return;
            }
            prev(info);
        }));
    });
}

/// How an operation touches its object, for the independence relation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Access {
    Read,
    Write,
}

/// What kind of object an [`Oid`] names (used for diagnostics).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ObjKind {
    Mutex,
    RwLock,
    Condvar,
    Channel,
    Atomic,
    Thread,
}

impl ObjKind {
    fn prefix(self) -> &'static str {
        match self {
            ObjKind::Mutex => "m",
            ObjKind::RwLock => "rw",
            ObjKind::Condvar => "cv",
            ObjKind::Channel => "ch",
            ObjKind::Atomic => "a",
            ObjKind::Thread => "th",
        }
    }
}

/// Scheduler-side state per object.
enum ObjState {
    Mutex {
        held_by: Option<Tid>,
    },
    RwLock {
        readers: usize,
        writer: bool,
    },
    Condvar {
        waiters: Vec<Tid>,
    },
    Channel {
        len: usize,
        cap: usize,
        senders: usize,
        rx_alive: bool,
    },
    Atomic,
    Thread,
}

struct Obj {
    kind: ObjKind,
    state: ObjState,
}

/// A pending operation announced by a thread at a sync point.
#[derive(Clone, Debug)]
pub(crate) enum Op {
    /// A freshly spawned thread, ready to run its body.
    Start,
    /// Explicit `yield_now` — a pure scheduling point.
    Yield,
    /// Atomic load.
    Load(Oid),
    /// Atomic store / read-modify-write.
    Store(Oid),
    /// Acquire a mutex.
    Lock(Oid),
    /// Release a mutex.
    Unlock(Oid),
    /// Acquire a read lock.
    RwRead(Oid),
    /// Release a read lock.
    RwReadUnlock(Oid),
    /// Acquire a write lock.
    RwWrite(Oid),
    /// Release a write lock.
    RwWriteUnlock(Oid),
    /// Atomically release `mutex` and park on `cv`.
    CondWait { cv: Oid, mutex: Oid },
    /// Re-acquire the mutex after a condvar notification (internal: a
    /// parked thread's pending op becomes this).
    Relock { mutex: Oid },
    /// Wake one condvar waiter.
    NotifyOne(Oid),
    /// Wake every condvar waiter.
    NotifyAll(Oid),
    /// Blocking bounded-channel send.
    Send(Oid),
    /// Non-blocking bounded-channel send.
    TrySend(Oid),
    /// Blocking channel receive.
    Recv(Oid),
    /// A sender handle dropped.
    CloseTx(Oid),
    /// The receiver dropped.
    CloseRx(Oid),
    /// Join a thread (operand: the target's lifecycle object id).
    Join { lifecycle: Oid },
    /// Thread body finished (operand: own lifecycle object id).
    Finish { lifecycle: Oid },
}

impl Op {
    /// The operation's footprint: the objects it touches and how. Empty
    /// footprints (`Start`, `Yield`) commute with everything.
    fn footprint(&self) -> Vec<(Oid, Access)> {
        match *self {
            Op::Start | Op::Yield => Vec::new(),
            Op::Load(o) => vec![(o, Access::Read)],
            Op::Store(o)
            | Op::Lock(o)
            | Op::Unlock(o)
            | Op::RwWrite(o)
            | Op::RwWriteUnlock(o)
            | Op::NotifyOne(o)
            | Op::NotifyAll(o)
            | Op::Send(o)
            | Op::TrySend(o)
            | Op::Recv(o)
            | Op::CloseTx(o)
            | Op::CloseRx(o) => vec![(o, Access::Write)],
            Op::RwRead(o) | Op::RwReadUnlock(o) => vec![(o, Access::Read)],
            Op::CondWait { cv, mutex } => vec![(cv, Access::Write), (mutex, Access::Write)],
            Op::Relock { mutex } => vec![(mutex, Access::Write)],
            Op::Join { lifecycle } => vec![(lifecycle, Access::Read)],
            Op::Finish { lifecycle } => vec![(lifecycle, Access::Write)],
        }
    }

    /// Is this a release-style effect that may run during unwinding
    /// (guard/handle drops)? These must never panic in `Drop`.
    fn is_release(&self) -> bool {
        matches!(
            self,
            Op::Unlock(_)
                | Op::RwReadUnlock(_)
                | Op::RwWriteUnlock(_)
                | Op::CloseTx(_)
                | Op::CloseRx(_)
                | Op::NotifyOne(_)
                | Op::NotifyAll(_)
        )
    }
}

/// Are two operations independent (commuting)? Conservative: they must
/// touch disjoint objects, or overlap only in reads.
fn independent(a: &Op, b: &Op) -> bool {
    for (oa, aa) in a.footprint() {
        for (ob, ab) in b.footprint() {
            if oa == ob && (aa == Access::Write || ab == Access::Write) {
                return false;
            }
        }
    }
    true
}

/// The result the scheduler hands back to a thread completing a sync
/// point, for ops whose outcome is decided at schedule time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Outcome {
    /// Proceed normally (lock granted, value available, …).
    Ok,
    /// Channel op observed a closed peer.
    Disconnected,
    /// `try_send` observed a full queue.
    Full,
}

/// Per-thread scheduler state.
struct Th {
    pending: Option<Op>,
    outcome: Outcome,
    /// Set by a notify while parked on a condvar.
    notified: bool,
    finished: bool,
    /// Lifecycle object (join dependency tracking).
    lifecycle: Oid,
}

/// One decision point in the current execution's schedule.
struct Node {
    /// Threads that were enabled here, in tid order.
    enabled: Vec<Tid>,
    /// Pending op of every live thread at this node, for sleep-set
    /// derivation and diagnostics.
    fps: Vec<(Tid, Op)>,
    /// Sleep set: choices whose subtrees are covered by siblings
    /// explored earlier from an ancestor.
    sleep: Vec<Tid>,
    /// Choices fully explored from this node.
    explored: Vec<Tid>,
    /// The choice the current/next execution takes here.
    chosen: Tid,
}

impl Node {
    fn op_of(&self, tid: Tid) -> Option<&Op> {
        self.fps.iter().find(|(t, _)| *t == tid).map(|(_, op)| op)
    }
}

/// Exploration bounds. See [`crate::model_with`].
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Maximum scheduling decisions per execution before the model fails
    /// with a depth-bound diagnostic (catches livelocks).
    pub max_steps: usize,
    /// Maximum executions before the exploration fails as exhausted
    /// (the model is too large — shrink it rather than half-check it).
    pub max_iterations: usize,
}

impl Default for Config {
    fn default() -> Config {
        let env = |k: &str, d: usize| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        Config {
            max_steps: env("TDB_LOOM_MAX_STEPS", 20_000),
            max_iterations: env("TDB_LOOM_MAX_ITERATIONS", 2_000_000),
        }
    }
}

/// The DFS over schedules. Lives across executions of one model.
struct Explorer {
    trace: Vec<Node>,
    /// Decisions taken so far in the current execution.
    pos: usize,
    iterations: usize,
    config: Config,
}

impl Explorer {
    fn new(config: Config) -> Explorer {
        Explorer {
            trace: Vec::new(),
            pos: 0,
            iterations: 0,
            config,
        }
    }

    /// Advance to the next unexplored schedule; `false` when the space
    /// is exhausted.
    fn advance(&mut self) -> bool {
        self.pos = 0;
        while let Some(node) = self.trace.last_mut() {
            node.explored.push(node.chosen);
            let next = node
                .enabled
                .iter()
                .copied()
                .find(|t| !node.explored.contains(t) && !node.sleep.contains(t));
            if let Some(t) = next {
                node.chosen = t;
                return true;
            }
            self.trace.pop();
        }
        false
    }
}

/// Why a scheduling decision could not be made.
enum StepFail {
    DepthBound,
    Pruned,
}

/// Shared mutable scheduler state (always accessed under the lock).
struct RtState {
    threads: Vec<Th>,
    objects: Vec<Obj>,
    active: Option<Tid>,
    abort: bool,
    /// First failure of this execution. The DFS order is deterministic,
    /// so the first failing schedule is too.
    failure: Option<String>,
    live: usize,
    os_handles: Vec<std::thread::JoinHandle<()>>,
    explorer: Explorer,
    done: bool,
}

/// The per-execution runtime: scheduler state plus the (persistent,
/// threaded-through) explorer.
pub(crate) struct Rt {
    state: StdMutex<RtState>,
    cond: StdCondvar,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Rt>, Tid)>> =
        const { std::cell::RefCell::new(None) };
}

/// The calling thread's runtime context, if it is a model thread.
pub(crate) fn current() -> Option<(Arc<Rt>, Tid)> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(ctx: Option<(Arc<Rt>, Tid)>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

impl Rt {
    fn new(explorer: Explorer) -> Rt {
        Rt {
            state: StdMutex::new(RtState {
                threads: Vec::new(),
                objects: Vec::new(),
                active: None,
                abort: false,
                failure: None,
                live: 0,
                os_handles: Vec::new(),
                explorer,
                done: false,
            }),
            cond: StdCondvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RtState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Register a new model object, returning its id.
    pub(crate) fn register(&self, kind: ObjKind) -> Oid {
        let mut st = self.lock();
        let state = match kind {
            ObjKind::Mutex => ObjState::Mutex { held_by: None },
            ObjKind::RwLock => ObjState::RwLock {
                readers: 0,
                writer: false,
            },
            ObjKind::Condvar => ObjState::Condvar {
                waiters: Vec::new(),
            },
            ObjKind::Channel => ObjState::Channel {
                len: 0,
                cap: 0,
                senders: 0,
                rx_alive: true,
            },
            ObjKind::Atomic => ObjState::Atomic,
            ObjKind::Thread => ObjState::Thread,
        };
        st.objects.push(Obj { kind, state });
        st.objects.len() - 1
    }

    /// Initialize a channel object's bound and sender count.
    pub(crate) fn channel_init(&self, oid: Oid, cap: usize) {
        let mut st = self.lock();
        if let ObjState::Channel {
            cap: c, senders, ..
        } = &mut st.objects[oid].state
        {
            *c = cap;
            *senders = 1;
        }
    }

    /// Account a cloned sender handle.
    pub(crate) fn channel_add_sender(&self, oid: Oid) {
        let mut st = self.lock();
        if let ObjState::Channel { senders, .. } = &mut st.objects[oid].state {
            *senders += 1;
        }
    }

    /// Spawn a model thread running `body`. Returns its tid.
    pub(crate) fn spawn(self: &Arc<Rt>, body: Box<dyn FnOnce() + Send>) -> Tid {
        let lifecycle = self.register(ObjKind::Thread);
        let tid = {
            let mut st = self.lock();
            st.threads.push(Th {
                pending: Some(Op::Start),
                outcome: Outcome::Ok,
                notified: false,
                finished: false,
                lifecycle,
            });
            st.live += 1;
            st.threads.len() - 1
        };
        let rt = Arc::clone(self);
        let handle = std::thread::spawn(move || {
            IN_MODEL.with(|f| f.set(true));
            set_ctx(Some((Arc::clone(&rt), tid)));
            // Wait to be scheduled for the Start step, then run. A
            // teardown before Start unwinds via AbortToken like any
            // other blocked thread.
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                rt.wait_turn(tid);
                body();
            }));
            match result {
                Ok(()) => rt.finish(tid, None),
                Err(payload) => {
                    if payload.is::<AbortToken>() {
                        rt.finish_silent(tid);
                    } else {
                        rt.finish(tid, Some(panic_message(payload.as_ref())));
                    }
                }
            }
            set_ctx(None);
        });
        self.lock().os_handles.push(handle);
        tid
    }

    /// The lifecycle object id of `tid` (join dependency).
    pub(crate) fn lifecycle_of(&self, tid: Tid) -> Oid {
        self.lock().threads[tid].lifecycle
    }

    /// Announce `op`, let the scheduler pick, and block until this
    /// thread is scheduled. Returns the op's outcome. During teardown:
    /// release ops apply silently (they run in `Drop` while unwinding);
    /// anything else unwinds with [`AbortToken`].
    pub(crate) fn sync(&self, tid: Tid, op: Op) -> Outcome {
        let mut st = self.lock();
        if st.abort {
            if op.is_release() {
                Self::apply(&mut st, tid, &op);
                return Outcome::Ok;
            }
            drop(st);
            std::panic::panic_any(AbortToken);
        }
        st.threads[tid].pending = Some(op);
        st.active = None;
        self.schedule(&mut st);
        drop(st);
        self.wait_turn(tid);
        self.lock().threads[tid].outcome
    }

    /// Block until `tid` is the active thread. Panics with [`AbortToken`]
    /// if the execution is torn down first.
    fn wait_turn(&self, tid: Tid) {
        let mut st = self.lock();
        loop {
            if st.active == Some(tid) {
                return;
            }
            if st.abort {
                drop(st);
                std::panic::panic_any(AbortToken);
            }
            st = match self.cond.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// Normal thread completion (body returned) or a model failure
    /// (body panicked). Runs the `Finish` sync step so joiners see it,
    /// then retires the thread.
    fn finish(&self, tid: Tid, failure: Option<String>) {
        if let Some(msg) = failure {
            self.fail(tid, &format!("thread t{tid} panicked: {msg}"));
            self.finish_silent(tid);
            return;
        }
        let lifecycle = self.lifecycle_of(tid);
        let mut st = self.lock();
        if st.abort {
            drop(st);
            self.finish_silent(tid);
            return;
        }
        st.threads[tid].pending = Some(Op::Finish { lifecycle });
        st.active = None;
        self.schedule(&mut st);
        // Wait for the Finish step to be scheduled, then retire. If the
        // execution aborts first, retire silently.
        loop {
            if st.abort || st.active == Some(tid) {
                break;
            }
            st = match self.cond.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        st.threads[tid].finished = true;
        st.threads[tid].pending = None;
        st.active = None;
        st.live -= 1;
        if st.live == 0 {
            st.done = true;
            self.cond.notify_all();
        } else if !st.abort {
            self.schedule(&mut st);
        }
    }

    /// Retire a thread during teardown without a scheduling step.
    fn finish_silent(&self, tid: Tid) {
        let mut st = self.lock();
        st.threads[tid].finished = true;
        st.threads[tid].pending = None;
        st.live -= 1;
        if st.live == 0 {
            st.done = true;
        }
        self.cond.notify_all();
    }

    /// Record the execution's failure (first wins) and tear it down.
    pub(crate) fn fail(&self, tid: Tid, msg: &str) {
        let mut st = self.lock();
        if st.failure.is_none() {
            let schedule = Self::schedule_desc(&st);
            st.failure = Some(format!(
                "{msg}\n  failing schedule: {schedule}\n  (reported by t{tid}; notation tN:op, objects numbered in creation order)"
            ));
        }
        st.abort = true;
        self.cond.notify_all();
    }

    /// Human-readable schedule of the current execution. Deterministic:
    /// tids and oids are allocation-ordered, never OS identities.
    fn schedule_desc(st: &RtState) -> String {
        let upto = st.explorer.pos.min(st.explorer.trace.len());
        let steps: Vec<String> = st.explorer.trace[..upto]
            .iter()
            .map(|n| {
                let desc = n
                    .op_of(n.chosen)
                    .map_or_else(|| "?".to_string(), |op| Self::op_desc(st, op));
                format!("t{}:{desc}", n.chosen)
            })
            .collect();
        if steps.is_empty() {
            "(empty)".to_string()
        } else {
            steps.join(" → ")
        }
    }

    fn op_desc(st: &RtState, op: &Op) -> String {
        let name = |o: Oid| format!("{}{o}", st.objects[o].kind.prefix());
        match *op {
            Op::Start => "start".to_string(),
            Op::Yield => "yield".to_string(),
            Op::Load(o) => format!("load({})", name(o)),
            Op::Store(o) => format!("store({})", name(o)),
            Op::Lock(o) => format!("lock({})", name(o)),
            Op::Unlock(o) => format!("unlock({})", name(o)),
            Op::RwRead(o) => format!("read({})", name(o)),
            Op::RwReadUnlock(o) => format!("read_unlock({})", name(o)),
            Op::RwWrite(o) => format!("write({})", name(o)),
            Op::RwWriteUnlock(o) => format!("write_unlock({})", name(o)),
            Op::CondWait { cv, mutex } => format!("wait({}, {})", name(cv), name(mutex)),
            Op::Relock { mutex } => format!("relock({})", name(mutex)),
            Op::NotifyOne(o) => format!("notify_one({})", name(o)),
            Op::NotifyAll(o) => format!("notify_all({})", name(o)),
            Op::Send(o) => format!("send({})", name(o)),
            Op::TrySend(o) => format!("try_send({})", name(o)),
            Op::Recv(o) => format!("recv({})", name(o)),
            Op::CloseTx(o) => format!("close_tx({})", name(o)),
            Op::CloseRx(o) => format!("close_rx({})", name(o)),
            Op::Join { lifecycle } => format!("join({})", name(lifecycle)),
            Op::Finish { .. } => "finish".to_string(),
        }
    }

    /// Is `op` enabled in the current state?
    fn op_enabled(st: &RtState, tid: Tid, op: &Op) -> bool {
        match *op {
            Op::Lock(o) => matches!(st.objects[o].state, ObjState::Mutex { held_by: None }),
            Op::Relock { mutex } => {
                st.threads[tid].notified
                    && matches!(st.objects[mutex].state, ObjState::Mutex { held_by: None })
            }
            Op::RwRead(o) => {
                matches!(st.objects[o].state, ObjState::RwLock { writer: false, .. })
            }
            Op::RwWrite(o) => matches!(
                st.objects[o].state,
                ObjState::RwLock {
                    readers: 0,
                    writer: false
                }
            ),
            Op::Send(o) => match st.objects[o].state {
                ObjState::Channel {
                    len, cap, rx_alive, ..
                } => len < cap || !rx_alive,
                _ => false,
            },
            Op::Recv(o) => match st.objects[o].state {
                ObjState::Channel { len, senders, .. } => len > 0 || senders == 0,
                _ => false,
            },
            Op::Join { lifecycle } => st
                .threads
                .iter()
                .find(|t| t.lifecycle == lifecycle)
                .is_some_and(|t| t.finished),
            _ => true,
        }
    }

    /// Apply the scheduler-visible effect of scheduling `tid`'s op.
    /// Returns `true` when the thread should wake and run (the common
    /// case) or `false` when it stays parked (condvar wait).
    fn apply(st: &mut RtState, tid: Tid, op: &Op) -> bool {
        match *op {
            Op::Lock(o) => {
                if let ObjState::Mutex { held_by } = &mut st.objects[o].state {
                    *held_by = Some(tid);
                }
            }
            Op::Relock { mutex } => {
                if let ObjState::Mutex { held_by } = &mut st.objects[mutex].state {
                    *held_by = Some(tid);
                }
                st.threads[tid].notified = false;
            }
            Op::Unlock(o) => {
                if let ObjState::Mutex { held_by } = &mut st.objects[o].state {
                    *held_by = None;
                }
            }
            Op::RwRead(o) => {
                if let ObjState::RwLock { readers, .. } = &mut st.objects[o].state {
                    *readers += 1;
                }
            }
            Op::RwReadUnlock(o) => {
                if let ObjState::RwLock { readers, .. } = &mut st.objects[o].state {
                    *readers = readers.saturating_sub(1);
                }
            }
            Op::RwWrite(o) => {
                if let ObjState::RwLock { writer, .. } = &mut st.objects[o].state {
                    *writer = true;
                }
            }
            Op::RwWriteUnlock(o) => {
                if let ObjState::RwLock { writer, .. } = &mut st.objects[o].state {
                    *writer = false;
                }
            }
            Op::CondWait { cv, mutex } => {
                if let ObjState::Mutex { held_by } = &mut st.objects[mutex].state {
                    *held_by = None;
                }
                if let ObjState::Condvar { waiters } = &mut st.objects[cv].state {
                    waiters.push(tid);
                }
                st.threads[tid].notified = false;
                st.threads[tid].pending = Some(Op::Relock { mutex });
                return false;
            }
            Op::NotifyOne(o) => {
                if let ObjState::Condvar { waiters } = &mut st.objects[o].state {
                    if !waiters.is_empty() {
                        let w = waiters.remove(0);
                        st.threads[w].notified = true;
                    }
                }
            }
            Op::NotifyAll(o) => {
                if let ObjState::Condvar { waiters } = &mut st.objects[o].state {
                    let woken: Vec<Tid> = waiters.drain(..).collect();
                    for w in woken {
                        st.threads[w].notified = true;
                    }
                }
            }
            Op::Send(o) => {
                if let ObjState::Channel { len, rx_alive, .. } = &mut st.objects[o].state {
                    if *rx_alive {
                        *len += 1;
                        st.threads[tid].outcome = Outcome::Ok;
                    } else {
                        st.threads[tid].outcome = Outcome::Disconnected;
                    }
                }
            }
            Op::TrySend(o) => {
                if let ObjState::Channel {
                    len, cap, rx_alive, ..
                } = &mut st.objects[o].state
                {
                    if !*rx_alive {
                        st.threads[tid].outcome = Outcome::Disconnected;
                    } else if *len >= *cap {
                        st.threads[tid].outcome = Outcome::Full;
                    } else {
                        *len += 1;
                        st.threads[tid].outcome = Outcome::Ok;
                    }
                }
            }
            Op::Recv(o) => {
                if let ObjState::Channel { len, .. } = &mut st.objects[o].state {
                    if *len > 0 {
                        *len -= 1;
                        st.threads[tid].outcome = Outcome::Ok;
                    } else {
                        st.threads[tid].outcome = Outcome::Disconnected;
                    }
                }
            }
            Op::CloseTx(o) => {
                if let ObjState::Channel { senders, .. } = &mut st.objects[o].state {
                    *senders = senders.saturating_sub(1);
                }
            }
            Op::CloseRx(o) => {
                if let ObjState::Channel { rx_alive, .. } = &mut st.objects[o].state {
                    *rx_alive = false;
                }
            }
            Op::Start
            | Op::Yield
            | Op::Load(_)
            | Op::Store(_)
            | Op::Join { .. }
            | Op::Finish { .. } => {}
        }
        true
    }

    /// One scheduling round: pick the next thread per the explorer and
    /// apply its op; repeat while the applied op leaves its thread
    /// parked (condvar wait). Detects deadlock, depth bound, pruning.
    fn schedule(&self, st: &mut RtState) {
        loop {
            if st.live == 0 {
                st.done = true;
                self.cond.notify_all();
                return;
            }
            let live: Vec<Tid> = (0..st.threads.len())
                .filter(|&t| !st.threads[t].finished)
                .collect();
            // Cooperative-design invariant: at a decision point every
            // live thread has announced its pending operation.
            debug_assert!(live.iter().all(|&t| st.threads[t].pending.is_some()));
            let enabled: Vec<Tid> = live
                .iter()
                .copied()
                .filter(|&t| {
                    st.threads[t]
                        .pending
                        .as_ref()
                        .is_some_and(|op| Self::op_enabled(st, t, op))
                })
                .collect();
            if enabled.is_empty() {
                let detail: Vec<String> = live
                    .iter()
                    .map(|&t| {
                        let opdesc = st.threads[t]
                            .pending
                            .as_ref()
                            .map_or_else(|| "?".to_string(), |op| Self::op_desc(st, op));
                        format!("t{t} blocked at {opdesc}")
                    })
                    .collect();
                if st.failure.is_none() {
                    let schedule = Self::schedule_desc(st);
                    st.failure = Some(format!(
                        "deadlock: every live thread is blocked\n  {}\n  failing schedule: {schedule}",
                        detail.join("\n  ")
                    ));
                }
                st.abort = true;
                self.cond.notify_all();
                return;
            }
            match Self::decide(st, &enabled) {
                Ok(chosen) => {
                    let Some(op) = st.threads[chosen].pending.take() else {
                        continue;
                    };
                    if Self::apply(st, chosen, &op) {
                        st.active = Some(chosen);
                        self.cond.notify_all();
                        return;
                    }
                    // Parked (condvar wait): keep scheduling.
                }
                Err(StepFail::Pruned) => {
                    st.abort = true;
                    self.cond.notify_all();
                    return;
                }
                Err(StepFail::DepthBound) => {
                    if st.failure.is_none() {
                        let schedule = Self::schedule_desc(st);
                        st.failure = Some(format!(
                            "depth bound exceeded: more than {} scheduling decisions in one execution (livelock or an oversized model)\n  schedule prefix: {schedule}",
                            st.explorer.config.max_steps
                        ));
                    }
                    st.abort = true;
                    self.cond.notify_all();
                    return;
                }
            }
        }
    }

    /// The explorer's choice at the current decision point: replay the
    /// recorded prefix, then extend the trace depth-first.
    fn decide(st: &mut RtState, enabled: &[Tid]) -> Result<Tid, StepFail> {
        if st.explorer.pos >= st.explorer.config.max_steps {
            return Err(StepFail::DepthBound);
        }
        if st.explorer.pos < st.explorer.trace.len() {
            let chosen = st.explorer.trace[st.explorer.pos].chosen;
            st.explorer.pos += 1;
            debug_assert!(
                enabled.contains(&chosen),
                "replay divergence: the model closure is nondeterministic"
            );
            return Ok(chosen);
        }
        // New node: derive the sleep set from the parent — siblings
        // explored earlier sleep for as long as their op is independent
        // of the step just executed.
        let fps: Vec<(Tid, Op)> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.finished)
            .filter_map(|(tid, t)| t.pending.clone().map(|op| (tid, op)))
            .collect();
        let pos = st.explorer.pos;
        let sleep: Vec<Tid> = if pos == 0 {
            Vec::new()
        } else {
            let parent = &st.explorer.trace[pos - 1];
            let parent_op = parent.op_of(parent.chosen);
            parent
                .sleep
                .iter()
                .chain(parent.explored.iter())
                .copied()
                .filter(|&t| t != parent.chosen)
                .filter(|&t| match (parent.op_of(t), parent_op) {
                    (Some(a), Some(b)) => independent(a, b),
                    _ => false,
                })
                .collect()
        };
        let Some(chosen) = enabled.iter().copied().find(|t| !sleep.contains(t)) else {
            // Every enabled choice is covered by an earlier sibling's
            // subtree: prune this execution.
            return Err(StepFail::Pruned);
        };
        st.explorer.trace.push(Node {
            enabled: enabled.to_vec(),
            fps,
            sleep,
            explored: Vec::new(),
            chosen,
        });
        st.explorer.pos += 1;
        Ok(chosen)
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

static LAST_ITERATIONS: AtomicUsize = AtomicUsize::new(0);

/// Executions explored by the most recently completed `model` call (a
/// diagnostic aid for sizing models; racy only across concurrent
/// `model` calls, which tests avoid).
pub fn last_iterations() -> usize {
    LAST_ITERATIONS.load(Ordering::Relaxed)
}

/// Run `f` under every schedule the explorer can reach within `config`'s
/// bounds. Panics on the first failing schedule with a deterministic
/// report: the failure, per-thread blocked detail for deadlocks, and
/// the schedule that reached it.
pub(crate) fn run<F>(config: Config, f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    install_hook();
    let f = Arc::new(f);
    let mut explorer = Explorer::new(config);
    loop {
        explorer.iterations += 1;
        if explorer.iterations > config.max_iterations {
            panic!(
                "loom: exploration budget exhausted after {} executions — shrink the model or raise max_iterations",
                config.max_iterations
            );
        }
        explorer.pos = 0;
        let rt = Arc::new(Rt::new(explorer));
        let body = Arc::clone(&f);
        rt.spawn(Box::new(move || body()));
        {
            let mut st = rt.lock();
            rt.schedule(&mut st);
        }
        // Wait for the execution to drain, then reap its OS threads.
        {
            let mut st = rt.lock();
            while !(st.done && st.live == 0) {
                st = match rt.cond.wait(st) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        }
        let handles: Vec<std::thread::JoinHandle<()>> = {
            let mut st = rt.lock();
            std::mem::take(&mut st.os_handles)
        };
        for h in handles {
            let _ = h.join();
        }
        let (failure, iters, ex) = {
            let mut st = rt.lock();
            let failure = st.failure.take();
            let iters = st.explorer.iterations;
            let ex = std::mem::replace(&mut st.explorer, Explorer::new(config));
            (failure, iters, ex)
        };
        explorer = ex;
        if let Some(msg) = failure {
            LAST_ITERATIONS.store(iters, Ordering::Relaxed);
            panic!("loom model failed (execution #{iters})\n  {msg}");
        }
        if !explorer.advance() {
            LAST_ITERATIONS.store(iters, Ordering::Relaxed);
            return;
        }
    }
}

/// The data-side queue of a model channel: typed payloads live outside
/// the scheduler, which tracks only lengths and handle counts.
pub(crate) struct ChanData<T> {
    q: StdMutex<VecDeque<T>>,
}

impl<T> ChanData<T> {
    pub(crate) fn new() -> ChanData<T> {
        ChanData {
            q: StdMutex::new(VecDeque::new()),
        }
    }

    pub(crate) fn push(&self, v: T) {
        match self.q.lock() {
            Ok(mut g) => g.push_back(v),
            Err(p) => p.into_inner().push_back(v),
        }
    }

    pub(crate) fn pop(&self) -> Option<T> {
        match self.q.lock() {
            Ok(mut g) => g.pop_front(),
            Err(p) => p.into_inner().pop_front(),
        }
    }
}
