//! Offline stand-in for the [`loom`](https://docs.rs/loom) permutation
//! tester.
//!
//! The build environment has no crates.io access, so this shim provides
//! the subset of loom's API the workspace's concurrency models use —
//! [`model`], `thread::spawn`, and the `sync` re-exports — backed by the
//! real `std` primitives. [`model`] runs the closure several times to
//! shake out scheduling-dependent behavior, but it does **not** perform
//! loom's exhaustive interleaving exploration; with registry access,
//! swapping in the real crate upgrades the same tests to full model
//! checking (call sites are compatible).

/// Thread primitives — `std::thread` under the shim, loom's controlled
/// scheduler under the real crate.
pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

/// Synchronization primitives — `std::sync` under the shim.
pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};

    /// Atomic types — `std::sync::atomic` under the shim.
    pub mod atomic {
        pub use std::sync::atomic::*;
    }
}

/// Run a concurrency model.
///
/// Real loom explores every valid interleaving of the closure's threads;
/// this stand-in re-runs it a fixed number of times under the OS
/// scheduler, which still catches gross races (lost updates, deadlocks
/// that do not depend on a rare schedule) deterministically enough for CI.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for _ in 0..32 {
        f();
    }
}
