//! Offline stand-in for the [`loom`](https://docs.rs/loom) permutation
//! tester — now a real bounded interleaving explorer.
//!
//! The build environment has no crates.io access, so this shim provides
//! the subset of loom's API the workspace's concurrency models use —
//! [`model`], `thread::spawn`/`join`/`yield_now`, and the `sync`
//! primitives (`Mutex`, `RwLock`, `Condvar`, bounded `mpsc`, atomics).
//! Unlike the original pass-through (which re-ran the closure under the
//! OS scheduler), this version runs model closures under a cooperative
//! scheduler and explores **every reachable schedule** up to its bounds:
//! a depth-first search over scheduling decisions with DPOR-style
//! sleep-set pruning, deterministic replay of shared prefixes, deadlock
//! detection (reported with per-thread blocked ops), and a reproducible
//! failing-schedule report on the first assertion failure, panic, or
//! deadlock. See `src/rt.rs` for the scheduler and the pruning argument.
//!
//! What is modeled: sequentially consistent interleavings of the shim's
//! own primitives. What is not: weak memory orderings, spurious condvar
//! wakeups, rendezvous (bound-0) channels, and `std` primitives used
//! directly inside a model (they are invisible to the scheduler — use
//! the shim's types). With registry access, swapping in the real crate
//! upgrades the same tests to loom's full C11-model checking (call
//! sites are compatible).

mod rt;
pub mod sync;
pub mod thread;

pub use rt::{last_iterations, Config};

/// Run `f` under every schedule reachable with the default bounds
/// (overridable via `TDB_LOOM_MAX_STEPS` / `TDB_LOOM_MAX_ITERATIONS`).
///
/// Panics — deterministically, with the failing schedule — on the first
/// execution that fails an assertion, panics, deadlocks, or exceeds a
/// bound. Returns only after the schedule space is exhausted.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    rt::run(Config::default(), f);
}

/// [`model`] with explicit exploration bounds.
pub fn model_with<F>(config: Config, f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    rt::run(config, f);
}
