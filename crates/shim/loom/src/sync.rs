//! Model-aware `std::sync` facade: mutexes, rwlocks, condvars, bounded
//! mpsc channels, and atomics whose every operation is a scheduling
//! point inside a model closure.
//!
//! Objects created *inside* a model closure register with the current
//! execution's scheduler; objects created outside (or used outside)
//! fall back to plain `std` behavior, so the same types work in both
//! worlds. All lock methods return `Ok` — model executions never
//! poison (a panicking thread fails the whole model instead) — the
//! `Result` surface exists for `std` drop-in compatibility.

use crate::rt::{self, ObjKind, Oid, Op, Outcome};
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, RwLock as StdRwLock};

pub use std::sync::{Arc, LockResult, PoisonError};

/// A mutual-exclusion lock; every `lock`/unlock is a scheduling point
/// inside a model.
pub struct Mutex<T> {
    oid: Option<Oid>,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex. Registers with the scheduler when called from a
    /// model thread.
    pub fn new(value: T) -> Mutex<T> {
        let oid = rt::current().map(|(rt, _)| rt.register(ObjKind::Mutex));
        Mutex {
            oid,
            inner: StdMutex::new(value),
        }
    }

    /// Acquire the lock (a scheduling point; blocking here can be part
    /// of a detected deadlock). Always `Ok`.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let (Some(oid), Some((rt, tid))) = (self.oid, rt::current()) {
            rt.sync(tid, Op::Lock(oid));
        }
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        Ok(MutexGuard {
            mutex: self,
            guard: Some(guard),
        })
    }

    /// Consume the mutex, returning the inner value. Always `Ok`.
    pub fn into_inner(self) -> LockResult<T> {
        match self.inner.into_inner() {
            Ok(v) => Ok(v),
            Err(p) => Ok(p.into_inner()),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard for [`Mutex`]; releasing is itself a scheduling point.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("loom: guard already released")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("loom: guard already released")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before announcing: once Unlock is
        // scheduled another thread may be granted the mutex and will
        // take the inner std lock.
        drop(self.guard.take());
        if let (Some(oid), Some((rt, tid))) = (self.mutex.oid, rt::current()) {
            rt.sync(tid, Op::Unlock(oid));
        }
    }
}

/// A reader-writer lock; acquisition and release of either mode are
/// scheduling points inside a model.
pub struct RwLock<T> {
    oid: Option<Oid>,
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a rwlock. Registers with the scheduler when called from a
    /// model thread.
    pub fn new(value: T) -> RwLock<T> {
        let oid = rt::current().map(|(rt, _)| rt.register(ObjKind::RwLock));
        RwLock {
            oid,
            inner: StdRwLock::new(value),
        }
    }

    /// Acquire a shared read lock. Always `Ok`.
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        if let (Some(oid), Some((rt, tid))) = (self.oid, rt::current()) {
            rt.sync(tid, Op::RwRead(oid));
        }
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        Ok(RwLockReadGuard {
            lock: self,
            guard: Some(guard),
        })
    }

    /// Acquire the exclusive write lock. Always `Ok`.
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        if let (Some(oid), Some((rt, tid))) = (self.oid, rt::current()) {
            rt.sync(tid, Op::RwWrite(oid));
        }
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        Ok(RwLockWriteGuard {
            lock: self,
            guard: Some(guard),
        })
    }

    /// Consume the lock, returning the inner value. Always `Ok`.
    pub fn into_inner(self) -> LockResult<T> {
        match self.inner.into_inner() {
            Ok(v) => Ok(v),
            Err(p) => Ok(p.into_inner()),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    guard: Option<std::sync::RwLockReadGuard<'a, T>>,
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("loom: guard already released")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.guard.take());
        if let (Some(oid), Some((rt, tid))) = (self.lock.oid, rt::current()) {
            rt.sync(tid, Op::RwReadUnlock(oid));
        }
    }
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    guard: Option<std::sync::RwLockWriteGuard<'a, T>>,
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("loom: guard already released")
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("loom: guard already released")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.guard.take());
        if let (Some(oid), Some((rt, tid))) = (self.lock.oid, rt::current()) {
            rt.sync(tid, Op::RwWriteUnlock(oid));
        }
    }
}

/// A condition variable. Inside a model, `wait` atomically releases the
/// mutex and parks (the lost-wakeup window is therefore explorable),
/// and notifications wake waiters in FIFO order for determinism.
pub struct Condvar {
    oid: Option<Oid>,
    inner: StdCondvar,
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl Condvar {
    /// Create a condvar. Registers with the scheduler when called from
    /// a model thread.
    pub fn new() -> Condvar {
        let oid = rt::current().map(|(rt, _)| rt.register(ObjKind::Condvar));
        Condvar {
            oid,
            inner: StdCondvar::new(),
        }
    }

    /// Release `guard`'s mutex and park until notified, then re-acquire.
    /// Always `Ok`. Spurious wakeups are not modeled — callers should
    /// still loop on their predicate as with `std`.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let mutex = guard.mutex;
        match (self.oid, mutex.oid, rt::current()) {
            (Some(cv), Some(m), Some((rt, tid))) => {
                // The CondWait op releases the scheduler-side lock state
                // atomically; drop the real lock here and skip the
                // guard's own Unlock announcement.
                drop(guard.guard.take());
                std::mem::forget(guard);
                rt.sync(tid, Op::CondWait { cv, mutex: m });
                let inner = match mutex.inner.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                Ok(MutexGuard {
                    mutex,
                    guard: Some(inner),
                })
            }
            _ => {
                let inner = guard.guard.take().expect("loom: guard already released");
                std::mem::forget(guard);
                let inner = match self.inner.wait(inner) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                Ok(MutexGuard {
                    mutex,
                    guard: Some(inner),
                })
            }
        }
    }

    /// Wake one waiter (FIFO inside a model).
    pub fn notify_one(&self) {
        match (self.oid, rt::current()) {
            (Some(oid), Some((rt, tid))) => {
                rt.sync(tid, Op::NotifyOne(oid));
            }
            _ => self.inner.notify_one(),
        }
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        match (self.oid, rt::current()) {
            (Some(oid), Some((rt, tid))) => {
                rt.sync(tid, Op::NotifyAll(oid));
            }
            _ => self.inner.notify_all(),
        }
    }
}

/// Bounded mpsc channels whose send/recv/close operations are
/// scheduling points inside a model.
pub mod mpsc {
    use super::{rt, Arc, ObjKind, Op, Outcome};
    use crate::rt::{ChanData, Oid};

    pub use std::sync::mpsc::{RecvError, SendError, TrySendError};

    /// Create a bounded channel. Inside a model the bound must be ≥ 1
    /// (rendezvous channels are not modeled).
    pub fn sync_channel<T>(bound: usize) -> (SyncSender<T>, Receiver<T>) {
        match rt::current() {
            Some((rt, _)) => {
                assert!(bound >= 1, "loom: model channels require a bound >= 1");
                let oid = rt.register(ObjKind::Channel);
                rt.channel_init(oid, bound);
                let data = Arc::new(ChanData::new());
                (
                    SyncSender(SenderInner::Model {
                        oid,
                        data: Arc::clone(&data),
                    }),
                    Receiver(ReceiverInner::Model { oid, data }),
                )
            }
            None => {
                let (tx, rx) = std::sync::mpsc::sync_channel(bound);
                (
                    SyncSender(SenderInner::Std(tx)),
                    Receiver(ReceiverInner::Std(rx)),
                )
            }
        }
    }

    /// Sending half of a bounded channel; clonable.
    pub struct SyncSender<T>(SenderInner<T>);

    enum SenderInner<T> {
        Std(std::sync::mpsc::SyncSender<T>),
        Model { oid: Oid, data: Arc<ChanData<T>> },
    }

    impl<T> SyncSender<T> {
        /// Blocking send: parks while the queue is full (a scheduling
        /// point; part of detectable deadlocks). Errors when the
        /// receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderInner::Std(tx) => tx.send(value),
                SenderInner::Model { oid, data } => {
                    let (rt, tid) =
                        rt::current().expect("loom: model channel used outside its model");
                    match rt.sync(tid, Op::Send(*oid)) {
                        Outcome::Ok => {
                            data.push(value);
                            Ok(())
                        }
                        _ => Err(SendError(value)),
                    }
                }
            }
        }

        /// Non-blocking send: fails fast on a full queue or a gone
        /// receiver. Still a scheduling point.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                SenderInner::Std(tx) => tx.try_send(value),
                SenderInner::Model { oid, data } => {
                    let (rt, tid) =
                        rt::current().expect("loom: model channel used outside its model");
                    match rt.sync(tid, Op::TrySend(*oid)) {
                        Outcome::Ok => {
                            data.push(value);
                            Ok(())
                        }
                        Outcome::Full => Err(TrySendError::Full(value)),
                        Outcome::Disconnected => Err(TrySendError::Disconnected(value)),
                    }
                }
            }
        }
    }

    impl<T> Clone for SyncSender<T> {
        fn clone(&self) -> SyncSender<T> {
            match &self.0 {
                SenderInner::Std(tx) => SyncSender(SenderInner::Std(tx.clone())),
                SenderInner::Model { oid, data } => {
                    let (rt, _) =
                        rt::current().expect("loom: model channel used outside its model");
                    rt.channel_add_sender(*oid);
                    SyncSender(SenderInner::Model {
                        oid: *oid,
                        data: Arc::clone(data),
                    })
                }
            }
        }
    }

    impl<T> Drop for SyncSender<T> {
        fn drop(&mut self) {
            if let SenderInner::Model { oid, .. } = &self.0 {
                if let Some((rt, tid)) = rt::current() {
                    rt.sync(tid, Op::CloseTx(*oid));
                }
            }
        }
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(ReceiverInner<T>);

    enum ReceiverInner<T> {
        Std(std::sync::mpsc::Receiver<T>),
        Model { oid: Oid, data: Arc<ChanData<T>> },
    }

    impl<T> Receiver<T> {
        /// Blocking receive: parks while the queue is empty and any
        /// sender is live; errors once empty with all senders gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            match &self.0 {
                ReceiverInner::Std(rx) => rx.recv(),
                ReceiverInner::Model { oid, data } => {
                    let (rt, tid) =
                        rt::current().expect("loom: model channel used outside its model");
                    match rt.sync(tid, Op::Recv(*oid)) {
                        Outcome::Ok => data.pop().ok_or(RecvError),
                        _ => Err(RecvError),
                    }
                }
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if let ReceiverInner::Model { oid, .. } = &self.0 {
                if let Some((rt, tid)) = rt::current() {
                    rt.sync(tid, Op::CloseRx(*oid));
                }
            }
        }
    }
}

/// Atomics whose loads and stores are scheduling points inside a model.
/// Orderings are accepted for API compatibility; the model explores
/// sequentially consistent interleavings.
pub mod atomic {
    use super::{rt, ObjKind, Op};
    use crate::rt::Oid;
    use std::sync::atomic::Ordering as StdOrdering;

    pub use std::sync::atomic::Ordering;

    fn read_point(oid: Option<Oid>) {
        if let (Some(oid), Some((rt, tid))) = (oid, rt::current()) {
            rt.sync(tid, Op::Load(oid));
        }
    }

    fn write_point(oid: Option<Oid>) {
        if let (Some(oid), Some((rt, tid))) = (oid, rt::current()) {
            rt.sync(tid, Op::Store(oid));
        }
    }

    macro_rules! int_atomic {
        ($(#[$doc:meta])* $name:ident, $std:ident, $prim:ty) => {
            $(#[$doc])*
            pub struct $name {
                oid: Option<Oid>,
                v: std::sync::atomic::$std,
            }

            impl $name {
                /// Create the atomic; registers with the scheduler when
                /// called from a model thread.
                pub fn new(v: $prim) -> $name {
                    let oid = rt::current().map(|(rt, _)| rt.register(ObjKind::Atomic));
                    $name {
                        oid,
                        v: std::sync::atomic::$std::new(v),
                    }
                }

                /// Atomic load (a read scheduling point).
                pub fn load(&self, _order: Ordering) -> $prim {
                    read_point(self.oid);
                    self.v.load(StdOrdering::SeqCst)
                }

                /// Atomic store (a write scheduling point).
                pub fn store(&self, val: $prim, _order: Ordering) {
                    write_point(self.oid);
                    self.v.store(val, StdOrdering::SeqCst);
                }

                /// Atomic swap.
                pub fn swap(&self, val: $prim, _order: Ordering) -> $prim {
                    write_point(self.oid);
                    self.v.swap(val, StdOrdering::SeqCst)
                }

                /// Atomic add, returning the previous value.
                pub fn fetch_add(&self, val: $prim, _order: Ordering) -> $prim {
                    write_point(self.oid);
                    self.v.fetch_add(val, StdOrdering::SeqCst)
                }

                /// Atomic subtract, returning the previous value.
                pub fn fetch_sub(&self, val: $prim, _order: Ordering) -> $prim {
                    write_point(self.oid);
                    self.v.fetch_sub(val, StdOrdering::SeqCst)
                }

                /// Atomic maximum, returning the previous value.
                pub fn fetch_max(&self, val: $prim, _order: Ordering) -> $prim {
                    write_point(self.oid);
                    self.v.fetch_max(val, StdOrdering::SeqCst)
                }

                /// Atomic compare-exchange (a write scheduling point even
                /// on failure — conservative, never unsound).
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$prim, $prim> {
                    write_point(self.oid);
                    self.v
                        .compare_exchange(current, new, StdOrdering::SeqCst, StdOrdering::SeqCst)
                }
            }
        };
    }

    int_atomic!(
        /// Model-aware `AtomicUsize`.
        AtomicUsize,
        AtomicUsize,
        usize
    );
    int_atomic!(
        /// Model-aware `AtomicU32`.
        AtomicU32,
        AtomicU32,
        u32
    );
    int_atomic!(
        /// Model-aware `AtomicU64`.
        AtomicU64,
        AtomicU64,
        u64
    );
    int_atomic!(
        /// Model-aware `AtomicI64`.
        AtomicI64,
        AtomicI64,
        i64
    );

    /// Model-aware `AtomicBool`.
    pub struct AtomicBool {
        oid: Option<Oid>,
        v: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Create the atomic; registers with the scheduler when called
        /// from a model thread.
        pub fn new(v: bool) -> AtomicBool {
            let oid = rt::current().map(|(rt, _)| rt.register(ObjKind::Atomic));
            AtomicBool {
                oid,
                v: std::sync::atomic::AtomicBool::new(v),
            }
        }

        /// Atomic load (a read scheduling point).
        pub fn load(&self, _order: Ordering) -> bool {
            read_point(self.oid);
            self.v.load(StdOrdering::SeqCst)
        }

        /// Atomic store (a write scheduling point).
        pub fn store(&self, val: bool, _order: Ordering) {
            write_point(self.oid);
            self.v.store(val, StdOrdering::SeqCst);
        }

        /// Atomic swap.
        pub fn swap(&self, val: bool, _order: Ordering) -> bool {
            write_point(self.oid);
            self.v.swap(val, StdOrdering::SeqCst)
        }

        /// Atomic compare-exchange (a write scheduling point even on
        /// failure).
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            _success: Ordering,
            _failure: Ordering,
        ) -> Result<bool, bool> {
            write_point(self.oid);
            self.v
                .compare_exchange(current, new, StdOrdering::SeqCst, StdOrdering::SeqCst)
        }
    }
}
