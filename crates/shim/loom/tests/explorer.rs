//! Self-tests for the interleaving explorer: seeded bugs it MUST find
//! (a racy read-modify-write counter, a lock-order inversion, a lost
//! condvar wakeup), deterministic failing-schedule reports, and sanity
//! checks that correct protocols pass exhaustively.

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{mpsc, Arc, Condvar, Mutex};
use loom::thread;

/// Run a model expected to fail; return the failure panic message.
fn failure_of<F>(f: F) -> String
where
    F: Fn() + Sync + Send + 'static,
{
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loom::model(f)));
    let payload = result.expect_err("model unexpectedly passed every schedule");
    payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// The classic torn increment: two threads load-then-store. The explorer
/// must find the schedule where both load 0 and the final value is 1.
fn racy_counter() {
    let c = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let c = Arc::clone(&c);
            thread::spawn(move || {
                let v = c.load(Ordering::SeqCst);
                c.store(v + 1, Ordering::SeqCst);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
}

#[test]
fn explorer_finds_racy_counter() {
    let msg = failure_of(racy_counter);
    assert!(msg.contains("lost update"), "wrong failure: {msg}");
    assert!(
        msg.contains("failing schedule"),
        "no schedule report: {msg}"
    );
}

#[test]
fn failing_schedule_report_is_deterministic() {
    let first = failure_of(racy_counter);
    let second = failure_of(racy_counter);
    assert_eq!(first, second, "explorer reports are not deterministic");
}

#[test]
fn explorer_finds_lock_order_inversion() {
    let msg = failure_of(|| {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        let t1 = thread::spawn(move || {
            let _ga = a1.lock().unwrap();
            let _gb = b1.lock().unwrap();
        });
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t2 = thread::spawn(move || {
            let _gb = b2.lock().unwrap();
            let _ga = a2.lock().unwrap();
        });
        t1.join().unwrap();
        t2.join().unwrap();
    });
    assert!(msg.contains("deadlock"), "expected a deadlock: {msg}");
    assert!(msg.contains("blocked at lock"), "no blocked detail: {msg}");
}

/// A waiter that skips the predicate check misses the notification that
/// fired before it parked — the explorer must find that lost wakeup as
/// a deadlock.
#[test]
fn explorer_finds_lost_condvar_wakeup() {
    let msg = failure_of(|| {
        let flag = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (f2, cv2) = (Arc::clone(&flag), Arc::clone(&cv));
        let setter = thread::spawn(move || {
            *f2.lock().unwrap() = true;
            cv2.notify_one();
        });
        let guard = flag.lock().unwrap();
        // BUG (seeded): waits unconditionally instead of `while !*guard`.
        let _guard = cv.wait(guard).unwrap();
        setter.join().unwrap();
    });
    assert!(msg.contains("deadlock"), "expected a deadlock: {msg}");
}

/// The predicate-checking variant of the same protocol is correct and
/// must pass every schedule.
#[test]
fn correct_condvar_protocol_passes() {
    loom::model(|| {
        let flag = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (f2, cv2) = (Arc::clone(&flag), Arc::clone(&cv));
        let setter = thread::spawn(move || {
            *f2.lock().unwrap() = true;
            cv2.notify_one();
        });
        let mut guard = flag.lock().unwrap();
        while !*guard {
            guard = cv.wait(guard).unwrap();
        }
        drop(guard);
        setter.join().unwrap();
    });
}

/// `fetch_add` is atomic: the correct counter passes exhaustively, and
/// the exploration genuinely visits more than one schedule.
#[test]
fn atomic_counter_passes_exhaustively() {
    loom::model(|| {
        let c = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::SeqCst), 2);
    });
    assert!(
        loom::last_iterations() > 1,
        "expected more than one explored schedule, got {}",
        loom::last_iterations()
    );
}

/// Bounded-channel producer/consumer: blocking sends against a bound-1
/// queue deliver everything in order under every schedule, and recv
/// observes disconnect after the last sender drops.
#[test]
fn bounded_channel_delivers_in_order() {
    loom::model(|| {
        let (tx, rx) = mpsc::sync_channel::<u32>(1);
        let producer = thread::spawn(move || {
            tx.send(1).unwrap();
            tx.send(2).unwrap();
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        producer.join().unwrap();
        assert_eq!(got, vec![1, 2]);
    });
}

/// `try_send` against a full bound-1 queue: the explorer reaches both
/// the `Full` and the success outcome depending on consumer progress.
#[test]
fn try_send_full_outcome_is_reachable() {
    use std::sync::atomic::{AtomicBool, Ordering as StdOrdering};
    static SAW_FULL: AtomicBool = AtomicBool::new(false);
    static SAW_OK: AtomicBool = AtomicBool::new(false);
    loom::model(|| {
        let (tx, rx) = mpsc::sync_channel::<u32>(1);
        tx.send(1).unwrap();
        let consumer = thread::spawn(move || {
            let _ = rx.recv();
            let _ = rx.recv();
        });
        match tx.try_send(2) {
            Ok(()) => SAW_OK.store(true, StdOrdering::SeqCst),
            Err(mpsc::TrySendError::Full(_)) => SAW_FULL.store(true, StdOrdering::SeqCst),
            Err(mpsc::TrySendError::Disconnected(_)) => {}
        }
        drop(tx);
        consumer.join().unwrap();
    });
    assert!(
        SAW_FULL.load(StdOrdering::SeqCst),
        "no schedule reached the Full outcome"
    );
    assert!(
        SAW_OK.load(StdOrdering::SeqCst),
        "no schedule reached the Ok outcome"
    );
}

/// A livelocking model hits the depth bound as a hard error, never a
/// silent truncation.
#[test]
fn depth_bound_is_a_hard_error() {
    let result = std::panic::catch_unwind(|| {
        loom::model_with(
            loom::Config {
                max_steps: 64,
                max_iterations: 16,
            },
            || loop {
                thread::yield_now();
            },
        )
    });
    let payload = result.expect_err("livelock was not caught");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("depth bound exceeded"), "wrong failure: {msg}");
}
