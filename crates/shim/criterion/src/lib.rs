//! Offline stand-in for the slice of `criterion` this workspace's benches
//! use. Each benchmark is timed with plain wall-clock sampling (a short
//! warm-up, then `sample_size` timed batches) and one line is printed per
//! benchmark: `bench <group>/<name>[/<param>] ... <mean> ns/iter (min <min>)`.
//! No statistics, plotting or state directory — good enough to compare
//! strategies on one machine, which is what the paper's experiments need.

use std::time::{Duration, Instant};

/// Opaque value barrier, like `criterion::black_box`.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: a function name plus a displayable parameter.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name` with `parameter` appended, as criterion renders it.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { name: s.into() }
    }
}

/// Passed to benchmark closures; `iter` times the hot closure.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher<'_> {
    /// Run `f` repeatedly, recording one duration sample per batch.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up and batch-size calibration: aim for ~5ms per sample so
        // short closures aren't dominated by timer resolution.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(5);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let samples = self.samples.capacity().max(1);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("bench {label} ... no samples");
        return;
    }
    let min = samples.iter().min().unwrap();
    let mean: Duration = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "bench {label} ... {} ns/iter (min {} ns, {} samples)",
        mean.as_nanos(),
        min.as_nanos(),
        samples.len()
    );
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run(&self, label: String, f: impl FnOnce(&mut Bencher<'_>)) {
        let mut samples = Vec::with_capacity(self.sample_size);
        let mut b = Bencher {
            samples: &mut samples,
            iters_per_sample: 1,
        };
        f(&mut b);
        report(&label, &samples);
    }

    /// Benchmark `f` under `id` with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnOnce(&mut Bencher<'_>, &I),
    ) -> &mut Self {
        let id = id.into();
        self.run(format!("{}/{}", self.name, id.name), |b| f(b, input));
        self
    }

    /// Benchmark `f` under a plain name.
    pub fn bench_function(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut Bencher<'_>),
    ) -> &mut Self {
        self.run(format!("{}/{}", self.name, name), f);
        self
    }

    /// Finish the group (printing already happened per benchmark).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            10
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _parent: self,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut Bencher<'_>),
    ) -> &mut Self {
        let mut samples = Vec::with_capacity(10);
        let mut b = Bencher {
            samples: &mut samples,
            iters_per_sample: 1,
        };
        f(&mut b);
        report(name, &samples);
        self
    }
}

/// Bundle benchmark functions into a group runner, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Produce a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_functions_run_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 10), &10usize, |b, &n| {
            b.iter(|| {
                ran += 1;
                n * 2
            })
        });
        group.finish();
        assert!(ran >= 2);
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }
}
