//! Staffing-history analytics over disk-backed storage: external sort into
//! the "properly sorted streams" the paper's operators require, then
//! containment analysis with measured page I/O — the §4.1 three-way
//! tradeoff (workspace vs. sort order vs. disk passes) made concrete.
//!
//! Run with: `cargo run --release -p tdb --example staffing_history`

use tdb::prelude::*;
use tdb::storage::{Codec, RunReader, RunWriter};

fn main() -> TdbResult<()> {
    let io = IoStats::new();
    let dir = std::env::temp_dir().join("tdb-example-staffing");
    std::fs::create_dir_all(&dir)?;

    // Contracts: employment spells. Projects: short engagements.
    let contracts = IntervalGen::poisson(30_000, 2.0, 200.0, 1).generate();
    let projects = IntervalGen::poisson(30_000, 2.0, 15.0, 2).generate();

    // ── 1. Persist both relations to heap files (page I/O counted). ──
    let mut h1 = HeapFile::create(dir.join("contracts.heap"), io.clone())?;
    for t in &contracts {
        h1.append(t)?;
    }
    h1.flush()?;
    let mut h2 = HeapFile::create(dir.join("projects.heap"), io.clone())?;
    for t in &projects {
        h2.append(t)?;
    }
    h2.flush()?;
    println!("after load:  {}", io.snapshot());

    // ── 2. External sort with a small memory budget → sorted run files. ──
    let before_sort = io.snapshot();
    let sorter = ExternalSorter::new(
        4_096,
        |a: &TsTuple, b: &TsTuple| StreamOrder::TS_ASC.compare(a, b),
        io.clone(),
    );
    let (sorted_contracts, s1) =
        sorter.sort(h1.scan::<TsTuple>()?.collect::<TdbResult<Vec<_>>>()?)?;
    let contracts_sorted: Vec<TsTuple> = sorted_contracts.collect::<TdbResult<Vec<_>>>()?;
    let sorter = ExternalSorter::new(
        4_096,
        |a: &TsTuple, b: &TsTuple| StreamOrder::TE_ASC.compare(a, b),
        io.clone(),
    );
    let (sorted_projects, s2) =
        sorter.sort(h2.scan::<TsTuple>()?.collect::<TdbResult<Vec<_>>>()?)?;
    let projects_sorted: Vec<TsTuple> = sorted_projects.collect::<TdbResult<Vec<_>>>()?;
    println!(
        "external sort: contracts {} runs, projects {} runs; I/O delta: {}",
        s1.runs,
        s2.runs,
        io.snapshot().since(&before_sort)
    );

    // ── 3. Contain-join: which projects ran inside which contract? ──
    let before_join = io.snapshot();
    let x = from_sorted_vec(contracts_sorted.clone(), StreamOrder::TS_ASC)?;
    let y = from_sorted_vec(projects_sorted.clone(), StreamOrder::TE_ASC)?;
    let mut join = ContainJoinTsTe::new(x, y)?;
    let mut staffed = 0u64;
    while join.next()?.is_some() {
        staffed += 1;
    }
    println!("\ncontain-join (TS↑/TE↑, Table 1 state (b)): {staffed} project-in-contract pairs");
    println!(
        "  workspace: max {} resident contract tuples; {}",
        join.workspace().max_resident,
        join.metrics()
    );
    println!(
        "  I/O delta during join: {}",
        io.snapshot().since(&before_join)
    );

    // Analytic prediction from Little's law (paper §6 / our cost model).
    let stats = TemporalStats::compute(&contracts_sorted);
    if let Some(pred) = stats.expected_spanning() {
        println!(
            "  Little's-law workspace prediction λ·E[D] = {:.1} (measured max {})",
            pred,
            join.workspace().max_resident
        );
    }

    // ── 4. Persist the qualifying projects as a sorted run for reuse. ──
    let x = from_sorted_vec(projects_sorted, StreamOrder::TE_ASC)?;
    let y = from_sorted_vec(contracts_sorted, StreamOrder::TS_ASC)?;
    let mut semis = ContainedSemijoinStab::new(x, y)?;
    let mut writer = RunWriter::create(dir.join("staffed_projects.run"), io.clone())?;
    let mut kept = 0;
    while let Some(p) = semis.next()? {
        writer.push(&p)?;
        kept += 1;
    }
    let (path, n) = writer.finish()?;
    println!(
        "\ncontained-semijoin (two buffers, Figure 6): {kept} projects inside some contract → {}",
        path.display()
    );
    let reader: RunReader<TsTuple> = RunReader::open(&path, io.clone())?;
    assert_eq!(reader.count() as u64, n);
    println!("final I/O totals: {}", io.snapshot());
    let _ = Codec::to_bytes(&TsTuple::interval(0, 1)?); // keep trait import exercised
    Ok(())
}
