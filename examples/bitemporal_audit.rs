//! Bitemporal auditing (the paper's §6 rollback extension): record payroll
//! periods with transaction time, make corrections and retractions, then
//! answer "what did the database believe on date X?" — and run the §4
//! temporal operators over any past belief state.
//!
//! Run with: `cargo run --release -p tdb --example bitemporal_audit`

use tdb::core::BitemporalTable;
use tdb::prelude::*;
use tdb::stream::coalesce_relation;

fn main() -> TdbResult<()> {
    let mut payroll = BitemporalTable::new();

    // ── Day 100: initial data entry. ──
    payroll.insert("Smith", "Assistant", Period::new(0, 60)?, TimePoint(100))?;
    payroll.insert("Smith", "Associate", Period::new(60, 108)?, TimePoint(100))?;
    payroll.insert("Jones", "Assistant", Period::new(12, 72)?, TimePoint(100))?;
    println!("day 100: {} facts recorded", payroll.current().len());

    // ── Day 200: HR discovers Smith's promotion was backdated. ──
    payroll.update_where(
        TimePoint(200),
        |r| r.surrogate == Value::str("Smith") && r.value == Value::str("Associate"),
        |r| tdb::core::BitemporalTuple {
            valid: Period::new(54, 108).unwrap(),
            ..r.clone()
        },
    )?;
    // And the Assistant period must shrink to match.
    payroll.update_where(
        TimePoint(200),
        |r| r.surrogate == Value::str("Smith") && r.value == Value::str("Assistant"),
        |r| tdb::core::BitemporalTuple {
            valid: Period::new(0, 54).unwrap(),
            ..r.clone()
        },
    )?;
    println!("day 200: Smith's promotion corrected (backdated to t54)");

    // ── Day 300: Jones's record was entered in error — retract it. ──
    let n = payroll.delete_where(TimePoint(300), |r| r.surrogate == Value::str("Jones"))?;
    println!("day 300: {n} Jones fact(s) retracted");

    // ── Audit: what did the database believe at each point? ──
    for day in [150i64, 250, 350] {
        let belief = payroll.as_of(TimePoint(day));
        println!("\nas of day {day}: {} facts believed", belief.len());
        for t in &belief {
            println!("  {t}");
        }
        // Any past belief state is a plain valid-time relation: coalesce
        // each person's periods into employment spells.
        let spells = coalesce_relation(
            belief
                .iter()
                .map(|t| TsTuple {
                    surrogate: t.surrogate.clone(),
                    value: Value::str("employed"),
                    period: t.period,
                })
                .collect(),
        )?;
        for s in &spells {
            println!("    spell: {} over {}", s.surrogate, s.period);
        }
    }

    // The full version log remains queryable forever.
    println!(
        "\nversion log: {} rows ({} current)",
        payroll.log().len(),
        payroll.log().iter().filter(|r| r.is_current()).count()
    );
    assert_eq!(payroll.log().len(), 7);
    Ok(())
}
