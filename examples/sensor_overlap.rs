//! Interval analytics on sensor sessions: which alarms overlap which
//! maintenance windows? Demonstrates the §4.2.4 overlap operators, the
//! workspace instrumentation, and the stream-vs-nested-loop tradeoff on a
//! domain that is not the paper's faculty example.
//!
//! Run with: `cargo run --release -p tdb --example sensor_overlap`

use std::time::Instant;
use tdb::prelude::*;

fn main() -> TdbResult<()> {
    // Alarms: bursty short intervals. Maintenance windows: sparse, long.
    let alarms = IntervalGen::poisson(20_000, 3.0, 10.0, 41).generate();
    let windows = IntervalGen::poisson(2_000, 30.0, 120.0, 42).generate();
    println!(
        "alarms: {} tuples (λ≈1/3, mean duration 10); windows: {} tuples (λ≈1/30, mean duration 120)\n",
        alarms.len(),
        windows.len()
    );

    // ── Stream overlap join (both inputs ValidFrom ↑, Table 2 state (a)). ──
    let start = Instant::now();
    let x = from_sorted_vec(alarms.clone(), StreamOrder::TS_ASC)?;
    let y = from_sorted_vec(windows.clone(), StreamOrder::TS_ASC)?;
    let mut join = OverlapJoin::new(x, y, OverlapMode::General, ReadPolicy::MinKey)?;
    let pairs = join.collect_vec()?;
    let stream_time = start.elapsed();
    let (ws_x, ws_y) = join.workspace();
    println!(
        "stream overlap join:      {stream_time:>10.2?}  {} pairs",
        pairs.len()
    );
    println!(
        "  workspace: alarms max {} resident, windows max {} resident ({} GC discards)",
        ws_x.max_resident,
        ws_y.max_resident,
        ws_x.discarded + ws_y.discarded
    );
    println!("  metrics: {}", join.metrics());

    // ── Nested-loop baseline (the conventional strategy of §3). ──
    let start = Instant::now();
    let mut nl = NestedLoopJoin::new(
        from_vec(alarms.clone()),
        from_vec(windows.clone()),
        |a: &TsTuple, w: &TsTuple| a.period.overlaps(&w.period),
    )?;
    let nl_pairs = nl.collect_vec()?;
    let nl_time = start.elapsed();
    println!(
        "\nnested-loop baseline:     {nl_time:>10.2?}  {} pairs",
        nl_pairs.len()
    );
    println!("  metrics: {}", nl.metrics());
    assert_eq!(pairs.len(), nl_pairs.len(), "operators must agree");

    // ── Semijoin: which alarms fall inside any window at all? ──
    let x = from_sorted_vec(alarms.clone(), StreamOrder::TS_ASC)?;
    let y = from_sorted_vec(windows.clone(), StreamOrder::TS_ASC)?;
    let mut semi = OverlapSemijoin::new(x, y, OverlapMode::General, ReadPolicy::MinKey)?;
    let covered = semi.collect_vec()?;
    println!(
        "\noverlap semijoin (two-buffer, Table 2 state (b)): {} of {} alarms overlap a window; workspace = {} state tuples",
        covered.len(),
        alarms.len(),
        semi.max_workspace()
    );

    // ── Before-semijoin: alarms that fully precede some window. ──
    let mut before = BeforeSemijoin::new(from_vec(alarms.clone()), from_vec(windows))?;
    let early = before.collect_vec()?;
    println!(
        "before-semijoin (single scan, order-independent): {} alarms precede some window",
        early.len()
    );

    println!(
        "\nstream join was {:.1}× faster than nested loop on this workload",
        nl_time.as_secs_f64() / stream_time.as_secs_f64().max(1e-9)
    );
    Ok(())
}
