//! The Superstar query four ways (paper §3 + §5), on a generated faculty
//! population, with measured cost for each formulation:
//!
//! 1. unoptimized Figure 3(a) (tiny input only — it is O(n³));
//! 2. conventionally optimized Figure 3(b) with nested-loop less-than join;
//! 3. semantically reduced Figure 8(b) semijoin;
//! 4. the §5 continuous-employment single-scan self semijoin.
//!
//! Run with: `cargo run --release -p tdb --example superstar`

use std::collections::BTreeSet;
use std::time::Instant;
use tdb::prelude::*;

fn name_set(rows: &[Row]) -> BTreeSet<String> {
    rows.iter()
        .filter_map(|r| r.get(0).as_str().map(str::to_string))
        .collect()
}

fn main() -> TdbResult<()> {
    let faculty = FacultyGen {
        n_faculty: 400,
        continuous_employment: true,
        seed: 7,
        ..FacultyGen::default()
    }
    .generate();
    let dir = std::env::temp_dir().join("tdb-example-superstar");
    let catalog = tdb::faculty_catalog(&dir, &faculty)?;
    println!(
        "Faculty population: {} members, {} tuples\n",
        400,
        faculty.len()
    );

    let mut reference: Option<BTreeSet<String>> = None;
    for (label, logical) in superstar_plans(true) {
        // The unoptimized plan materializes a triple product — skip it for
        // this population size and demonstrate it in the bench instead.
        if label.starts_with("unoptimized") {
            println!("{label:<28} (skipped here: O(n³) product; see benches)");
            continue;
        }
        let config = if label.starts_with("conventional") {
            PlannerConfig::conventional()
        } else {
            PlannerConfig::stream()
        };
        let physical = plan(&logical, config)?;
        let start = Instant::now();
        let out = physical.execute(&catalog, ExecOptions::default())?;
        let elapsed = start.elapsed();
        let names = name_set(&out.rows);
        println!(
            "{label:<28} {:>8.2?}  {:>12} comparisons  workspace {:>4}  → {} superstars",
            elapsed,
            out.stats.comparisons,
            out.stats.max_workspace,
            names.len()
        );
        match &reference {
            None => reference = Some(names),
            Some(r) => assert_eq!(r, &names, "{label} disagrees with the conventional answer"),
        }
    }

    println!("\nAll formulations agree on the same set of superstars.");
    Ok(())
}
