//! Quickstart: load the paper's Figure 1 faculty data, run the Superstar
//! query through the full pipeline (Quel text → parse tree → conventional
//! optimization → physical plan → execution), and show the Figure 4
//! grouped-sum stream processor.
//!
//! Run with: `cargo run -p tdb --example quickstart`

use tdb::prelude::*;

fn main() -> TdbResult<()> {
    // ── 1. Load the running example (paper Figure 1 + two colleagues). ──
    let dir = std::env::temp_dir().join("tdb-example-quickstart");
    let catalog = tdb::faculty_catalog(&dir, &FacultyGen::figure1_instance())?;
    println!("Loaded Faculty relation:");
    for row in catalog.scan("Faculty")? {
        println!("  {row}");
    }

    // ── 2. The Superstar query, exactly as written in the paper (§3). ──
    let (logical, query) = compile(tdb::quel::parser::SUPERSTAR, &catalog)?;
    println!("\nQuery: retrieve into {:?}", query.into.as_deref());
    println!(
        "\nUnoptimized parse tree (Figure 3a):\n{}",
        logical.parse_tree()
    );

    let optimized = conventional_optimize(logical);
    println!(
        "Conventionally optimized (Figure 3b):\n{}",
        optimized.parse_tree()
    );

    // ── 3. Plan and execute. ──
    let physical = plan(&optimized, PlannerConfig::stream())?;
    println!("Physical plan:\n{}", physical.explain());
    let output = physical.execute(&catalog, ExecOptions::default())?;
    println!("Superstars:");
    for row in &output.rows {
        println!("  {row}");
    }
    println!(
        "Stats: {} base rows scanned, {} comparisons, max workspace {} tuples",
        output.stats.rows_scanned, output.stats.comparisons, output.stats.max_workspace
    );

    // ── 4. The Figure 4 stream processor: departmental salary sums. ──
    let salaries = vec![
        (Value::str("CS"), 120_000),
        (Value::str("CS"), 95_000),
        (Value::str("EE"), 110_000),
        (Value::str("Math"), 90_000),
        (Value::str("Math"), 85_000),
    ];
    let mut sums = GroupedSum::new(from_vec(salaries), |r| r.0.clone(), |r| r.1);
    println!("\nDepartmental salary sums (Figure 4, O(1) workspace):");
    while let Some((dept, total)) = sums.next()? {
        println!("  {dept}: {total}");
    }
    Ok(())
}
