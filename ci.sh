#!/usr/bin/env bash
# Full CI gate: build, test, formatting, lints, concurrency model, Miri.
# Run locally before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

# Workspace source lints: repo concurrency and codec invariants as
# deny-by-default rules (no-unwrap in serving crates, bounded channels
# only, no guard across blocking calls, registry/codec exhaustiveness,
# metrics naming). `// lint:allow(<rule>)` is the inline escape hatch.
echo "==> tdb lint"
cargo run -q -p tdb-cli -- lint

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Pedantic tier with the triaged allowlist: every category below was
# reviewed and judged stylistic for this codebase (docs sections, #[must_use]
# candidates, lossy-cast notes on metrics math, long planner match arms,
# branchless `&` predicates in the batch kernels' hot loops).
# Anything pedantic *outside* this list fails the build. Re-triaged in PR 7:
# iter_without_into_iter, missing_fields_in_debug, needless_pass_by_value,
# and trivially_copy_pass_by_ref no longer fire and were dropped after
# fixing their residual instances — the list shrinks, it does not ratchet.
echo "==> cargo clippy -- pedantic (triaged)"
cargo clippy --workspace --all-targets -- -D warnings -W clippy::pedantic \
  -A clippy::cast_possible_truncation \
  -A clippy::cast_possible_wrap \
  -A clippy::cast_precision_loss \
  -A clippy::cast_sign_loss \
  -A clippy::doc_markdown \
  -A clippy::float_cmp \
  -A clippy::format_push_string \
  -A clippy::map_unwrap_or \
  -A clippy::match_same_arms \
  -A clippy::missing_errors_doc \
  -A clippy::missing_panics_doc \
  -A clippy::must_use_candidate \
  -A clippy::needless_bitwise_bool \
  -A clippy::redundant_closure_for_method_calls \
  -A clippy::return_self_not_must_use \
  -A clippy::semicolon_if_nothing_returned \
  -A clippy::similar_names \
  -A clippy::single_match_else \
  -A clippy::too_many_lines

# The soaks run with the `check` feature: the workspace-cap cross-checks
# that are debug_assert-tier in normal builds become hard asserts in
# these optimized runs.

# Bounded live-ingestion soak (E16): replay a generated workload through
# the live engine and assert the runtime workspace stays under the
# statically proven cap. Runs in a few seconds; hard-capped at 60.
echo "==> live soak (E16, bounded)"
timeout 60 cargo run --release -p tdb-bench --features check --bin experiments -- live

# Bounded network soak (E17): client-driven workload through the framed
# TCP server — ingestion requests plus pushed subscription deltas, with
# exact delivery asserted. Runs in a couple of seconds; hard-capped at 60.
echo "==> net soak (E17, bounded)"
timeout 60 cargo run --release -p tdb-bench --features check --bin experiments -- net

# Bounded observability soak (E18): tracing overhead vs an
# instrumentation-off baseline (asserted ≤ 5%), then a live+net workload
# with the Prometheus endpoint scraped — the run aborts if any observed
# workspace peak exceeds its proven cap (cap_exceeded must be 0).
echo "==> observability soak (E18, bounded)"
timeout 60 cargo run --release -p tdb-bench --features check --bin experiments -- obs

# Bounded batch-execution check (E19): columnar batch kernels vs the
# row-at-a-time operators on the E15 workload — identical pairs, counters,
# and workspace peaks asserted, observed peaks proven under the static cap
# (cap_exceeded must be 0). Speedups are recorded, not asserted: they
# depend on core count and cache size. Hard-capped at 60.
echo "==> batch equivalence + bench (E19, bounded)"
timeout 60 cargo run --release -p tdb-bench --features check --bin experiments -- batch

# Bounded sink bench (E21): the E19 40k/side Contain-join re-measured
# through the push dispatch — streamed chunks equal the materialized
# output, count-only totals agree, workspace peaks stay under the static
# cap (cap_exceeded must be 0), and the count-path speedup over
# materialization is asserted ≥ 1.8×. Hard-capped at 60.
echo "==> streaming sink bench (E21, bounded)"
timeout 60 cargo run --release -p tdb-bench --features check --bin experiments -- sink

# Bounded durability bench (E20): acknowledged-ingest throughput per WAL
# fsync policy, then a recovery matrix asserting replayed bytes track the
# open window and stay flat as the log grows (checkpoints truncate the
# replayed prefix), and a traced post-recovery query with cap_exceeded
# asserted 0. Hard-capped at 60.
echo "==> durability bench (E20, bounded)"
timeout 60 cargo run --release -p tdb-bench --features check --bin experiments -- wal

# Bounded SLO/health soak (E22): stage-span + SLO bookkeeping overhead
# on the full engine path asserted ≤ 5% (interleaved min-of-k),
# cap_exceeded asserted 0, and an injected impossible latency objective
# must flip `/healthz` to 503 via the burn-rate windows — probed over
# raw HTTP against the serving endpoint. Hard-capped at 60.
echo "==> slo/health soak (E22, bounded)"
timeout 60 cargo run --release -p tdb-bench --features check --bin experiments -- slo

# Interleaving-explorer self-tests (the explorer must find the seeded
# racy counter, lock-order inversion, and lost wakeup, and pass the
# correct protocols exhaustively). Built from the shim's own directory:
# the workspace excludes crates/shim.
echo "==> loom explorer self-tests"
(cd crates/shim/loom && cargo test -q)

# Concurrency models, explored exhaustively under the bounded scheduler.
# Each suite is depth/iteration-bounded (TDB_LOOM_MAX_STEPS /
# TDB_LOOM_MAX_ITERATIONS override the defaults) and time-capped here.
echo "==> loom model (partition handoff)"
timeout 120 env RUSTFLAGS="--cfg loom" cargo test -p tdb-stream --test loom_partition
echo "==> loom model (live watermark promotion)"
timeout 120 env RUSTFLAGS="--cfg loom" cargo test -p tdb-live --test loom_live
echo "==> loom model (net writer teardown + slow subscriber)"
timeout 120 env RUSTFLAGS="--cfg loom" cargo test -p tdb-net --test loom_net

# Miri needs a nightly toolchain with the miri component; skip gracefully
# when only stable is installed (the GitHub Actions job always runs it).
if cargo +nightly miri --version >/dev/null 2>&1; then
  echo "==> cargo miri test (tdb-core, tdb-stream)"
  cargo +nightly miri test -p tdb-core -p tdb-stream
else
  echo "==> cargo miri: nightly+miri not installed, skipping (CI runs it)"
fi

echo "CI green."
